"""Bench: regenerate Figure 3 (the SGX dashboard screenshot)."""

from benchmarks.conftest import run_once
from repro.experiments.fig3_dashboard import run_fig3


def test_fig3_dashboard(benchmark, print_result):
    result, rendered = run_once(benchmark, run_fig3)
    # Every panel of the dashboard shows data for the monitored run.
    assert all(row["has_data"] == "yes" for row in result.rows)
    print_result(result)
    print()
    print(rendered)
