"""Bench: regenerate Figure 8 (throughput vs connections, 4 runtimes x
3 database sizes x 10 connection counts)."""

from benchmarks.conftest import run_once
from repro.experiments.fig8_throughput import run_fig8


def test_fig8_throughput(benchmark, print_result):
    result = run_once(benchmark, run_fig8, duration_s=5.0)
    assert len(result.rows) == 4 * 3 * 10
    native_peak = max(
        row["kiops"] for row in result.rows_where(framework="native", db_mb=78)
    )
    assert native_peak > 1_000
    print_result(result)
