"""Bench: regenerate Figure 10 (head-to-head at 78 MB)."""

from benchmarks.conftest import run_once
from repro.experiments.fig10_combined import run_fig10


def test_fig10_combined(benchmark, print_result):
    result = run_once(benchmark, run_fig10, duration_s=5.0)
    assert len(result.rows) == 4 * 10
    print_result(result)
