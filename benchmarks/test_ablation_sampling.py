"""Ablation: instrumentation scope vs monitoring overhead (§6.3's knobs).

The paper lists three ways to cut TEEMon's overhead: disable unneeded
program groups, reduce sampling frequency, and filter to a single PID.
This bench measures Redis-under-SCONE throughput for each configuration
against the unmonitored baseline.
"""

from benchmarks.conftest import run_once
from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.exporters import EbpfExporter, EbpfExporterConfig
from repro.frameworks.scone import SconeRuntime
from repro.sgx.driver import SgxDriver
from repro.simkernel.kernel import Kernel


def _throughput(ebpf_active, full_monitoring):
    kernel = Kernel(seed=31)
    kernel.load_module(SgxDriver())
    runtime = SconeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=32)
    outcome = bench.run(runtime, server, duration_s=5.0,
                        ebpf_active=ebpf_active, full_monitoring=full_monitoring)
    return outcome.throughput_rps


def _instrumented_event_cost(config: EbpfExporterConfig) -> int:
    """Events counted per 100k syscalls+switches with this config."""
    kernel = Kernel(seed=32)
    kernel.load_module(SgxDriver())
    exporter = EbpfExporter(kernel, config=config)
    process = kernel.spawn_process("redis-server")
    other = kernel.spawn_process("noise")
    kernel.syscalls.dispatch("read", process.pid, count=50_000)
    kernel.syscalls.dispatch("read", other.pid, count=50_000)
    kernel.scheduler.account_switches(process.pid, 10_000)
    return exporter.runtime.total_events_seen()


def test_ablation_sampling_and_filtering(benchmark):
    def run():
        baseline = _throughput(False, False)
        ebpf_only = _throughput(True, False)
        full = _throughput(True, True)
        all_groups = _instrumented_event_cost(EbpfExporterConfig())
        pid_filtered = _instrumented_event_cost(
            EbpfExporterConfig(pid_filter=100)  # first spawned pid
        )
        no_cache = _instrumented_event_cost(EbpfExporterConfig(cache=False))
        return baseline, ebpf_only, full, all_groups, pid_filtered, no_cache

    baseline, ebpf_only, full, all_groups, pid_filtered, no_cache = run_once(
        benchmark, run
    )
    print()
    print("== ablation: monitoring scope vs overhead ==")
    print(f"  throughput: off={baseline / 1e3:.0f}K "
          f"ebpf={ebpf_only / 1e3:.0f}K ({ebpf_only / baseline:.3f}) "
          f"full={full / 1e3:.0f}K ({full / baseline:.3f})")
    print(f"  instrumented events: all groups={all_groups:,} "
          f"pid-filtered={pid_filtered:,} no-cache-group={no_cache:,}")
    assert full < ebpf_only < baseline
    # The PID filter's skip path still *sees* events but the counted work
    # drops; disabling groups removes attachments entirely.
    assert no_cache <= all_groups
