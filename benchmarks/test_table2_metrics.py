"""Bench: regenerate Table 2 (SME metric/hook catalogue)."""

from benchmarks.conftest import run_once
from repro.experiments.table2_metrics import run_table2


def test_table2_metrics(benchmark, print_result):
    result = run_once(benchmark, run_table2)
    assert all(row["hook_registered"] == "yes" for row in result.rows)
    print_result(result)
