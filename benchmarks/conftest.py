"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints its rows (run with ``-s`` to see them).  ``pytest-benchmark`` times
the regeneration itself; the *content* assertions live in
``tests/test_experiment_shapes.py``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Experiments are deterministic and virtual-time based, so repeated
    rounds measure the same work; one round keeps the harness fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def print_result():
    """Print an ExperimentResult table beneath the benchmark output."""
    def _print(result, columns=None):
        print()
        print(result.render(columns))
    return _print
