"""Bench: regenerate Figure 11 (metric analytics, 4 runtimes x 6 configs,
measured through the deployed TEEMon stack)."""

from benchmarks.conftest import run_once
from repro.experiments.fig11_metrics import run_fig11


def test_fig11_metrics(benchmark, print_result):
    result = run_once(benchmark, run_fig11, duration_s=20.0)
    assert len(result.rows) == 4 * 6
    scone_peak = result.rows_where(framework="scone", config="584C-L")[0]
    assert scone_peak["epc_evictions"] > 100
    print_result(result)
