"""Bench: TEEMon vs the Table-1 baselines, measured on one workload.

Runs the same Redis-under-SCONE and Redis-under-Graphene workloads with
(a) TEEMon, (b) TEE-Perf-style method instrumentation, and (c) an sgx-perf
record/report session, and prints the comparison the paper's Table 1 and
§2.1 make: TEEMon is the only tool that is simultaneously low-overhead,
runtime-reporting and framework-agnostic; TEE-Perf costs ~1.9x; sgx-perf
sees nothing on SCONE and cannot report mid-run.
"""

from benchmarks.conftest import run_once
from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks.graphene import GrapheneRuntime
from repro.frameworks.scone import SconeRuntime
from repro.profilers.sgxperf import ProfilerStateError, SgxPerf
from repro.profilers.teeperf import TeePerf
from repro.sgx.driver import SgxDriver
from repro.simkernel.kernel import Kernel


def _workload(runtime_cls, seed):
    kernel = Kernel(seed=seed)
    kernel.load_module(SgxDriver())
    runtime = runtime_cls()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=32)
    return kernel, runtime, server, bench


def _teemon_overhead():
    _k, runtime, server, bench = _workload(SconeRuntime, 41)
    baseline = bench.run(runtime, server, duration_s=5.0).throughput_rps
    _k, runtime, server, bench = _workload(SconeRuntime, 41)
    monitored = bench.run(runtime, server, duration_s=5.0,
                          ebpf_active=True, full_monitoring=True).throughput_rps
    return baseline / monitored  # slowdown factor


def _teeperf_overhead():
    kernel, runtime, server, bench = _workload(SconeRuntime, 42)
    profiler = TeePerf()
    profiler.start(kernel.clock.now_ns)
    outcome = bench.run(runtime, server, duration_s=5.0)
    useful_ns = int(outcome.requests_total
                    * runtime.per_request_cost_ns(320, server.db_bytes))
    profiler.profile_calls(outcome.requests_total)
    report = profiler.stop(kernel.clock.now_ns)
    return report.slowdown_factor(useful_ns)


def _sgxperf_run():
    kernel, runtime, server, bench = _workload(GrapheneRuntime, 43)
    profiler = SgxPerf(kernel, runtime)
    profiler.record()
    bench.run(runtime, server, duration_s=5.0)
    mid_run_report = None
    try:
        profiler.report()
    except ProfilerStateError as exc:
        mid_run_report = str(exc)
    report = profiler.stop()
    # SCONE blindness check.
    kernel2, runtime2, server2, bench2 = _workload(SconeRuntime, 44)
    blind = SgxPerf(kernel2, runtime2)
    blind.record()
    bench2.run(runtime2, server2, duration_s=2.0)
    scone_report = blind.stop()
    return report, mid_run_report, scone_report


def test_baseline_profiler_comparison(benchmark):
    def run():
        return _teemon_overhead(), _teeperf_overhead(), _sgxperf_run()

    teemon_factor, teeperf_factor, (graphene_report, mid_run_error,
                                    scone_report) = run_once(benchmark, run)
    print()
    print("== TEEMon vs Table-1 baselines (same workload) ==")
    print(f"  TEEMon   slowdown: {teemon_factor:.2f}x   "
          f"(runtime reporting: yes, framework-agnostic: yes)")
    print(f"  TEE-Perf slowdown: {teeperf_factor:.2f}x   "
          f"(runtime reporting: no,  framework-agnostic: yes)")
    print(f"  sgx-perf on Graphene: {graphene_report.ocalls:,} ocalls recorded; "
          f"mid-run report refused: {mid_run_error is not None}")
    print(f"  sgx-perf on SCONE   : {scone_report.ocalls} ocalls "
          f"(framework-agnostic: no)")
    assert teemon_factor < 1.17          # within the paper's 5-17% band
    assert 1.6 < teeperf_factor < 2.2    # paper: ~1.9x average
    assert teeperf_factor > teemon_factor * 1.5
    assert graphene_report.ocalls > 0
    assert scone_report.ocalls == 0
    assert mid_run_error is not None
