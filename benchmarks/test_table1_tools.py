"""Bench: regenerate Table 1 (tool survey)."""

from benchmarks.conftest import run_once
from repro.experiments.table1_tools import run_table1


def test_table1_tools(benchmark, print_result):
    result = run_once(benchmark, run_table1)
    assert len(result.rows) == 9  # 8 surveyed tools + TEEMon
    print_result(result)
