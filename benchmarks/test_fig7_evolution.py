"""Bench: regenerate Figure 7 (throughput across code evolution)."""

from benchmarks.conftest import run_once
from repro.experiments.fig7_evolution import run_fig7


def test_fig7_evolution(benchmark, print_result):
    result = run_once(benchmark, run_fig7)
    by_config = {row["configuration"]: row["iops"] for row in result.rows}
    assert by_config["scone @ 09fea91"] > 2 * by_config["scone @ 572bd1a5"]
    print_result(result)
