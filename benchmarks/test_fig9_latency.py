"""Bench: regenerate Figure 9 (latency vs connections)."""

from benchmarks.conftest import run_once
from repro.experiments.fig9_latency import run_fig9


def test_fig9_latency(benchmark, print_result):
    result = run_once(benchmark, run_fig9, duration_s=5.0)
    graphene_320 = result.rows_where(
        framework="graphene-sgx", db_mb=78, connections=320
    )[0]
    assert graphene_320["latency_ms"] > 150
    print_result(result)
