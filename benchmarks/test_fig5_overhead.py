"""Bench: regenerate Figure 5 (monitoring overhead on applications)."""

from benchmarks.conftest import run_once
from repro.experiments.fig5_overhead import run_fig5


def test_fig5_overhead(benchmark, print_result):
    result = run_once(benchmark, run_fig5)
    full_rows = result.rows_where(config="full")
    assert all(0.80 <= row["normalized"] <= 0.97 for row in full_rows)
    print_result(result)
