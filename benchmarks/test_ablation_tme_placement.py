"""Ablation: driver-level TME vs an in-enclave metrics exporter.

§6.2: "As our approach requires no changes to the monitored application
and gathers SGX-related statistics at the driver level, no additional
memory from the enclave page cache (EPC) is used by TEEMon."

This bench quantifies the alternative the paper avoided: an exporter
*inside* the enclave would (a) consume EPC pages for its own code/state,
and (b) add enclave exits to publish each sample.  With a working set
already at the 94 MB EPC boundary, those extra pages convert directly
into eviction churn.
"""

from benchmarks.conftest import run_once
from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks.scone import SconeRuntime
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EPC_PAGE_SIZE
from repro.simkernel.kernel import Kernel

#: EPC pages an in-enclave exporter would occupy (code + buffers: ~2 MB,
#: the footprint of a minimal embedded metrics library).
IN_ENCLAVE_EXPORTER_PAGES = 512

#: OCALLs per scrape to publish the exposition from inside the enclave.
PUBLISH_OCALLS_PER_SCRAPE = 4


def _run(in_enclave_exporter: bool):
    kernel = Kernel(seed=33)
    kernel.load_module(SgxDriver())
    driver = kernel.module("isgx")
    runtime = SconeRuntime()
    runtime.setup(kernel)
    if in_enclave_exporter:
        # The exporter's pages squat in the EPC before the app loads.
        driver.page_in(runtime.enclave, IN_ENCLAVE_EXPORTER_PAGES)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    # Working set right at the EPC boundary (94 MB usable).
    server.populate_synthetic(720_000, 32)
    runtime.load_working_set(93 * 1024 * 1024)
    outcome = bench.run(runtime, server, duration_s=10.0, ebpf_active=True)
    ocall_cost = 0
    exporter_resident = 0
    if in_enclave_exporter:
        scrapes = 2  # one per 5 s over the run
        ocall_cost = runtime.enclave.ocall(scrapes * PUBLISH_OCALLS_PER_SCRAPE)
        exporter_resident = IN_ENCLAVE_EXPORTER_PAGES
    # EPC pages left for the *application's* working set.
    app_resident = runtime.enclave.resident_pages - exporter_resident
    swapped = runtime.enclave.swapped_pages
    return outcome.throughput_rps, app_resident, swapped, ocall_cost


def test_ablation_tme_placement(benchmark):
    def run():
        return _run(False), _run(True)

    (drv_tput, drv_resident, drv_swapped, _), (
        enc_tput, enc_resident, enc_swapped, enc_ocalls
    ) = run_once(benchmark, run)
    print()
    print("== ablation: driver-level TME vs in-enclave exporter ==")
    print(f"  driver-level : app-resident EPC pages={drv_resident:>6}, "
          f"swapped={drv_swapped:>6}")
    print(f"  in-enclave   : app-resident EPC pages={enc_resident:>6}, "
          f"swapped={enc_swapped:>6}, publish OCALL ns={enc_ocalls}")
    epc_cost_mb = IN_ENCLAVE_EXPORTER_PAGES * EPC_PAGE_SIZE / (1 << 20)
    print(f"  in-enclave exporter steals {epc_cost_mb:.1f} MB of EPC")
    # The driver-level design leaves the whole EPC to the application: the
    # in-enclave exporter displaces exactly its own footprint into swap.
    assert drv_resident >= enc_resident + IN_ENCLAVE_EXPORTER_PAGES * 0.9
    assert enc_swapped >= drv_swapped
    assert enc_ocalls > 0
