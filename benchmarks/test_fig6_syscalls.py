"""Bench: regenerate Figure 6 (syscalls across SCONE versions)."""

from benchmarks.conftest import run_once
from repro.experiments.fig6_syscalls import run_fig6


def test_fig6_syscalls(benchmark, print_result):
    result = run_once(benchmark, run_fig6)
    before = result.rows_where(commit="572bd1a5", syscall="clock_gettime")[0]
    after = result.rows_where(commit="09fea91", syscall="clock_gettime")[0]
    assert before["per_second"] > 1000 * after["per_second"]
    print_result(result)
