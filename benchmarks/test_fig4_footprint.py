"""Bench: regenerate Figure 4 (component CPU/memory footprint, 24 h)."""

from benchmarks.conftest import run_once
from repro.experiments.fig4_footprint import run_fig4


def test_fig4_footprint(benchmark, print_result):
    result = run_once(benchmark, run_fig4, hours=24.0)
    total = [r for r in result.rows if r["component"] == "TOTAL"][0]
    assert 650 <= total["memory_mb"] <= 750
    print_result(result)
