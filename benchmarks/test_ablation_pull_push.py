"""Ablation: pull-based vs push-based metric collection (§4's design choice).

The paper argues for pull: the aggregator controls ingest, so a bursty or
misbehaving service cannot overload it.  This bench builds both designs
from the library's primitives and drives them with the same bursty
workload: a service whose event rate spikes 100x for a few seconds.

Measured: samples ingested by the aggregator (its load) and the TSDB's
sample count.  Pull ingests one sample per metric per interval regardless
of burst size; push ingests one per event batch, ballooning under the
burst exactly as §4 warns.
"""

from benchmarks.conftest import run_once
from repro.net.http import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds

RUN_SECONDS = 120
BURST_START, BURST_END = 40, 50
QUIET_EVENTS_PER_S = 20
BURST_EVENTS_PER_S = 2_000


def _drive(on_events):
    """Run the bursty workload; calls on_events(second, count)."""
    for second in range(RUN_SECONDS):
        rate = (
            BURST_EVENTS_PER_S if BURST_START <= second < BURST_END
            else QUIET_EVENTS_PER_S
        )
        on_events(second, rate)


def _pull_design():
    clock = VirtualClock()
    network = HttpNetwork()
    tsdb = Tsdb()
    registry = CollectorRegistry()
    counter = registry.counter("events_total", "e")
    network.register("svc", 9100, "/metrics", lambda: encode_registry(registry))
    manager = ScrapeManager(clock, network, tsdb, interval_ns=seconds(5))
    manager.add_target(ScrapeTarget(job="svc", instance="svc",
                                    url="http://svc:9100/metrics"))
    manager.start()

    def on_events(second, count):
        counter.inc(count)
        clock.advance(seconds(1))

    _drive(on_events)
    manager.stop()
    return tsdb.sample_count(), manager.samples_ingested


def _push_design():
    """Event-push: every event batch lands on the aggregator immediately."""
    clock = VirtualClock()
    tsdb = Tsdb()
    pushes = 0

    def on_events(second, count):
        nonlocal pushes
        # statsd-style: the service pushes each batch as it happens; under
        # burst, batches are small and frequent (one per ~10 events).
        batches = max(1, count // 10)
        for batch in range(batches):
            tsdb.append_sample(
                "events_total",
                clock.now_ns + batch + 1,
                float(count / batches),
                kind="delta",
            )
            pushes += 1
        clock.advance(seconds(1))

    _drive(on_events)
    return tsdb.sample_count(), pushes


def test_ablation_pull_vs_push(benchmark):
    def run():
        return _pull_design(), _push_design()

    (pull_samples, pull_ingest), (push_samples, push_ingest) = run_once(
        benchmark, run
    )
    print()
    print("== ablation: pull vs push under a 100x event burst ==")
    print(f"  pull: {pull_ingest:>7} aggregator writes, {pull_samples:>7} stored samples")
    print(f"  push: {push_ingest:>7} aggregator writes, {push_samples:>7} stored samples")
    ratio = push_ingest / pull_ingest
    print(f"  push ingest load is {ratio:.0f}x pull (burst amplification)")
    # The paper's argument quantified: pull load is burst-independent.
    # Per scrape: the metric + up + two scrape-metadata series.
    assert pull_ingest <= (RUN_SECONDS // 5 + 1) * 4
    assert push_ingest > 10 * pull_ingest
