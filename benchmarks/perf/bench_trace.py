"""Tracing-overhead benchmark: the pipeline with tracing off, on, sampled.

Measures the same full scrape → rule-evaluation → render cycle as
``bench_pipeline``'s ``scrape_cycle``, three ways:

* ``off``     — tracing disabled (the default): every instrumented call
  site goes through the no-op tracer.  This is the number that must not
  regress: the instrumentation's whole budget when disabled is a few
  ``enabled`` checks and no-op context managers;
* ``on``      — tracing enabled with the default bounded store, every
  trace recorded (the debugging configuration);
* ``sampled`` — the always-on production configuration: head sampling at
  10% plus tail keep rules.  Sampled-out traces take the shared
  unsampled-span fast path, so most cycles pay almost nothing.

Two gates:

* ``sampled_overhead_ratio <= --max-sampled-overhead`` (default 1.2) is
  **always on** — the PR's acceptance bar that sampled tracing is cheap
  enough to leave enabled in production;
* with ``--baseline BENCH_pipeline.json`` the tracing-off cycle time is
  additionally compared against the baseline report's
  ``scrape_cycle.cycle_ms`` and the script exits non-zero if it
  regressed more than ``--max-regression`` (default 5%) — the CI gate
  that keeps tracing free when nobody asked for it.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_trace [--quick]
        [--output BENCH_trace.json] [--max-sampled-overhead 1.2]
        [--baseline BENCH_pipeline.json] [--max-regression 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.experiments.common import make_sgx_host
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy

SCHEMA = "teemon.bench.trace/1"


def time_cycles(cycles: int, repeats: int, **config_kwargs) -> float:
    """Best wall-clock seconds for ``cycles`` full pipeline cycles."""
    kernel, _driver = make_sgx_host(seed=7)
    deployment = deploy(
        kernel, TeemonConfig(**config_kwargs), start=False
    )
    session = deployment.session

    def cycle() -> None:
        kernel.clock.advance(seconds(5))
        deployment.scrape_manager.scrape_once()
        deployment.rule_evaluator.evaluate_all_once()
        session.render("sgx")

    cycle()  # warm-up: first scrape creates every series
    elapsed = best_of(repeats, lambda: [cycle() for _ in range(cycles)])
    deployment.shutdown()
    return elapsed / cycles


def run_suite(quick: bool) -> BenchReport:
    """Measure the cycle with tracing off, fully on, and sampled."""
    report = BenchReport(quick=quick)
    cycles = 5 if quick else 25
    repeats = 1 if quick else 3
    off_s = time_cycles(cycles, repeats, enable_tracing=False)
    on_s = time_cycles(cycles, repeats, enable_tracing=True)
    sampled_s = time_cycles(
        cycles, repeats,
        enable_tracing=True,
        trace_sampling_probability=0.1,
        trace_tail_sampling=True,
    )
    report.add(
        "trace_overhead",
        off_ms=off_s * 1e3,
        on_ms=on_s * 1e3,
        sampled_ms=sampled_s * 1e3,
        overhead_ratio=on_s / off_s,
        sampled_overhead_ratio=sampled_s / off_s,
        cycles=cycles,
    )
    return report


def check_sampled_gate(report: BenchReport, limit: float) -> int:
    """Always-on gate: sampled tracing must stay within ``limit`` of off."""
    ratio = report.results[0].metrics["sampled_overhead_ratio"]
    verdict = "OK" if ratio <= limit else "TOO SLOW"
    print(
        f"sampled tracing overhead: x{ratio:.3f} vs tracing off "
        f"(limit x{limit:.3f}) {verdict}"
    )
    return 0 if ratio <= limit else 1


def check_baseline(report: BenchReport, baseline_path: str,
                   max_regression: float) -> int:
    """Gate: tracing-off must stay within ``max_regression`` of baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_ms = baseline["results"]["scrape_cycle"]["cycle_ms"]
    off_ms = report.results[0].metrics["off_ms"]
    ratio = off_ms / baseline_ms
    limit = 1.0 + max_regression
    verdict = "OK" if ratio <= limit else "REGRESSION"
    print(
        f"tracing-off cycle: {off_ms:.3f}ms vs baseline "
        f"{baseline_ms:.3f}ms -> x{ratio:.3f} (limit x{limit:.3f}) {verdict}"
    )
    return 0 if ratio <= limit else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_trace.json",
                        help="report path (default: ./BENCH_trace.json)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_pipeline.json to gate the off-path against")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="allowed tracing-off regression vs baseline")
    parser.add_argument("--max-sampled-overhead", type=float, default=1.2,
                        help="allowed sampled-tracing overhead vs tracing off")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    status = check_sampled_gate(report, args.max_sampled_overhead)
    if args.baseline:
        status = max(
            status,
            check_baseline(report, args.baseline, args.max_regression),
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
