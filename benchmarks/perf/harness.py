"""Timing utilities and the JSON report writer for the perf suite.

Benchmarks here measure *wall-clock* time of the simulation code itself
(the simulated clock is virtual, so simulated time is free — what we pay
for is Python executing the pipeline).  Every measurement repeats the
workload a few times and keeps the best run, which is the standard way to
strip scheduler noise from microbenchmarks.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

SCHEMA = "teemon.bench.pipeline/1"


@dataclass
class BenchResult:
    """One benchmark's numbers, ready for the JSON report."""

    name: str
    metrics: Dict[str, float]
    notes: str = ""


@dataclass
class BenchReport:
    """Accumulates results and serialises the report."""

    quick: bool = False
    results: List[BenchResult] = field(default_factory=list)

    def add(self, name: str, notes: str = "", **metrics: float) -> BenchResult:
        """Record one benchmark's metrics."""
        result = BenchResult(name=name, metrics=dict(metrics), notes=notes)
        self.results.append(result)
        return result

    def to_payload(self) -> Dict[str, object]:
        """The JSON-serialisable report body."""
        return {
            "schema": SCHEMA,
            "quick": self.quick,
            "python": platform.python_version(),
            "results": {
                r.name: {**r.metrics, **({"notes": r.notes} if r.notes else {})}
                for r in self.results
            },
        }

    def write(self, path: str) -> None:
        """Write the report to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """Human-readable table of every recorded metric."""
        lines = [f"{'benchmark':<28} {'metric':<28} {'value':>14}"]
        lines.append("-" * 72)
        for result in self.results:
            for metric, value in sorted(result.metrics.items()):
                lines.append(f"{result.name:<28} {metric:<28} {value:>14,.3f}")
        return "\n".join(lines)


def best_of(runs: int, workload: Callable[[], None], warmup: int = 1) -> float:
    """Wall-clock seconds of the fastest of ``runs`` executions.

    ``warmup`` untimed executions run first.  The first call after a
    data-structure build pays one-off costs — allocator growth, lazily
    built caches, cold branch predictors — that later calls never see;
    timing it skews a best-of sample enough to flip gate decisions (the
    historical ``shard2_wide_ms`` outlier in ``BENCH_storage.json`` was
    exactly this: the first-timed shard count absorbing warmup that the
    later counts did not pay).
    """
    if runs < 1:
        raise ValueError(f"need at least one run, got {runs}")
    if warmup < 0:
        raise ValueError(f"warmup cannot be negative, got {warmup}")
    for _ in range(warmup):
        workload()
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        workload()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best
