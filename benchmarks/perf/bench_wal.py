"""WAL-overhead benchmark: the pipeline with durability off vs on.

Measures the same full scrape → rule-evaluation → render cycle as
``bench_pipeline``'s ``scrape_cycle``, three ways:

* ``off``  — WAL disabled (the default): ingest takes the exact pre-WAL
  path, one ``is None`` check per append.  This is the number that must
  not regress: durability must cost nothing to deployments that did not
  ask for it;
* ``on``   — WAL enabled (write-through to the simulated medium, flushes
  on the scrape cadence, periodic checkpoints);
* ``overhead_ratio`` — ``on / off``, the price of crash safety.

With ``--baseline BENCH_pipeline.json`` the script compares the WAL-off
cycle time against the baseline report's ``scrape_cycle.cycle_ms`` and
exits non-zero if it regressed more than ``--max-regression`` (default
5%) — the CI gate that keeps the durability hook free when disabled.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_wal [--quick]
        [--output BENCH_wal.json]
        [--baseline BENCH_pipeline.json] [--max-regression 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.experiments.common import make_sgx_host
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy

SCHEMA = "teemon.bench.wal/1"


def time_cycles(enable_wal: bool, cycles: int, repeats: int):
    """Best wall-clock seconds per full pipeline cycle, plus WAL volume."""
    kernel, _driver = make_sgx_host(seed=7)
    deployment = deploy(
        kernel, TeemonConfig(enable_wal=enable_wal), start=False
    )
    session = deployment.session

    def cycle() -> None:
        kernel.clock.advance(seconds(5))
        deployment.scrape_manager.scrape_once()
        deployment.rule_evaluator.evaluate_all_once()
        if enable_wal:
            deployment.wal.flush()
        session.render("sgx")

    cycle()  # warm-up: first scrape creates every series
    elapsed = best_of(repeats, lambda: [cycle() for _ in range(cycles)])
    wal = deployment.wal
    volume = (wal.records_total, deployment.disk.bytes_written) if wal else (0, 0)
    deployment.shutdown()
    return elapsed / cycles, volume


def run_suite(quick: bool) -> BenchReport:
    """Measure the cycle with the WAL off and on."""
    report = BenchReport(quick=quick)
    cycles = 5 if quick else 25
    repeats = 1 if quick else 3
    off_s, _ = time_cycles(False, cycles, repeats)
    on_s, (records, wal_bytes) = time_cycles(True, cycles, repeats)
    report.add(
        "wal_overhead",
        off_ms=off_s * 1e3,
        on_ms=on_s * 1e3,
        overhead_ratio=on_s / off_s,
        cycles=cycles,
        wal_records=records,
        wal_bytes=wal_bytes,
    )
    return report


def check_baseline(report: BenchReport, baseline_path: str,
                   max_regression: float) -> int:
    """Gate: WAL-off must stay within ``max_regression`` of baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_ms = baseline["results"]["scrape_cycle"]["cycle_ms"]
    off_ms = report.results[0].metrics["off_ms"]
    ratio = off_ms / baseline_ms
    limit = 1.0 + max_regression
    verdict = "OK" if ratio <= limit else "REGRESSION"
    print(
        f"wal-off cycle: {off_ms:.3f}ms vs baseline "
        f"{baseline_ms:.3f}ms -> x{ratio:.3f} (limit x{limit:.3f}) {verdict}"
    )
    return 0 if ratio <= limit else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_wal.json",
                        help="report path (default: ./BENCH_wal.json)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_pipeline.json to gate the off-path against")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="allowed wal-off regression vs baseline")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    if args.baseline:
        return check_baseline(report, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
