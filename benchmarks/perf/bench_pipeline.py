"""The metrics-pipeline microbenchmark suite.

Times the four hot paths the ISSUE-1 optimizations target and one
end-to-end cycle, then writes ``BENCH_pipeline.json``:

* ``tsdb_ingest``   — append throughput across many labelled series;
* ``instant_query`` — dashboard-style instant query latency, with the
  query plan cache and with it disabled;
* ``range_query``   — bulk range evaluation vs the seed per-step
  evaluation (same data, same query, same results);
* ``hook_fire``     — hook dispatch throughput with zero and one
  observers (the two common cases during app simulation);
* ``scrape_cycle``  — one full scrape + rule evaluation + dashboard
  render against a real single-host deployment.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_pipeline [--quick]
        [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.experiments.common import make_sgx_host
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, seconds
from repro.simkernel.hooks import HookRegistry
from repro.teemon import TeemonConfig, deploy

SCRAPE_INTERVAL_NS = 5 * NANOS_PER_SEC  # the paper's default exporter rate

SYSCALLS = ("read", "write", "futex", "epoll_wait", "clock_gettime",
            "sendto", "recvfrom", "close")


def _populated_tsdb(samples_per_series: int) -> Tsdb:
    """A TSDB shaped like a real deployment: one series per syscall name."""
    tsdb = Tsdb()
    for index, name in enumerate(SYSCALLS):
        for step in range(samples_per_series):
            tsdb.append_sample(
                "ebpf_syscalls_total",
                (step + 1) * SCRAPE_INTERVAL_NS,
                float(step * (index + 1)),
                name=name, job="ebpf",
            )
    return tsdb


def bench_tsdb_ingest(report: BenchReport, quick: bool) -> None:
    """Append throughput, fresh database each run."""
    series = 8 if quick else 16
    per_series = 500 if quick else 4000
    total = series * per_series

    def workload() -> None:
        tsdb = Tsdb()
        for step in range(per_series):
            time_ns = (step + 1) * SCRAPE_INTERVAL_NS
            for index in range(series):
                tsdb.append_sample(
                    "bench_metric", time_ns, float(step), idx=str(index)
                )

    elapsed = best_of(3, workload)
    report.add(
        "tsdb_ingest",
        samples=total,
        samples_per_sec=total / elapsed,
        elapsed_s=elapsed,
    )


def bench_instant_query(report: BenchReport, quick: bool) -> None:
    """Instant query latency with and without the plan cache."""
    tsdb = _populated_tsdb(200 if quick else 2000)
    now_ns = tsdb._series[next(iter(tsdb._series))].last_time_ns()  # noqa: SLF001
    query = "sum by (name) (rate(ebpf_syscalls_total[1m]))"
    repeats = 50 if quick else 300

    cached = QueryEngine(tsdb)
    uncached = QueryEngine(tsdb, plan_cache_size=0)
    cached.instant(query, now_ns)  # warm the plan cache

    cached_s = best_of(3, lambda: [cached.instant(query, now_ns)
                                   for _ in range(repeats)])
    uncached_s = best_of(3, lambda: [uncached.instant(query, now_ns)
                                     for _ in range(repeats)])
    report.add(
        "instant_query",
        cached_us=cached_s / repeats * 1e6,
        uncached_us=uncached_s / repeats * 1e6,
        parse_cache_speedup=uncached_s / cached_s if cached_s else 0.0,
        repeats=repeats,
    )


def bench_range_query(report: BenchReport, quick: bool) -> None:
    """Bulk range evaluation vs the seed per-step evaluation.

    The acceptance target: 1k steps over a 10k-sample series, >= 5x.
    """
    samples = 2000 if quick else 10_000
    steps = 200 if quick else 1000
    tsdb = Tsdb()
    for step in range(samples):
        tsdb.append_sample(
            "bench_counter", (step + 1) * SCRAPE_INTERVAL_NS, float(step),
            job="bench",
        )
    engine = QueryEngine(tsdb)
    end_ns = samples * SCRAPE_INTERVAL_NS
    step_ns = max(SCRAPE_INTERVAL_NS,
                  (end_ns - SCRAPE_INTERVAL_NS) // max(1, steps - 1))
    start_ns = end_ns - (steps - 1) * step_ns
    query = "rate(bench_counter[5m])"  # the dashboards' staple window

    bulk_s = best_of(
        3, lambda: engine.range_query(query, start_ns, end_ns, step_ns)
    )
    per_step_s = best_of(
        3, lambda: engine.range_query_per_step(query, start_ns, end_ns, step_ns)
    )
    report.add(
        "range_query",
        bulk_ms=bulk_s * 1e3,
        per_step_ms=per_step_s * 1e3,
        speedup=per_step_s / bulk_s if bulk_s else 0.0,
        steps=steps,
        series_samples=samples,
    )


def bench_hook_fire(report: BenchReport, quick: bool) -> None:
    """Hook dispatch throughput: nothing attached vs one observer."""
    fires = 20_000 if quick else 200_000
    registry = HookRegistry()
    hook = "raw_syscalls:sys_enter"

    def fire_all() -> None:
        fire = registry.fire
        for index in range(fires):
            fire(hook, index, count=2, pid=1)

    idle_s = best_of(3, fire_all)

    counted = []
    handle = registry.attach(hook, lambda ctx: counted.append(ctx.count))
    observed_s = best_of(3, fire_all)
    handle.detach()

    report.add(
        "hook_fire",
        no_observer_per_sec=fires / idle_s,
        one_observer_per_sec=fires / observed_s,
        fires=fires,
    )


def bench_scrape_cycle(report: BenchReport, quick: bool) -> None:
    """One full scrape -> rule evaluation -> dashboard render cycle."""
    kernel, _driver = make_sgx_host(seed=7)
    deployment = deploy(kernel, TeemonConfig(), start=False)
    session = deployment.session
    cycles = 5 if quick else 25

    def cycle() -> None:
        kernel.clock.advance(seconds(5))
        deployment.scrape_manager.scrape_once()
        deployment.rule_evaluator.evaluate_all_once()
        session.render("sgx")

    cycle()  # warm-up: first scrape creates every series
    started_cycles = best_of(1, lambda: [cycle() for _ in range(cycles)])
    deployment.shutdown()
    report.add(
        "scrape_cycle",
        cycle_ms=started_cycles / cycles * 1e3,
        cycles=cycles,
    )


def run_suite(quick: bool) -> BenchReport:
    """Run every benchmark and return the populated report."""
    report = BenchReport(quick=quick)
    bench_tsdb_ingest(report, quick)
    bench_instant_query(report, quick)
    bench_range_query(report, quick)
    bench_hook_fire(report, quick)
    bench_scrape_cycle(report, quick)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_pipeline.json",
                        help="report path (default: ./BENCH_pipeline.json)")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    report.write(args.output)
    print(report.render())
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
