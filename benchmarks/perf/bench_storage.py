"""Storage-engine benchmark: shard scaling and downsampled query cost.

Measures the pluggable storage engine along the axes the ISSUE-5
refactor touches, then writes ``BENCH_storage.json``:

* ``storage_ingest`` — per-sample append throughput through
  :func:`build_storage_engine` at 1/2/4/8 shards (same workload shape
  as ``bench_pipeline``'s ``tsdb_ingest``, so the 1-shard number is
  directly comparable to the monolith baseline);
* ``storage_ingest_batched`` — the scraper's actual ingest shape since
  batched appends: one ``append_batch`` per scrape cycle, measured at
  2/4/8 shards against an interleaved monolith control running the
  identical batch workload;
* ``storage_query``  — wide-window range-query latency over a
  many-series database at 1/2/4/8 shards: the ``rate`` query measures
  the fan-out merge (pushdown-ineligible), the ``sum by (avg_over_time)``
  query measures aggregate pushdown against a monolith control;
* ``storage_downsample`` — the same composable range query over old
  data served from raw chunks vs from compacted rollup buckets, plus
  what compaction folded and saved.

Two gates run on every invocation (the "make sharding pay" targets):
the 4-shard pushdown query must be >= 2x faster than the monolith
control, and batched ingest at 2/4/8 shards must be no worse than the
monolith control beyond ``--max-regression``.  With ``--baseline
BENCH_pipeline.json`` the script additionally gates the 1-shard path
against the monolith baseline (``tsdb_ingest`` elapsed and
``range_query`` bulk latency) and exits non-zero past
``--max-regression`` (default 5%) — sharding must cost nothing to
deployments that did not ask for it.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_storage [--quick]
        [--output BENCH_storage.json]
        [--baseline BENCH_pipeline.json] [--max-regression 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Tuple

from benchmarks.perf.harness import BenchReport, best_of

from repro.pmag.blocks import BlockPolicy
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.storage import build_storage_engine
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, seconds

SCHEMA = "teemon.bench.storage/1"
SCRAPE_INTERVAL_NS = 5 * NANOS_PER_SEC
SHARD_COUNTS = (1, 2, 4, 8)


def paired_best(
    runs: int, control: Callable[[], None], measured: Callable[[], None]
) -> Tuple[float, float]:
    """Best-of timing of two workloads with *interleaved* repetitions.

    The gated comparisons ask "is the 1-shard engine path slower than a
    plain Tsdb doing the same work?" — a ratio of two ~10ms numbers.
    Timing each side in its own block lets a CPU-contention burst land
    entirely on one of them and fake a regression; alternating the reps
    makes both minima sample the same quiet moments, so the ratio stays
    honest on a noisy machine.
    """
    best_control = best_measured = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        control()
        best_control = min(best_control, time.perf_counter() - started)
        started = time.perf_counter()
        measured()
        best_measured = min(best_measured, time.perf_counter() - started)
    return best_control, best_measured


def bench_storage_ingest(report: BenchReport, quick: bool) -> None:
    """Append throughput per shard count, fresh engine each run.

    Mirrors ``bench_pipeline``'s ``tsdb_ingest`` sizes exactly; the
    ``shard1_*`` metrics are the apples-to-apples monolith comparison.
    """
    series = 8 if quick else 16
    per_series = 500 if quick else 4000
    total = series * per_series
    metrics = {"samples": total}

    def ingest_into(factory) -> None:
        engine = factory()
        for step in range(per_series):
            time_ns = (step + 1) * SCRAPE_INTERVAL_NS
            for index in range(series):
                engine.append_sample(
                    "bench_metric", time_ns, float(step), idx=str(index)
                )

    # In-process control: the exact bench_pipeline workload on a plain
    # Tsdb, interleaved with the shard-1 reps so the gate can separate
    # abstraction cost from machine noise (see check_baseline).
    ingest_into(Tsdb)  # warm-up
    control_s, shard1_s = paired_best(
        5,
        lambda: ingest_into(Tsdb),
        lambda: ingest_into(lambda: build_storage_engine(1)),
    )
    metrics["monolith_elapsed_s"] = control_s
    metrics["shard1_elapsed_s"] = shard1_s
    metrics["shard1_samples_per_sec"] = total / shard1_s
    for shards in SHARD_COUNTS[1:]:
        elapsed = best_of(3, lambda: ingest_into(
            lambda: build_storage_engine(shards)
        ))
        metrics[f"shard{shards}_elapsed_s"] = elapsed
        metrics[f"shard{shards}_samples_per_sec"] = total / elapsed
    report.add("storage_ingest", **metrics)


def bench_storage_ingest_batched(report: BenchReport, quick: bool) -> None:
    """Batched cycle ingest: shard routing vs monolith, gated for parity.

    The scraper's post-batching shape — one ``append_batch`` of the
    cycle's samples per scrape interval, labels constructed per cycle
    exactly as the scrape path does.  The gated control is the classic
    per-sample monolith ingest (``bench_pipeline``'s ``tsdb_ingest``
    workload — what every deployment ran before this change), measured
    interleaved per shard count: sharding plus batching together must
    cost deployments nothing relative to the pre-sharding path.  The
    batched monolith is also recorded, as the upper reference.
    """
    series = 8 if quick else 16
    cycles = 500 if quick else 4000
    total = series * cycles
    metrics = {"samples": total}
    names = [str(index) for index in range(series)]

    def batched_into(factory) -> None:
        engine = factory()
        for step in range(cycles):
            time_ns = (step + 1) * SCRAPE_INTERVAL_NS
            value = float(step)
            entries = [
                (Labels.of("bench_metric", idx=name, job="bench"),
                 time_ns, value)
                for name in names
            ]
            engine.append_batch(entries)

    def classic_into() -> None:
        engine = Tsdb()
        for step in range(cycles):
            time_ns = (step + 1) * SCRAPE_INTERVAL_NS
            value = float(step)
            for name in names:
                engine.append_sample(
                    "bench_metric", time_ns, value, idx=name, job="bench"
                )

    batched_into(Tsdb)  # warm-up
    metrics["monolith_batched_elapsed_s"] = best_of(
        3, lambda: batched_into(Tsdb)
    )
    for shards in SHARD_COUNTS[1:]:
        control_s, shard_s = paired_best(
            5,
            classic_into,
            lambda: batched_into(lambda: build_storage_engine(shards)),
        )
        metrics[f"monolith_vs{shards}_elapsed_s"] = control_s
        metrics[f"shard{shards}_elapsed_s"] = shard_s
        metrics[f"shard{shards}_vs_monolith"] = shard_s / control_s
        metrics[f"shard{shards}_samples_per_sec"] = total / shard_s
    report.add("storage_ingest_batched", **metrics)


def bench_storage_query(report: BenchReport, quick: bool) -> None:
    """Wide-window range queries against 1/2/4/8 shards.

    ``shard1_gate_ms`` replays ``bench_pipeline``'s ``range_query``
    workload (one series, same sample and step counts) through
    ``build_storage_engine(1)`` — the number the CI baseline gate
    compares; the ``shardN_wide_ms`` series measure the fan-out merge
    over a 16-series database.
    """
    samples = 2000 if quick else 10_000
    steps = 200 if quick else 1000

    def counter_db(factory):
        db = factory()
        for step in range(samples):
            db.append_sample(
                "bench_counter", (step + 1) * SCRAPE_INTERVAL_NS, float(step),
                job="bench",
            )
        return db

    end_ns = samples * SCRAPE_INTERVAL_NS
    step_ns = max(SCRAPE_INTERVAL_NS,
                  (end_ns - SCRAPE_INTERVAL_NS) // max(1, steps - 1))
    start_ns = end_ns - (steps - 1) * step_ns
    query = "rate(bench_counter[5m])"

    control_engine = QueryEngine(counter_db(Tsdb))
    shard1_engine = QueryEngine(counter_db(lambda: build_storage_engine(1)))
    shard1_engine.range_query(query, start_ns, end_ns, step_ns)  # warm-up
    control_s, shard1_s = paired_best(
        5,
        lambda: control_engine.range_query(query, start_ns, end_ns, step_ns),
        lambda: shard1_engine.range_query(query, start_ns, end_ns, step_ns),
    )
    metrics = {"steps": steps, "series_samples": samples,
               "monolith_gate_ms": control_s * 1e3,
               "shard1_gate_ms": shard1_s * 1e3}

    wide_series = 16
    wide_samples = samples // 4
    wide_end = wide_samples * SCRAPE_INTERVAL_NS
    # Two wide-database queries: the rate query cannot push down
    # (counter-reset detection needs every raw sample) and measures the
    # fan-out merge; the avg_over_time aggregation is pushdown-eligible
    # and carries the >= 2x gate against the monolith control.
    wide_query = "sum by (idx) (rate(bench_metric[5m]))"
    agg_query = "sum by (idx) (avg_over_time(bench_metric[5m]))"

    def wide_db(factory):
        db = factory()
        for step in range(wide_samples):
            time_ns = (step + 1) * SCRAPE_INTERVAL_NS
            for index in range(wide_series):
                db.append_sample(
                    "bench_metric", time_ns, float(step), idx=str(index)
                )
        return db

    control_wide = QueryEngine(wide_db(Tsdb))
    metrics["monolith_agg_wide_ms"] = best_of(
        5, lambda: control_wide.range_query(
            agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
        )
    ) * 1e3
    for shards in SHARD_COUNTS:
        query_engine = QueryEngine(wide_db(lambda: build_storage_engine(shards)))
        elapsed = best_of(3, lambda: query_engine.range_query(
            wide_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
        ))
        metrics[f"shard{shards}_wide_ms"] = elapsed * 1e3
        if shards == 4:
            # Interleave the pushdown measurement with the monolith
            # control so the gated >= 2x ratio samples the same quiet
            # moments (see paired_best).
            assert (query_engine.range_query(
                agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
            ) == control_wide.range_query(
                agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
            )), "pushdown result diverged from full-merge evaluation"
            control_s, agg_s = paired_best(
                5,
                lambda: control_wide.range_query(
                    agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
                ),
                lambda: query_engine.range_query(
                    agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
                ),
            )
            metrics["monolith_agg_wide_ms"] = min(
                metrics["monolith_agg_wide_ms"], control_s * 1e3
            )
            metrics[f"shard{shards}_agg_wide_ms"] = agg_s * 1e3
        else:
            agg_s = best_of(3, lambda: query_engine.range_query(
                agg_query, SCRAPE_INTERVAL_NS, wide_end, step_ns
            ))
            metrics[f"shard{shards}_agg_wide_ms"] = agg_s * 1e3
    report.add("storage_query", **metrics)


def bench_storage_downsample(report: BenchReport, quick: bool) -> None:
    """The same wide-step query over raw samples vs rollup buckets."""
    per_series = 2000 if quick else 20_000
    n_series = 3
    # The configured defaults' shape: a 5-second scrape cadence folded
    # into 5-minute buckets — 60 raw samples per rollup bucket.
    policy = BlockPolicy(
        block_range_ns=seconds(600),
        downsample_after_ns=seconds(600),
        resolution_ns=seconds(300),
    )

    def populate(engine) -> None:
        for index in range(n_series):
            for step in range(per_series):
                engine.append_sample(
                    "bench_signal", (step + 1) * seconds(5),
                    float(step % 997), idx=str(index),
                )

    raw = Tsdb()
    compacted = Tsdb(block_policy=policy)
    populate(raw)
    populate(compacted)
    end_ns = per_series * seconds(5)
    now_ns = end_ns + seconds(600)
    folded = compacted.compact(now_ns)

    # A dashboard's "daily overview" shape: hour-wide windows, coarse
    # steps.  Raw evaluation slices ~720 samples per window; the rollup
    # path reads ~12 buckets.
    query = "avg_over_time(bench_signal[1h])"
    step_ns = seconds(600)
    start_ns = seconds(3600)
    raw_engine, rollup_engine = QueryEngine(raw), QueryEngine(compacted)
    raw_s = best_of(3, lambda: raw_engine.range_query(
        query, start_ns, end_ns, step_ns
    ))
    rollup_s = best_of(3, lambda: rollup_engine.range_query(
        query, start_ns, end_ns, step_ns
    ))
    assert (rollup_engine.range_query(query, start_ns, end_ns, step_ns)
            == raw_engine.range_query(query, start_ns, end_ns, step_ns))
    report.add(
        "storage_downsample",
        raw_ms=raw_s * 1e3,
        rollup_ms=rollup_s * 1e3,
        speedup=raw_s / rollup_s if rollup_s else 0.0,
        samples_folded=folded,
        bytes_saved=compacted.stats.bytes_saved_total,
    )


def run_suite(quick: bool) -> BenchReport:
    report = BenchReport(quick=quick)
    bench_storage_ingest(report, quick)
    bench_storage_ingest_batched(report, quick)
    bench_storage_query(report, quick)
    bench_storage_downsample(report, quick)
    return report


def check_sharding_targets(report: BenchReport, max_regression: float) -> int:
    """Gate the "make sharding pay" targets; runs on every invocation.

    * aggregate pushdown: the 4-shard eligible wide query must be at
      least 2x faster than the monolith control evaluating the same
      query over the same data the classic way;
    * batched ingest parity: the per-cycle batch workload at 2/4/8
      shards must be within ``max_regression`` of the interleaved
      monolith control — routing must cost (almost) nothing.
    """
    by_name = {r.name: r.metrics for r in report.results}
    failed = 0
    query = by_name["storage_query"]
    monolith_ms = query["monolith_agg_wide_ms"]
    shard4_ms = query["shard4_agg_wide_ms"]
    speedup = monolith_ms / shard4_ms if shard4_ms else 0.0
    verdict = "OK" if speedup >= 2.0 else "FAIL"
    print(
        f"pushdown wide query: monolith {monolith_ms:.2f}ms vs 4 shards "
        f"{shard4_ms:.2f}ms (x{speedup:.2f}, need >= x2.00) {verdict}"
    )
    if speedup < 2.0:
        failed = 1
    ingest = by_name["storage_ingest_batched"]
    limit = 1.0 + max_regression
    for shards in SHARD_COUNTS[1:]:
        ratio = ingest[f"shard{shards}_vs_monolith"]
        verdict = "OK" if ratio <= limit else "FAIL"
        print(
            f"batched ingest {shards} shards: x{ratio:.3f} vs monolith "
            f"(limit x{limit:.3f}) {verdict}"
        )
        if ratio > limit:
            failed = 1
    return failed


def check_baseline(report: BenchReport, baseline_path: str,
                   max_regression: float) -> int:
    """Gate: the 1-shard paths must match the monolith baseline.

    Each check compares the 1-shard measurement against two references
    and passes if it is within ``max_regression`` of *either*:

    * the ``BENCH_pipeline.json`` baseline (a different process — on a
      busy machine its numbers can swing far more than 5% for these
      ~10ms workloads), and
    * the in-process monolith control: the identical workload on a plain
      ``Tsdb`` measured adjacent to the shard-1 number.

    Machine noise moves both same-process numbers together, so the
    control leg absorbs it; a genuine abstraction cost in the 1-shard
    engine path shows up against both references and fails the gate.
    """
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    by_name = {r.name: r.metrics for r in report.results}
    checks = (
        ("tsdb_ingest(1 shard)",
         by_name["storage_ingest"]["shard1_elapsed_s"],
         baseline["results"]["tsdb_ingest"]["elapsed_s"],
         by_name["storage_ingest"]["monolith_elapsed_s"]),
        ("range_query(1 shard)",
         by_name["storage_query"]["shard1_gate_ms"],
         baseline["results"]["range_query"]["bulk_ms"],
         by_name["storage_query"]["monolith_gate_ms"]),
    )
    limit = 1.0 + max_regression
    failed = 0
    for label, measured, reference, control in checks:
        ratio = measured / reference
        control_ratio = measured / control
        verdict = ("OK" if min(ratio, control_ratio) <= limit
                   else "REGRESSION")
        print(
            f"{label}: {measured:.4f} vs baseline {reference:.4f} "
            f"(x{ratio:.3f}) / control {control:.4f} "
            f"(x{control_ratio:.3f}, limit x{limit:.3f}) {verdict}"
        )
        if min(ratio, control_ratio) > limit:
            failed = 1
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_storage.json",
                        help="report path (default: ./BENCH_storage.json)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_pipeline.json to gate the 1-shard path")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="allowed 1-shard regression vs baseline")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    failed = check_sharding_targets(report, args.max_regression)
    if args.baseline:
        failed |= check_baseline(report, args.baseline, args.max_regression)
    return failed


if __name__ == "__main__":
    sys.exit(main())
