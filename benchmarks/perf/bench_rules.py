"""Rule-engine benchmark: incremental materialization and alerting cost.

Two legs:

* ``rules_materialization`` — a 4-rule recording panel with a 2h
  lookback over 8 raw series at 15s resolution, evaluated steady-state
  (one new grid step per cycle) two ways: the reference full-panel
  re-evaluation and the incremental cursor path.  The *always-on* gate:
  incremental must be at least ``--min-speedup`` (default 3x) faster
  per cycle — that ratio is the whole point of carrying cursors, so the
  benchmark fails loudly the day it stops paying, baseline or not.
  Both paths must also produce byte-identical recorded output (asserted
  here, proven in general by test_properties_alerting.py).

* ``alerting_overhead`` — the full pipeline cycle with the alerting
  engine off vs on.  With ``--baseline BENCH_pipeline.json`` the
  alerting-off cycle is gated against the baseline report's
  ``scrape_cycle.cycle_ms`` (default 5%): deployments that did not ask
  for alerting must not pay for it.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_rules [--quick]
        [--output BENCH_rules.json] [--min-speedup 3.0]
        [--baseline BENCH_pipeline.json] [--max-regression 0.05]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.experiments.common import make_sgx_host
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.rules import RecordingRule, RuleGroup
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy

SCHEMA = "teemon.bench.rules/1"

RULE_INTERVAL_S = 15
LOOKBACK_S = 2 * 3600  # the 2h panel the gate is specified over
RAW_SERIES = 8

#: The rule panel: one cheap selector, one grouped aggregate, one rate
#: (full raw-sample scan per window), one rollup composition.
PANEL = (
    RecordingRule(record="job:signal:sum", expr="sum by (idx) (signal)"),
    RecordingRule(record="job:signal:max", expr="max(signal)"),
    RecordingRule(record="job:signal:rate", expr="sum(rate(signal[1m]))"),
    RecordingRule(record="job:signal:avg",
                  expr="avg(avg_over_time(signal[2m]))"),
)


def build_panel_rig(horizon_s: int):
    """A bare TSDB with the raw series plus a materializing rule group."""
    tsdb = Tsdb()
    for series in range(RAW_SERIES):
        labels = Labels.of("signal", idx=str(series))
        for step in range(horizon_s // RULE_INTERVAL_S):
            tsdb.append(
                labels, (step + 1) * seconds(RULE_INTERVAL_S),
                float((step * 7 + series * 13) % 1000),
            )
    group = RuleGroup(
        "bench", list(PANEL),
        interval_ns=seconds(RULE_INTERVAL_S),
        materialize_lookback_ns=seconds(LOOKBACK_S),
    )
    return tsdb, QueryEngine(tsdb), group


def sample_set(tsdb, metric):
    return {
        (series.labels.items(), sample.time_ns, sample.value)
        for series in tsdb.select_metric(metric, 0, 2 ** 62)
        for sample in series.samples
    }


def time_materialization(incremental: bool, cycles: int, repeats: int):
    """Best seconds per steady-state cycle; returns (s, tsdb, final_now)."""
    # Raw data must outlast warmup + every timed repeat.
    total_cycles = cycles * (repeats + 1) + 2
    horizon_s = LOOKBACK_S + (total_cycles + 2) * RULE_INTERVAL_S
    tsdb, engine, group = build_panel_rig(horizon_s)
    state = {"now": seconds(LOOKBACK_S)}

    def advance_one() -> None:
        state["now"] += seconds(RULE_INTERVAL_S)
        if incremental:
            group.evaluate(engine, tsdb, state["now"], incremental=True)
        else:
            group.evaluate_full(engine, tsdb, state["now"])

    # Prime: the first evaluation fills the whole panel on both paths.
    if incremental:
        group.evaluate(engine, tsdb, state["now"], incremental=True)
    else:
        group.evaluate_full(engine, tsdb, state["now"])

    elapsed = best_of(repeats, lambda: [advance_one() for _ in range(cycles)])
    return elapsed / cycles, tsdb, state["now"]


def time_pipeline_cycles(enable_alerting: bool, cycles: int, repeats: int):
    """Best seconds per full scrape->rules->render cycle."""
    kernel, _driver = make_sgx_host(seed=7)
    deployment = deploy(
        kernel, TeemonConfig(enable_alerting=enable_alerting), start=False
    )
    session = deployment.session

    def cycle() -> None:
        kernel.clock.advance(seconds(5))
        deployment.scrape_manager.scrape_once()
        deployment.rule_evaluator.evaluate_all_once()
        session.render("sgx")

    cycle()  # warm-up: first scrape creates every series
    elapsed = best_of(repeats, lambda: [cycle() for _ in range(cycles)])
    deployment.shutdown()
    return elapsed / cycles


def run_suite(quick: bool) -> BenchReport:
    report = BenchReport(quick=quick)
    # The full-panel reference is ~500x the incremental cost, so the
    # materialization leg stays small; the pipeline leg needs bench_wal
    # sizes to measure a ~2ms cycle without noise drowning the gate.
    mat_cycles, mat_repeats = (3, 1) if quick else (8, 3)
    pipe_cycles, pipe_repeats = (10, 4) if quick else (25, 4)

    full_s, full_tsdb, full_now = time_materialization(
        False, mat_cycles, mat_repeats
    )
    inc_s, inc_tsdb, inc_now = time_materialization(
        True, mat_cycles, mat_repeats
    )
    # Both paths walked the same schedule and must agree bit for bit.
    assert inc_now == full_now
    for rule in PANEL:
        assert (sample_set(inc_tsdb, rule.record)
                == sample_set(full_tsdb, rule.record)), rule.record
    report.add(
        "rules_materialization",
        full_ms=full_s * 1e3,
        incremental_ms=inc_s * 1e3,
        speedup=full_s / inc_s,
        panel_steps=LOOKBACK_S // RULE_INTERVAL_S,
        rules=len(PANEL),
        cycles=mat_cycles,
    )

    del full_tsdb, inc_tsdb
    gc.collect()  # shed the 2h panels before timing ~2ms cycles
    off_s = time_pipeline_cycles(False, pipe_cycles, pipe_repeats)
    on_s = time_pipeline_cycles(True, pipe_cycles, pipe_repeats)
    report.add(
        "alerting_overhead",
        off_ms=off_s * 1e3,
        on_ms=on_s * 1e3,
        overhead_ratio=on_s / off_s,
        cycles=pipe_cycles,
    )
    return report


def check_speedup(report: BenchReport, min_speedup: float) -> int:
    """Always-on gate: incremental must beat full re-evaluation."""
    metrics = report.results[0].metrics
    speedup = metrics["speedup"]
    verdict = "OK" if speedup >= min_speedup else "TOO SLOW"
    print(
        f"materialization: full {metrics['full_ms']:.3f}ms vs incremental "
        f"{metrics['incremental_ms']:.3f}ms -> x{speedup:.1f} "
        f"(floor x{min_speedup:.1f}) {verdict}"
    )
    return 0 if speedup >= min_speedup else 1


def check_baseline(report: BenchReport, baseline_path: str,
                   max_regression: float) -> int:
    """Gate: alerting-off must stay within ``max_regression`` of baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_ms = baseline["results"]["scrape_cycle"]["cycle_ms"]
    off_ms = report.results[1].metrics["off_ms"]
    ratio = off_ms / baseline_ms
    limit = 1.0 + max_regression
    verdict = "OK" if ratio <= limit else "REGRESSION"
    print(
        f"alerting-off cycle: {off_ms:.3f}ms vs baseline "
        f"{baseline_ms:.3f}ms -> x{ratio:.3f} (limit x{limit:.3f}) {verdict}"
    )
    return 0 if ratio <= limit else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_rules.json",
                        help="report path (default: ./BENCH_rules.json)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required incremental-vs-full speedup")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_pipeline.json to gate alerting-off against")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="allowed alerting-off regression vs baseline")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    status = check_speedup(report, args.min_speedup)
    if args.baseline:
        status = max(status, check_baseline(
            report, args.baseline, args.max_regression
        ))
    return status


if __name__ == "__main__":
    sys.exit(main())
