"""Metrics-pipeline microbenchmarks.

Unlike the figure benchmarks next door (which regenerate the paper's
tables under ``pytest-benchmark``), this package times the reproduction's
own hot paths — TSDB ingest, query evaluation, hook dispatch, a full
scrape-evaluate-render cycle — and emits ``BENCH_pipeline.json`` so each
PR leaves a performance trajectory behind it.

Run with::

    PYTHONPATH=src python -m benchmarks.perf.bench_pipeline [--quick]
"""
