"""Federation-tier ingest benchmark, saturation sweep, and CI gates.

Quantifies what the remote-write uplink costs the *global* monitor
compared with scraping the same targets directly, at equal sample
volume:

* ``ingest_direct``    — the direct-scrape ingest path: parse one
  OpenMetrics exposition per cycle, merge target identity, batch-append
  (exactly what :meth:`ScrapeManager.scrape_once` does per target);
* ``ingest_federated`` — the remote-write path at the receiver: decode
  batched zlib/base64 frames (CRC-checked WAL records) and batch-append;
* ``client_encode``    — the leaf-side collect+encode cost, reported for
  context (the leaf pays it, not the global tier);
* ``aggregate_uplink`` — the region-tier pushdown payoff: the same
  region view shipped under ``federation_mode="aggregate"`` (recording
  rule outputs plus the raw ``up`` allowlist) against shipping raw.

The saturation sweep (``sweep_n{N}_f{F}_{mode}`` cells) drives a
sharded receiver across fleet sizes x frame sizes x raw/aggregate, the
curve EXPERIMENTS.md's knee recipe reads.

Gates:

* batched remote-write ingest stays within ``--max-overhead`` (default
  1.10x) of direct-scrape ingest — federation must not make the global
  tier the fleet's new bottleneck;
* the aggregate uplink carries at most ``--max-bytes-ratio`` (default
  0.5x) of the raw uplink's bytes at region shape — pushdown must keep
  paying for itself.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_federation [--quick]
        [--output BENCH_federation.json] [--max-overhead 1.10]
        [--max-bytes-ratio 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.openmetrics.parser import parse_exposition
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.remote_write import (
    RemoteWriteReceiver,
    build_ship_filter,
    encode_frame,
)
from repro.pmag.storage import ShardedTsdb
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC

SCHEMA = "teemon.bench.federation/2"

#: Samples per remote-write frame (the client default).
FRAME_SAMPLES = 500

#: Fleet sizes x frame sizes of the saturation sweep (full run).
SWEEP_NODES = (20, 60, 120)
SWEEP_NODES_QUICK = (10, 20, 40)
SWEEP_FRAME_SAMPLES = (100, 500)
SWEEP_CYCLES = 40
SWEEP_CYCLES_QUICK = 12

#: Shard count of the sweep's receiving engine (the ``federated`` test
#: profile's storage shape).
RECEIVER_SHARDS = 4

METRICS = ("sgx_epc_pages_evicted_total", "sgx_aexs_total",
           "ebpf_syscalls_total", "node_cpu_utilization",
           "scrape_duration_seconds")

#: Region-tier recording-rule outputs (one series per rule, fleet-wide
#: aggregates) — what ``federation_mode="aggregate"`` ships instead of
#: the raw per-node series.
RULE_OUTPUTS = ("job:syscalls:rate1m", "job:epc_evictions:rate1m",
                "job:context_switches:rate1m", "job:page_faults:rate1m")


def _fleet_cycles(nodes: int, cycles: int):
    """Per-cycle (now_ns, [(node, metric, value), ...]) fleet snapshots."""
    out = []
    for step in range(cycles):
        now_ns = (step + 1) * 5 * NANOS_PER_SEC
        rows = [
            (f"node-{n}", metric, float(step * (n + 1) + i))
            for n in range(nodes)
            for i, metric in enumerate(METRICS)
        ]
        out.append((now_ns, rows))
    return out


def _expositions(cycle_rows):
    """One exposition body per (cycle, node) — what a scrape reads."""
    bodies = []
    for now_ns, rows in cycle_rows:
        by_node = {}
        for node, metric, value in rows:
            by_node.setdefault(node, []).append(f"{metric} {value}")
        for node, lines in by_node.items():
            bodies.append((now_ns, node, "\n".join(lines) + "\n# EOF\n"))
    return bodies


def _entries(cycle_rows):
    """The same samples as labelled TSDB entries (the remote-write view)."""
    entries = []
    for now_ns, rows in cycle_rows:
        for node, metric, value in rows:
            entries.append((Labels({
                METRIC_NAME_LABEL: metric, "job": "sgx", "instance": node,
            }), now_ns, value))
    return entries


def _region_entries(cycle_rows, nodes: int):
    """A region relay's TSDB view: raw fleet series + rule outputs + up.

    Every cycle lands the fleet's raw samples, one output sample per
    recording rule, and a liveness ``up`` sample per node — the series
    mix an aggregate-mode region uplink filters.
    """
    entries = _entries(cycle_rows)
    for now_ns, _rows in cycle_rows:
        for rule in RULE_OUTPUTS:
            entries.append((Labels({
                METRIC_NAME_LABEL: rule, "job": "sgx",
            }), now_ns, float(now_ns % 97)))
        for n in range(nodes):
            entries.append((Labels({
                METRIC_NAME_LABEL: "up", "job": "sgx",
                "instance": f"node-{n}",
            }), now_ns, 1.0))
    return entries


def _frames(entries, frame_samples: int = FRAME_SAMPLES,
            sender: str = "leaf-0"):
    """Client-side framing: sequence-numbered, zlib/base64-packed."""
    frames = []
    for start in range(0, len(entries), frame_samples):
        chunk = entries[start:start + frame_samples]
        frames.append(encode_frame(sender, 0, len(frames) + 1, chunk))
    return frames


def run_suite(quick: bool) -> BenchReport:
    report = BenchReport(quick=quick)
    nodes = 20 if quick else 60
    cycles = 24 if quick else 80
    runs = 3 if quick else 5

    cycle_rows = _fleet_cycles(nodes, cycles)
    volume = sum(len(rows) for _now, rows in cycle_rows)
    bodies = _expositions(cycle_rows)
    entries = _entries(cycle_rows)
    assert len(entries) == volume

    def direct():
        tsdb = Tsdb()
        for now_ns, node, body in bodies:
            identity = {"job": "sgx", "instance": node}
            batch = []
            for sample in parse_exposition(body):
                labels = dict(sample.labels)
                labels.update(identity)
                labels[METRIC_NAME_LABEL] = sample.name
                batch.append((Labels(labels), now_ns, sample.value))
            tsdb.append_batch(batch)

    direct_s = best_of(runs, direct)
    report.add(
        "ingest_direct", elapsed_ms=direct_s * 1e3,
        samples_per_s=volume / direct_s,
        notes=f"{volume} samples, {nodes} nodes x {cycles} cycles",
    )

    encode_s = best_of(runs, lambda: _frames(entries))
    frames = _frames(entries)
    report.add(
        "client_encode", elapsed_ms=encode_s * 1e3,
        frames=float(len(frames)),
        notes="leaf-side cost, informational (not gated)",
    )

    def federated():
        receiver = RemoteWriteReceiver(Tsdb())
        for body in frames:
            receiver.handle(body)

    federated_s = best_of(runs, federated)
    report.add(
        "ingest_federated", elapsed_ms=federated_s * 1e3,
        samples_per_s=volume / federated_s,
        overhead_vs_direct=federated_s / direct_s,
        notes=f"{len(frames)} frames of <= {FRAME_SAMPLES} samples",
    )

    # Sanity: both paths stored the identical sample volume.
    probe = RemoteWriteReceiver(Tsdb())
    for body in frames:
        probe.handle(body)
    assert probe.samples_applied == volume, (probe.samples_applied, volume)
    assert probe.samples_deduped == 0

    # ------------------------------------------------------------------
    # Region-tier pushdown: aggregate vs raw uplink bytes.
    # ------------------------------------------------------------------
    region = _region_entries(cycle_rows, nodes)
    ship_filter = build_ship_filter("aggregate", allowlist=("up",))
    aggregate = [entry for entry in region if ship_filter(entry[0])]
    raw_bytes = sum(len(f) for f in _frames(region, sender="region-0"))
    agg_bytes = sum(len(f) for f in _frames(aggregate, sender="region-0"))
    report.add(
        "aggregate_uplink",
        raw_bytes=float(raw_bytes),
        aggregate_bytes=float(agg_bytes),
        bytes_ratio_vs_raw=agg_bytes / raw_bytes,
        raw_samples=float(len(region)),
        aggregate_samples=float(len(aggregate)),
        notes=f"region shape: {nodes} nodes, {len(RULE_OUTPUTS)} rules, "
              f"allowlist=('up',)",
    )

    # ------------------------------------------------------------------
    # Saturation sweep: nodes x frame size x mode into a sharded
    # receiver.  The samples_per_s column is the saturation curve.
    # ------------------------------------------------------------------
    sweep_nodes = SWEEP_NODES_QUICK if quick else SWEEP_NODES
    sweep_cycles = SWEEP_CYCLES_QUICK if quick else SWEEP_CYCLES
    sweep_runs = 2 if quick else 3
    for cell_nodes in sweep_nodes:
        rows = _fleet_cycles(cell_nodes, sweep_cycles)
        cell_region = _region_entries(rows, cell_nodes)
        for frame_samples in SWEEP_FRAME_SAMPLES:
            for mode in ("raw", "aggregate"):
                if mode == "raw":
                    shipped = cell_region
                else:
                    shipped = [
                        entry for entry in cell_region
                        if ship_filter(entry[0])
                    ]
                cell_frames = _frames(
                    shipped, frame_samples, sender="region-0"
                )
                cell_bytes = sum(len(f) for f in cell_frames)

                def cell_ingest():
                    receiver = RemoteWriteReceiver(
                        ShardedTsdb(shards=RECEIVER_SHARDS)
                    )
                    for body in cell_frames:
                        receiver.handle(body)

                cell_s = best_of(sweep_runs, cell_ingest)
                report.add(
                    f"sweep_n{cell_nodes}_f{frame_samples}_{mode}",
                    elapsed_ms=cell_s * 1e3,
                    samples_per_s=len(shipped) / cell_s,
                    uplink_bytes=float(cell_bytes),
                    frames=float(len(cell_frames)),
                    samples=float(len(shipped)),
                )

    return report


def check_overhead(report: BenchReport, max_overhead: float,
                   max_bytes_ratio: float) -> int:
    """The CI gates: ingest overhead and aggregate-uplink byte ratio."""
    by_name = {r.name: r for r in report.results}
    failures = 0
    ratio = by_name["ingest_federated"].metrics["overhead_vs_direct"]
    if ratio > max_overhead:
        print(f"GATE FAIL: federated ingest is {ratio:.3f}x direct-scrape "
              f"(limit {max_overhead:.2f}x)", file=sys.stderr)
        failures += 1
    else:
        print(f"gate ok: federated ingest is {ratio:.3f}x direct-scrape "
              f"(limit {max_overhead:.2f}x)")
    bytes_ratio = by_name["aggregate_uplink"].metrics["bytes_ratio_vs_raw"]
    if bytes_ratio > max_bytes_ratio:
        print(f"GATE FAIL: aggregate uplink ships {bytes_ratio:.3f}x raw "
              f"bytes (limit {max_bytes_ratio:.2f}x)", file=sys.stderr)
        failures += 1
    else:
        print(f"gate ok: aggregate uplink ships {bytes_ratio:.3f}x raw "
              f"bytes (limit {max_bytes_ratio:.2f}x)")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_federation.json",
                        help="report path (default: ./BENCH_federation.json)")
    parser.add_argument("--max-overhead", type=float, default=1.10,
                        help="allowed federated/direct ingest ratio")
    parser.add_argument("--max-bytes-ratio", type=float, default=0.5,
                        help="allowed aggregate/raw uplink byte ratio")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    return check_overhead(report, args.max_overhead, args.max_bytes_ratio)


if __name__ == "__main__":
    sys.exit(main())
