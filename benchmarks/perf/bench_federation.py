"""Federation-tier ingest benchmark and its CI gate.

Quantifies what the remote-write uplink costs the *global* monitor
compared with scraping the same targets directly, at equal sample
volume:

* ``ingest_direct``    — the direct-scrape ingest path: parse one
  OpenMetrics exposition per cycle, merge target identity, batch-append
  (exactly what :meth:`ScrapeManager.scrape_once` does per target);
* ``ingest_federated`` — the remote-write path at the receiver: decode
  batched zlib/base64 frames (CRC-checked WAL records) and batch-append;
* ``client_encode``    — the leaf-side collect+encode cost, reported for
  context (the leaf pays it, not the global tier).

The gate: batched remote-write ingest must stay within
``--max-overhead`` (default 1.10×) of direct-scrape ingest — federation
must not make the global tier the fleet's new bottleneck.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_federation [--quick]
        [--output BENCH_federation.json] [--max-overhead 1.10]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import BenchReport, best_of

from repro.openmetrics.parser import parse_exposition
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.remote_write import encode_frame, RemoteWriteReceiver
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC

SCHEMA = "teemon.bench.federation/1"

#: Samples per remote-write frame (the client default).
FRAME_SAMPLES = 500

METRICS = ("sgx_epc_pages_evicted_total", "sgx_aexs_total",
           "ebpf_syscalls_total", "node_cpu_utilization",
           "scrape_duration_seconds")


def _fleet_cycles(nodes: int, cycles: int):
    """Per-cycle (now_ns, [(node, metric, value), ...]) fleet snapshots."""
    out = []
    for step in range(cycles):
        now_ns = (step + 1) * 5 * NANOS_PER_SEC
        rows = [
            (f"node-{n}", metric, float(step * (n + 1) + i))
            for n in range(nodes)
            for i, metric in enumerate(METRICS)
        ]
        out.append((now_ns, rows))
    return out


def _expositions(cycle_rows):
    """One exposition body per (cycle, node) — what a scrape reads."""
    bodies = []
    for now_ns, rows in cycle_rows:
        by_node = {}
        for node, metric, value in rows:
            by_node.setdefault(node, []).append(f"{metric} {value}")
        for node, lines in by_node.items():
            bodies.append((now_ns, node, "\n".join(lines) + "\n# EOF\n"))
    return bodies


def _entries(cycle_rows):
    """The same samples as labelled TSDB entries (the remote-write view)."""
    entries = []
    for now_ns, rows in cycle_rows:
        for node, metric, value in rows:
            entries.append((Labels({
                METRIC_NAME_LABEL: metric, "job": "sgx", "instance": node,
            }), now_ns, value))
    return entries


def _frames(entries):
    """Client-side framing: sequence-numbered, zlib/base64-packed."""
    frames = []
    for start in range(0, len(entries), FRAME_SAMPLES):
        chunk = entries[start:start + FRAME_SAMPLES]
        frames.append(encode_frame("leaf-0", 0, len(frames) + 1, chunk))
    return frames


def run_suite(quick: bool) -> BenchReport:
    report = BenchReport(quick=quick)
    nodes = 20 if quick else 60
    cycles = 24 if quick else 80
    runs = 3 if quick else 5

    cycle_rows = _fleet_cycles(nodes, cycles)
    volume = sum(len(rows) for _now, rows in cycle_rows)
    bodies = _expositions(cycle_rows)
    entries = _entries(cycle_rows)
    assert len(entries) == volume

    def direct():
        tsdb = Tsdb()
        for now_ns, node, body in bodies:
            identity = {"job": "sgx", "instance": node}
            batch = []
            for sample in parse_exposition(body):
                labels = dict(sample.labels)
                labels.update(identity)
                labels[METRIC_NAME_LABEL] = sample.name
                batch.append((Labels(labels), now_ns, sample.value))
            tsdb.append_batch(batch)

    direct_s = best_of(runs, direct)
    report.add(
        "ingest_direct", elapsed_ms=direct_s * 1e3,
        samples_per_s=volume / direct_s,
        notes=f"{volume} samples, {nodes} nodes x {cycles} cycles",
    )

    encode_s = best_of(runs, lambda: _frames(entries))
    frames = _frames(entries)
    report.add(
        "client_encode", elapsed_ms=encode_s * 1e3,
        frames=float(len(frames)),
        notes="leaf-side cost, informational (not gated)",
    )

    def federated():
        receiver = RemoteWriteReceiver(Tsdb())
        for body in frames:
            receiver.handle(body)

    federated_s = best_of(runs, federated)
    report.add(
        "ingest_federated", elapsed_ms=federated_s * 1e3,
        samples_per_s=volume / federated_s,
        overhead_vs_direct=federated_s / direct_s,
        notes=f"{len(frames)} frames of <= {FRAME_SAMPLES} samples",
    )

    # Sanity: both paths stored the identical sample volume.
    probe = RemoteWriteReceiver(Tsdb())
    for body in frames:
        probe.handle(body)
    assert probe.samples_applied == volume, (probe.samples_applied, volume)
    assert probe.samples_deduped == 0

    return report


def check_overhead(report: BenchReport, max_overhead: float) -> int:
    """The CI gate: federated ingest within ``max_overhead`` of direct."""
    by_name = {r.name: r for r in report.results}
    ratio = by_name["ingest_federated"].metrics["overhead_vs_direct"]
    if ratio > max_overhead:
        print(f"GATE FAIL: federated ingest is {ratio:.3f}x direct-scrape "
              f"(limit {max_overhead:.2f}x)", file=sys.stderr)
        return 1
    print(f"gate ok: federated ingest is {ratio:.3f}x direct-scrape "
          f"(limit {max_overhead:.2f}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default="BENCH_federation.json",
                        help="report path (default: ./BENCH_federation.json)")
    parser.add_argument("--max-overhead", type=float, default=1.10,
                        help="allowed federated/direct ingest ratio")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    payload = report.to_payload()
    payload["schema"] = SCHEMA
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"\nwrote {args.output}")
    return check_overhead(report, args.max_overhead)


if __name__ == "__main__":
    sys.exit(main())
