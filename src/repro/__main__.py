"""Command-line entry point.

``python -m repro <command>``:

* ``experiments [ids...]`` — run the paper's experiments (all, or a subset
  by id: table1, table2, fig4..fig11) and print their tables;
* ``list`` — list available experiments;
* ``demo`` — a 60-second single-host monitoring session with a live-ish
  dashboard dump at the end.
"""

from __future__ import annotations

import sys
from typing import List

from repro.experiments.runner import ALL_EXPERIMENTS


def _run_experiments(ids: List[str]) -> int:
    known = dict(ALL_EXPERIMENTS)
    if not ids:
        ids = [experiment_id for experiment_id, _ in ALL_EXPERIMENTS]
    unknown = [i for i in ids if i not in known]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(known)}")
        return 2
    for experiment_id in ids:
        result = known[experiment_id]()
        print(result.render())
        print()
    return 0


def _demo() -> int:
    from repro.apps import MemtierBenchmark, RedisLikeServer
    from repro.frameworks import SconeRuntime
    from repro.sgx import SgxDriver
    from repro.simkernel import Kernel
    from repro.teemon import deploy

    kernel = Kernel(seed=7)
    kernel.load_module(SgxDriver())
    deployment = deploy(kernel)
    runtime = SconeRuntime()
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=64)
    result = bench.run(runtime, server, duration_s=60.0,
                       ebpf_active=True, full_monitoring=True)
    print(result.describe())
    print()
    session = deployment.session
    session.set_process_filter(runtime.process.pid)
    print(session.render("sgx"))
    deployment.shutdown()
    return 0


def main(argv: List[str]) -> int:
    """Dispatch the CLI."""
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    command, *rest = argv
    if command == "list":
        for experiment_id, _ in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0
    if command == "experiments":
        return _run_experiments(rest)
    if command == "demo":
        return _demo()
    print(f"unknown command: {command!r}\n")
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
