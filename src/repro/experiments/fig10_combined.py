"""Figure 10: head-to-head throughput and latency at 78 MB.

The 78 MB (value size 32) slice of the Figure 8/9 sweep with all four
runtimes on shared axes — the "overall performance trends" view the paper
uses to motivate the Figure 11 metric analytics.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, MIB
from repro.experiments.fig8_throughput import run_sweep


def run_fig10(duration_s: float = 5.0, seed: int = 8) -> ExperimentResult:
    """Combined rows (throughput + latency) at the 78 MB database size."""
    result = ExperimentResult(
        "fig10", "Head-to-head at 78 MB: throughput and latency"
    )
    for bench in run_sweep(duration_s=duration_s, seed=seed):
        if bench.db_bytes != 78 * MIB:
            continue
        result.add(
            framework=bench.framework,
            connections=bench.connections,
            kiops=round(bench.throughput_rps / 1000.0, 1),
            latency_ms=round(bench.latency_ms, 2),
        )
    result.note(
        "Subset of the Figure 8/9 sweep; same paper anchors apply."
    )
    return result
