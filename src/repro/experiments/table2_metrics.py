"""Table 2: the System Metrics Exporter's metric/hook catalogue.

Generated from the live system: for every metric class the paper lists,
the experiment verifies that (a) the hooks exist in the simulated kernel's
registry with the right mechanism, and (b) the eBPF exporter actually
attaches a verified program to each of them.
"""

from __future__ import annotations

from repro.exporters.ebpf_exporter import EbpfExporter
from repro.experiments.common import ExperimentResult, make_sgx_host
from repro.simkernel.hooks import HookKind, TABLE2_HOOKS

#: The paper's Table 2, as (metric type, method, field) rows.
TABLE2_ROWS = (
    ("Sys. call metrics", "Kernel tracepoints", "raw_syscalls:sys_enter"),
    ("Sys. call metrics", "Kernel tracepoints", "raw_syscalls:sys_exit"),
    ("Cache metrics", "Kprobes", "add_to_page_cache_lru"),
    ("Cache metrics", "Kprobes", "mark_page_accessed"),
    ("Cache metrics", "Kprobes", "account_page_dirtied"),
    ("Cache metrics", "Kprobes", "mark_buffer_dirty"),
    ("Cache metrics", "Perf. events", "PERF_COUNT_HW_CACHE_MISSES"),
    ("Cache metrics", "Perf. events", "PERF_COUNT_HW_CACHE_REFERENCES"),
    ("Context switches", "Perf. events", "PERF_COUNT_SW_CONTEXT_SWITCHES"),
    ("Context switches", "Kernel tracepoints", "sched:sched_switches"),
    ("Page faults", "Perf. events", "PERF_COUNT_SW_PAGE_FAULTS"),
    ("Page faults", "Kernel tracepoints", "exceptions:page_fault_user"),
    ("Page faults", "Kernel tracepoints", "exceptions:page_fault_kernel"),
)

_METHOD_TO_KIND = {
    "Kernel tracepoints": HookKind.TRACEPOINT,
    "Kprobes": HookKind.KPROBE,
    "Perf. events": HookKind.PERF_EVENT,
}


def run_table2() -> ExperimentResult:
    """Generate Table 2 and verify it against the implementation."""
    kernel, _driver = make_sgx_host(seed=42)
    exporter = EbpfExporter(kernel)
    attached_hooks = {a.hook for a in exporter.runtime.attachments()}

    result = ExperimentResult("table2", "System metrics collected by TEEMon")
    for metric_type, method, field in TABLE2_ROWS:
        registered = field in TABLE2_HOOKS
        kind_matches = (
            registered and TABLE2_HOOKS[field] is _METHOD_TO_KIND[method]
        )
        result.add(
            type=metric_type,
            method=method,
            field=field,
            hook_registered="yes" if registered else "NO",
            mechanism_matches="yes" if kind_matches else "NO",
            program_attached="yes" if field in attached_hooks else "no",
        )
    missing = [row for row in result.rows if row["hook_registered"] != "yes"]
    if missing:
        result.note(f"MISSING HOOKS: {[r['field'] for r in missing]}")
    return result
