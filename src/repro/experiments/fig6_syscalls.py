"""Figure 6: syscall occurrences across two SCONE versions.

§6.4 runs redis-benchmark against Redis compiled with two consecutive
SCONE commits, with TEEMon monitoring the execution:

* commit ``572bd1a5``: clock_gettime peaks over 370 000/s — ten times the
  read/write rate — because every call crosses to the kernel;
* commit ``09fea91``: clock_gettime is handled inside the enclave; at
  most ~100/s reach the kernel, read/write rise from ~23 K to ~32 K/s.

The experiment reproduces the *measurement path* too: rates are obtained
by querying the deployed TEEMon's TSDB (``rate(ebpf_syscalls_total[1m])``),
not by asking the workload model directly.

The §6.4 benchmark is single-host (loopback, no 1 GbE cap), so it uses a
local calibration: the same SCONE mechanism with the request cost measured
on the loopback path (1.61 us/request after the fix — which the pre-fix
commit's 1.38 queue-trips of clock_gettime per request push to 3.72 us,
reproducing the paper's 268 K -> 622 K IOP/s doubling).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.apps.clients import RedisBenchmark
from repro.apps.kvstore import RedisLikeServer
from repro.calibration.profiles import SCONE_CALIBRATION
from repro.experiments.common import ExperimentResult, make_sgx_host
from repro.frameworks.scone import COMMIT_AFTER, COMMIT_BEFORE, SconeRuntime
from repro.teemon import TeemonConfig, deploy

#: Loopback request cost after the clock_gettime fix (no network stack).
#: Chosen so the *monitored* throughput matches the paper's 621,504 IOP/s
#: (the paper measured Figure 7 with TEEMon active).
LOCAL_REQUEST_COST_NS = 1_333.0

#: redis-benchmark configuration (§6.4: single host).
BENCH_CONNECTIONS = 48
BENCH_PIPELINE = 16

SYSCALLS_OF_INTEREST = ("clock_gettime", "futex", "read", "write")


def _local_calibration(version: str):
    """The loopback variant of the SCONE calibration."""
    base = replace(
        SCONE_CALIBRATION,
        request_cost_ns=LOCAL_REQUEST_COST_NS,
        half_saturation_inflight=30.0,
    )
    if version == COMMIT_AFTER:
        # Post-fix: deeper event-loop batching at the higher rate; the
        # kernel-visible clock_gettime trickle is ~100/s total.
        base = replace(
            base,
            syscalls_per_request=(
                ("read", 0.053), ("write", 0.053), ("epoll_wait", 0.053),
                ("futex", 0.9), ("clock_gettime", 0.0002),
            ),
        )
    return base


def run_commit(version: str, seed: int = 6) -> Tuple[float, Dict[str, float]]:
    """Run one commit under full TEEMon; returns (throughput, syscall rates)."""
    kernel, _driver = make_sgx_host(seed=seed)
    deployment = deploy(kernel, TeemonConfig())
    runtime = SconeRuntime(version=version, calibration=_local_calibration(version))
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = RedisBenchmark(connections=BENCH_CONNECTIONS, pipeline=BENCH_PIPELINE)
    outcome = bench.run(
        runtime, server, duration_s=90.0, slice_s=1.0,
        ebpf_active=True, full_monitoring=True,
    )
    rates = deployment.session.syscall_rates(window="1m")
    deployment.shutdown()
    return outcome.throughput_rps, rates


def run_fig6(seed: int = 6) -> ExperimentResult:
    """Measure the syscall-rate comparison between the two commits."""
    result = ExperimentResult(
        "fig6", "Syscall occurrences per second, Redis with SCONE versions"
    )
    for version in (COMMIT_BEFORE, COMMIT_AFTER):
        _throughput, rates = run_commit(version, seed=seed)
        for name in SYSCALLS_OF_INTEREST:
            result.add(
                commit=version,
                syscall=name,
                per_second=round(rates.get(name, 0.0), 1),
            )
    result.note(
        "Paper: clock_gettime peaked over 370,000/s on 572bd1a5 (10x the "
        "read/write rates) and fell to at most ~100/s on 09fea91."
    )
    return result
