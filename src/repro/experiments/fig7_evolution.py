"""Figure 7: Redis throughput across the SCONE code evolution.

Same setup as Figure 6 (single host, redis-benchmark), reporting IOP/s per
commit plus the native Redis reference: the paper measured 267,952 IOP/s on
commit 572bd1a5 and 621,504 IOP/s on 09fea91 — the clock_gettime fix
almost doubled throughput.
"""

from __future__ import annotations

from repro.apps.clients import RedisBenchmark
from repro.apps.kvstore import RedisLikeServer
from repro.experiments.common import ExperimentResult, make_sgx_host
from repro.experiments.fig6_syscalls import (
    BENCH_CONNECTIONS,
    BENCH_PIPELINE,
    run_commit,
)
from repro.frameworks.native import NativeRuntime
from repro.frameworks.scone import COMMIT_AFTER, COMMIT_BEFORE


def _native_local_throughput(seed: int) -> float:
    kernel, _driver = make_sgx_host(seed=seed)
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = RedisBenchmark(connections=BENCH_CONNECTIONS, pipeline=BENCH_PIPELINE)
    outcome = bench.run(runtime, server, duration_s=30.0, slice_s=1.0)
    return outcome.throughput_rps


def run_fig7(seed: int = 7) -> ExperimentResult:
    """Measure throughput per commit and the native reference."""
    result = ExperimentResult(
        "fig7", "Redis throughput at different stages of code evolution"
    )
    for version in (COMMIT_BEFORE, COMMIT_AFTER):
        throughput, _rates = run_commit(version, seed=seed)
        result.add(configuration=f"scone @ {version}", iops=round(throughput))
    result.add(
        configuration="native redis",
        iops=round(_native_local_throughput(seed)),
    )
    result.note(
        "Paper: 267,952 IOP/s on 572bd1a5; 621,504 IOP/s on 09fea91 "
        "(throughput almost doubled by handling clock_gettime in-enclave)."
    )
    return result
