"""Experiment drivers: one module per table and figure of the paper.

Each module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows reproduce
the corresponding artifact.  :mod:`repro.experiments.runner` runs them all
and renders the paper-vs-measured comparison that EXPERIMENTS.md records.

==========  =============================================  =====================
id          paper artifact                                 module
==========  =============================================  =====================
table1      Table 1 (tool survey)                          table1_tools
table2      Table 2 (SME metrics and hooks)                table2_metrics
fig3        Fig. 3 (the SGX dashboard screenshot)          fig3_dashboard
fig4        Fig. 4 (component CPU / memory footprint)      fig4_footprint
fig5        Fig. 5 (monitoring overhead on applications)   fig5_overhead
fig6        Fig. 6 (syscalls across SCONE versions)        fig6_syscalls
fig7        Fig. 7 (throughput across code evolution)      fig7_evolution
fig8        Fig. 8 (throughput vs connections)             fig8_throughput
fig9        Fig. 9 (latency vs connections)                fig9_latency
fig10       Fig. 10 (head-to-head at 78 MB)                fig10_combined
fig11       Fig. 11 (detailed metric analytics)            fig11_metrics
==========  =============================================  =====================
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
