"""Figure 9: Redis latency under each runtime, vs connections.

Shares the sweep with Figure 8.  The paper's anchor points at 320
connections: ~2 ms native, ~9 ms SCONE, ~20 ms SGX-LKL, ~249 ms
Graphene-SGX — which are, to first order, Little's law on the 2560
in-flight requests (connections x pipeline) divided by each framework's
throughput.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, MIB
from repro.experiments.fig8_throughput import run_sweep


def run_fig9(duration_s: float = 5.0, seed: int = 8) -> ExperimentResult:
    """Latency rows for every framework / db size / connection count."""
    result = ExperimentResult(
        "fig9", "Redis latency: native vs SGX frameworks (ms)"
    )
    for bench in run_sweep(duration_s=duration_s, seed=seed):
        result.add(
            framework=bench.framework,
            db_mb=bench.db_bytes // MIB,
            connections=bench.connections,
            latency_ms=round(bench.latency_ms, 2),
        )
    result.note(
        "Paper at 320 connections: ~2 ms (native), ~9 ms (SCONE), ~20 ms "
        "(SGX-LKL), ~249 ms (Graphene-SGX)."
    )
    return result
