"""Run every experiment and render the paper-vs-measured report.

``python -m repro.experiments.runner`` executes all ten experiments (with
reduced durations by default so the full suite finishes in minutes) and
prints each table; :func:`summary_markdown` renders the EXPERIMENTS.md
comparison body.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3_dashboard import run_fig3
from repro.experiments.fig4_footprint import run_fig4
from repro.experiments.fig5_overhead import run_fig5
from repro.experiments.fig6_syscalls import run_fig6
from repro.experiments.fig7_evolution import run_fig7
from repro.experiments.fig8_throughput import run_fig8
from repro.experiments.fig9_latency import run_fig9
from repro.experiments.fig10_combined import run_fig10
from repro.experiments.fig11_metrics import run_fig11
from repro.experiments.table1_tools import run_table1
from repro.experiments.table2_metrics import run_table2

ALL_EXPERIMENTS: Tuple[Tuple[str, Callable[[], ExperimentResult]], ...] = (
    ("table1", run_table1),
    ("table2", run_table2),
    ("fig3", lambda: run_fig3()[0]),
    ("fig4", lambda: run_fig4(hours=2.0)),
    ("fig5", run_fig5),
    ("fig6", run_fig6),
    ("fig7", run_fig7),
    ("fig8", lambda: run_fig8(duration_s=3.0)),
    ("fig9", lambda: run_fig9(duration_s=3.0)),
    ("fig10", lambda: run_fig10(duration_s=3.0)),
    ("fig11", lambda: run_fig11(duration_s=10.0)),
)


def run_all(verbose: bool = True) -> Dict[str, ExperimentResult]:
    """Execute every experiment; returns results keyed by id."""
    results: Dict[str, ExperimentResult] = {}
    for experiment_id, runner in ALL_EXPERIMENTS:
        result = runner()
        results[experiment_id] = result
        if verbose:
            print(result.render())
            print()
    return results


def summary_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Markdown tables for EXPERIMENTS.md."""
    lines: List[str] = []
    for experiment_id, result in results.items():
        lines.append(f"### {experiment_id}: {result.title}\n")
        if result.rows:
            columns = list(result.rows[0].keys())
            lines.append("| " + " | ".join(columns) + " |")
            lines.append("|" + "---|" * len(columns))
            for row in result.rows:
                lines.append(
                    "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
                )
        for note in result.notes:
            lines.append(f"\n> {note}")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    run_all(verbose=True)
