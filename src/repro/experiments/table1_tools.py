"""Table 1: the profiling/monitoring tool survey.

The table is qualitative, but it is also a *claim about TEEMon*: the row
for TEEMon asserts framework-agnosticism, paging metrics, enclave
transitions, orchestrated applications, real-time reports and
function/event/system granularity.  The reproduction generates the table
from a capability registry and — for the TEEMon row — derives each
capability from the actual code (e.g. "paging" is true because the TME
exports EPC eviction counters), so the table cannot drift from the
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.experiments.common import ExperimentResult

#: Granularity symbols from the paper's caption.
FUNCTION, OBJECT, EVENT, SYSTEM = "function", "object", "event", "system"


@dataclass(frozen=True)
class ToolCapabilities:
    """One row of Table 1."""

    name: str
    framework_agnostic: bool
    paging: bool
    enclave_transitions: bool
    orchestrated_applications: bool
    real_time_reports: bool
    granularity: Tuple[str, ...]


SURVEYED_TOOLS = (
    ToolCapabilities("LIKWID", True, False, False, True, False, (FUNCTION, SYSTEM)),
    ToolCapabilities("perf", True, False, False, False, False, (FUNCTION, SYSTEM)),
    ToolCapabilities("MemProf", True, False, False, False, False, (OBJECT,)),
    ToolCapabilities("TEE-Perf", True, False, False, False, False, (FUNCTION,)),
    ToolCapabilities("gprof", True, False, False, False, False, (FUNCTION,)),
    ToolCapabilities("VTune", True, False, False, False, False, (FUNCTION,)),
    ToolCapabilities("SGX-Perf", False, True, True, False, False, (EVENT,)),
    ToolCapabilities("SGXTOP", True, True, True, False, True, (EVENT,)),
)


def derive_teemon_row() -> ToolCapabilities:
    """Derive TEEMon's capabilities from the implementation itself."""
    from repro.exporters.tme import _METRIC_MAP
    from repro.frameworks import ALL_FRAMEWORKS
    from repro.orchestration.helm import TEEMON_CHART
    from repro.pman.window import DEFAULT_EVERY_NS
    from repro.simkernel.hooks import TABLE2_HOOKS

    exported_metrics = {name for name, *_ in _METRIC_MAP}
    paging = "sgx_epc_pages_evicted_total" in exported_metrics
    # Transitions are observable through the driver hooks + AEX accounting.
    transitions = "sgx_epc_pages_reclaimed_total" in exported_metrics
    framework_agnostic = len(ALL_FRAMEWORKS) >= 3  # works across runtimes
    orchestrated = TEEMON_CHART.name == "teemon"   # the Helm chart exists
    real_time = DEFAULT_EVERY_NS > 0               # continuous analysis loop
    granularity = (FUNCTION, EVENT, SYSTEM)
    assert "raw_syscalls:sys_enter" in TABLE2_HOOKS
    return ToolCapabilities(
        "TEEMon", framework_agnostic, paging, transitions,
        orchestrated, real_time, granularity,
    )


def run_table1() -> ExperimentResult:
    """Generate Table 1."""
    result = ExperimentResult("table1", "Profile/monitoring tools for SGX")
    for tool in SURVEYED_TOOLS + (derive_teemon_row(),):
        result.add(
            tool=tool.name,
            framework_agnostic="yes" if tool.framework_agnostic else "no",
            paging="yes" if tool.paging else "no",
            enclave_transitions="yes" if tool.enclave_transitions else "no",
            orchestrated="yes" if tool.orchestrated_applications else "no",
            real_time="yes" if tool.real_time_reports else "no",
            granularity=",".join(tool.granularity),
        )
    result.note(
        "TEEMon row derived from the implementation (TME metric map, "
        "framework registry, Helm chart, PMAN cadence)."
    )
    return result
