"""Figure 11: detailed performance-metric analytics per 100 GET requests.

The six configurations of §6.5 — {8, 320, 580} connections x {78 MB (S),
105 MB (L)} databases — for each runtime, reporting six statistics per 100
GET requests:

(a) user-space page faults        (d) evicted EPC pages
(b) total (host-wide) page faults (e) process context switches
(c) LLC misses                    (f) host-wide context switches

Crucially, the numbers are measured **through TEEMon**: each cell deploys
the stack, runs the benchmark under monitoring, and derives the statistics
from TSDB counter deltas (the same query the paper's dashboards plot) —
not from the workload model's internal counters.  The monitoring pipeline
is therefore part of what this experiment validates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.clients import MemtierBenchmark
from repro.apps.kvstore import RedisLikeServer
from repro.experiments.common import ExperimentResult, MIB, make_sgx_host
from repro.frameworks import ALL_FRAMEWORKS, create_runtime
from repro.teemon import TeemonConfig, deploy

#: The paper's six configurations: (label, connections, value size).
CONFIGS: Tuple[Tuple[str, int, int], ...] = (
    ("8C-S", 8, 32),
    ("8C-L", 8, 64),
    ("320C-S", 320, 32),
    ("320C-L", 320, 64),
    ("584C-S", 584, 32),
    ("584C-L", 584, 64),
)
# (the paper uses 580 connections; memtier requires a multiple of the 8
#  client threads, so the closest valid count is 584 — the paper's own
#  "the indicated number of connections is always a factor of 8" implies
#  the same rounding.)


def _latest(session, metric: str, **labels) -> float:
    vector = session.query(metric if not labels else _selector(metric, labels))
    return vector[0][1] if vector else 0.0


def _selector(metric: str, labels: Dict[str, str]) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return f"{metric}{{{inner}}}"


def run_cell(
    framework: str, connections: int, value_size: int,
    duration_s: float = 30.0, seed: int = 11,
) -> Dict[str, float]:
    """One Figure-11 cell: returns the six statistics per 100 GETs."""
    kernel, _driver = make_sgx_host(seed=seed)
    deployment = deploy(kernel, TeemonConfig())
    runtime = create_runtime(framework)
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=connections)
    bench.prepopulate(runtime, server, value_size=value_size)
    session = deployment.session
    pid = str(runtime.process.pid)

    # Counter baselines after population, before the GET phase.  One scrape
    # is forced so the TSDB has the post-population values.
    deployment.scrape_manager.scrape_once()
    before = _read_counters(session, pid)
    outcome = bench.run(
        runtime, server, duration_s=duration_s, slice_s=1.0,
        ebpf_active=True, full_monitoring=True,
    )
    deployment.scrape_manager.scrape_once()
    after = _read_counters(session, pid)
    deployment.shutdown()

    requests = max(1, outcome.requests_total)
    per100 = 100.0 / requests
    return {
        "user_faults": (after["user_faults"] - before["user_faults"]) * per100,
        "total_faults": (after["total_faults"] - before["total_faults"]) * per100,
        "llc_misses": (after["llc_misses"] - before["llc_misses"]) * per100,
        "epc_evictions": (after["epc_evictions"] - before["epc_evictions"]) * per100,
        "ctx_process": (after["ctx_process"] - before["ctx_process"]) * per100,
        "ctx_host": (after["ctx_host"] - before["ctx_host"]) * per100,
    }


def _read_counters(session, pid: str) -> Dict[str, float]:
    return {
        "user_faults": _latest(
            session, "ebpf_page_faults_user_pid_total", pid=pid
        ),
        "total_faults": _latest(session, "ebpf_page_faults_total"),
        "llc_misses": _latest(session, "ebpf_llc_misses_total"),
        "epc_evictions": _latest(session, "sgx_epc_pages_evicted_total"),
        "ctx_process": _latest(
            session, "ebpf_context_switches_pid_total", pid=pid
        ),
        "ctx_host": _latest(session, "ebpf_context_switches_total"),
    }


def run_fig11(
    frameworks: Tuple[str, ...] = ALL_FRAMEWORKS,
    duration_s: float = 30.0,
    seed: int = 11,
) -> ExperimentResult:
    """All cells: framework x configuration, six statistics each."""
    result = ExperimentResult(
        "fig11", "Detailed metrics per 100 GET requests (measured via TEEMon)"
    )
    for framework in frameworks:
        for label, connections, value_size in CONFIGS:
            stats = run_cell(
                framework, connections, value_size,
                duration_s=duration_s, seed=seed,
            )
            result.add(
                framework=framework,
                config=label,
                user_faults=round(stats["user_faults"], 4),
                total_faults=round(stats["total_faults"], 1),
                llc_misses=round(stats["llc_misses"], 1),
                epc_evictions=round(stats["epc_evictions"], 4),
                ctx_process=round(stats["ctx_process"], 3),
                ctx_host=round(stats["ctx_host"], 1),
            )
    result.note(
        "Paper anchors: SCONE user faults 0.069/0.064 per 100 GETs at "
        "320C/580C-L; SCONE evictions up to 137 at 580C-L vs <= 1.7 "
        "(SGX-LKL) and <= 0.03 (Graphene); Graphene total faults up to "
        "8,996 and host context switches up to 304 (12x others); native "
        "LLC 1.8-23 vs 29-103 (SCONE/SGX-LKL) and up to 161 (Graphene)."
    )
    return result
