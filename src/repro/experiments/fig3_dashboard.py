"""Figure 3: the SGX dashboard during a Redis benchmark.

Figure 3 is a screenshot of TEEMon's front-end "showing SGX-related
metrics ... recorded data for the Redis database during a benchmark with
its two phases (populating the database and executing queries) visible as
two consecutive curves", with a process filter applied.

The reproduction regenerates it: deploy TEEMon, run the two benchmark
phases (a SET-heavy population phase then the GET phase), apply the
``redis-server`` process filter, and render the SGX dashboard.  The
experiment's rows record which panels display data, and the rendered text
is attached for inspection.
"""

from __future__ import annotations

from repro.apps.clients import MemtierBenchmark
from repro.apps.kvstore import RedisLikeServer
from repro.experiments.common import ExperimentResult, make_sgx_host
from repro.frameworks.scone import SconeRuntime
from repro.pmv.render import render_dashboard
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy


def run_fig3(seed: int = 3, width: int = 76):
    """Regenerate the dashboard; returns (ExperimentResult, rendered text)."""
    kernel, _driver = make_sgx_host(seed=seed, hostname="desktop")
    deployment = deploy(kernel, TeemonConfig())
    runtime = SconeRuntime()
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)

    # Phase 1: populate (SET traffic + EPC commit).
    bench.prepopulate(runtime, server, keys=720_000, value_size=64)
    population_sets = 720_000
    kernel.syscalls.dispatch("write", runtime.process.pid, count=population_sets // 8)
    kernel.clock.advance(seconds(30))

    # Phase 2: the GET benchmark.
    bench.run(runtime, server, duration_s=120.0,
              ebpf_active=True, full_monitoring=True)

    session = deployment.session
    session.set_process_filter(runtime.process.pid)
    rendered = session.render("sgx", width=width)

    result = ExperimentResult(
        "fig3", "SGX dashboard during the Redis benchmark (screenshot)"
    )
    dashboard = deployment.dashboards["sgx"]
    for panel in dashboard.panels():
        data = panel.snapshot(deployment.engine, kernel.clock.now_ns,
                              dashboard.variables)
        has_data = bool(data.series) or bool(data.rows)
        points = sum(len(s.samples) for s in data.series) if data.series else len(data.rows)
        result.add(panel=panel.title, kind=panel.kind,
                   has_data="yes" if has_data else "NO", points=points)
    result.note("Process filter applied: redis-server "
                f"(pid {runtime.process.pid}).")
    deployment.shutdown()
    return result, rendered
