"""Figure 8: throughput of Redis under each runtime, vs connections.

The §6.5 head-to-head: memtier_benchmark (8 client threads, pipeline 8,
GET requests, connection counts that are multiples of 8) against Redis
pre-populated with 720 000 keys at value sizes 32/64/96 bytes (database
sizes 78/105/127 MB), over a switched 1 GbE link; Redis capped at a 1 GB
enclave heap.

:func:`run_sweep` is shared with the Figure 9/10 experiments: one run per
(framework, connections, db size) produces both throughput and latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.clients import BenchmarkResult, MemtierBenchmark
from repro.apps.kvstore import PAPER_DB_SIZES, RedisLikeServer
from repro.calibration import paper
from repro.experiments.common import ExperimentResult, MIB, make_sgx_host
from repro.frameworks import ALL_FRAMEWORKS, create_runtime

SWEEP_CONNECTIONS = paper.FIG8_CONNECTIONS
SWEEP_VALUE_SIZES = (32, 64, 96)


def run_single(
    framework: str,
    connections: int,
    value_size: int,
    duration_s: float = 5.0,
    seed: int = 8,
) -> BenchmarkResult:
    """One benchmark cell (fresh host each time; runs are independent)."""
    kernel, _driver = make_sgx_host(seed=seed)
    runtime = create_runtime(framework)
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=connections)
    bench.prepopulate(runtime, server, value_size=value_size)
    return bench.run(runtime, server, duration_s=duration_s, slice_s=1.0)


_SWEEP_CACHE: Dict[Tuple, List[BenchmarkResult]] = {}


def run_sweep(
    frameworks: Tuple[str, ...] = ALL_FRAMEWORKS,
    connections: Tuple[int, ...] = SWEEP_CONNECTIONS,
    value_sizes: Tuple[int, ...] = SWEEP_VALUE_SIZES,
    duration_s: float = 5.0,
    seed: int = 8,
) -> List[BenchmarkResult]:
    """The full Figure 8-10 sweep (memoized: Figures 8, 9 and 10 share it)."""
    key = (frameworks, connections, value_sizes, duration_s, seed)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    results: List[BenchmarkResult] = []
    for framework in frameworks:
        for value_size in value_sizes:
            for conns in connections:
                results.append(
                    run_single(framework, conns, value_size,
                               duration_s=duration_s, seed=seed)
                )
    _SWEEP_CACHE[key] = results
    return results


def run_fig8(duration_s: float = 5.0, seed: int = 8) -> ExperimentResult:
    """Throughput rows for every framework / db size / connection count."""
    result = ExperimentResult(
        "fig8", "Redis throughput: native vs SGX frameworks (KIOP/s)"
    )
    for bench in run_sweep(duration_s=duration_s, seed=seed):
        result.add(
            framework=bench.framework,
            db_mb=bench.db_bytes // MIB,
            connections=bench.connections,
            kiops=round(bench.throughput_rps / 1000.0, 1),
        )
    result.note(
        "Paper peaks: native 1,010-1,200 KIOP/s at 320 connections; SCONE "
        "278 K at 560 (~23% of native, -12% at 105 MB); SGX-LKL 121 K at "
        "320 with a steep dip at 560; Graphene-SGX 20 K at 8 connections, "
        "declining (12 K at 105 MB for one client)."
    )
    return result
