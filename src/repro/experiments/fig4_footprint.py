"""Figure 4: CPU and memory consumption of TEEMon's components.

The paper runs TEEMon idle on the desktop machine for 24 hours and
measures each component's CPU utilisation and memory.  The reproduction
does the same on virtual time: deploy, let the scrape/analysis loops run
for 24 virtual hours, then read each component process's *accumulated CPU
time* (charged by the exporters as they serve scrapes and by the service
accounting tick) and resident memory.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, MIB, make_sgx_host
from repro.simkernel.clock import NANOS_PER_SEC, seconds
from repro.teemon import TeemonConfig, deploy

DEFAULT_HOURS = 24.0


def run_fig4(hours: float = DEFAULT_HOURS, seed: int = 4) -> ExperimentResult:
    """Deploy idle, run ``hours`` of virtual time, measure footprints."""
    kernel, _driver = make_sgx_host(seed=seed, hostname="desktop")
    deployment = deploy(kernel, TeemonConfig())
    start_ns = kernel.clock.now_ns
    kernel.clock.advance(seconds(hours * 3600.0))
    elapsed_ns = kernel.clock.now_ns - start_ns

    result = ExperimentResult(
        "fig4", f"TEEMon component footprint over {hours:g} h (virtual)"
    )
    components = []
    for exporter in deployment.exporters.values():
        components.append((exporter.PROCESS_NAME, exporter.process))
    for service in deployment.services.values():
        components.append((service.name, service.process))
    for name, process in components:
        cpu_fraction = process.cpu_time_ns / elapsed_ns if elapsed_ns else 0.0
        result.add(
            component=name,
            cpu_percent=round(cpu_fraction * 100.0, 3),
            memory_mb=round(process.rss_bytes / MIB, 1),
        )
    total_memory = sum(row["memory_mb"] for row in result.rows)
    result.add(component="TOTAL", cpu_percent=None, memory_mb=round(total_memory, 1))
    result.note(
        "Paper: cAdvisor highest CPU (~3% avg); total memory ~700 MB with "
        "Prometheus ~4x the other components."
    )
    deployment.shutdown()
    return result
