"""Figure 5: TEEMon's overhead on real applications.

Three configurations per application (MongoDB, NGINX, Redis under SCONE),
as in §6.3:

* **Monitoring OFF** — native SGX baseline;
* **Monitoring OFF + eBPF ON** — only the in-kernel programs attached;
* **Monitoring ON** — full TEEMon.

Reported as throughput normalized to the baseline.  The mechanism behind
the numbers: every instrumented event (syscalls dominate) costs the eBPF
program-run time in the kernel, and the full stack roughly doubles the
penalty (aggregation + cAdvisor interference, §6.3).
"""

from __future__ import annotations

from repro.apps.clients import MemtierBenchmark
from repro.apps.docstore import MongoLikeServer
from repro.apps.kvstore import RedisLikeServer
from repro.apps.webserver import NginxLikeServer
from repro.experiments.common import ExperimentResult, make_sgx_host
from repro.frameworks.scone import SconeRuntime

CONFIGS = (
    ("off", False, False),
    ("ebpf_only", True, False),
    ("full", True, True),
)


def _redis_throughput(ebpf: bool, full: bool, seed: int) -> float:
    kernel, _driver = make_sgx_host(seed=seed)
    runtime = SconeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=32)
    outcome = bench.run(
        runtime, server, duration_s=10.0, slice_s=1.0,
        ebpf_active=ebpf, full_monitoring=full,
    )
    return outcome.throughput_rps


def _nginx_throughput(ebpf: bool, full: bool, seed: int) -> float:
    kernel, _driver = make_sgx_host(seed=seed)
    runtime = SconeRuntime()
    runtime.setup(kernel, app_name="nginx")
    server = NginxLikeServer()
    return server.achievable_rate(runtime, ebpf_active=ebpf, full_monitoring=full)


def _mongodb_throughput(ebpf: bool, full: bool, seed: int) -> float:
    kernel, _driver = make_sgx_host(seed=seed)
    runtime = SconeRuntime()
    runtime.setup(kernel, app_name="mongod")
    server = MongoLikeServer()
    return server.achievable_rate(runtime, ebpf_active=ebpf, full_monitoring=full)


_APPS = (
    ("mongodb", _mongodb_throughput),
    ("nginx", _nginx_throughput),
    ("redis", _redis_throughput),
)


def run_fig5(seed: int = 5) -> ExperimentResult:
    """Measure normalized throughput for the three apps x three configs."""
    result = ExperimentResult(
        "fig5", "Monitoring overhead (normalized to native SGX execution)"
    )
    for app_name, measure in _APPS:
        baseline = measure(False, False, seed)
        for config_name, ebpf, full in CONFIGS:
            throughput = measure(ebpf, full, seed)
            result.add(
                app=app_name,
                config=config_name,
                throughput_rps=round(throughput, 1),
                normalized=round(throughput / baseline, 4),
            )
    result.note(
        "Paper: normalized throughput 0.87 (NGINX) to 0.95 (MongoDB); "
        "eBPF programs account for about half of the drop."
    )
    return result
