"""Shared experiment machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sgx.driver import SgxDriver
from repro.simkernel.kernel import Kernel

MIB = 1024 * 1024


@dataclass
class ExperimentResult:
    """Rows reproducing one table or figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        """Append one row."""
        self.rows.append(row)

    def note(self, text: str) -> None:
        """Attach a note (substitutions, deviations)."""
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        """Values of one column across all rows."""
        return [row.get(name) for row in self.rows]

    def rows_where(self, **filters: Any) -> List[Dict[str, Any]]:
        """Rows matching all equality filters."""
        return [
            row for row in self.rows
            if all(row.get(k) == v for k, v in filters.items())
        ]

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        """Plain-text table of the rows."""
        if not self.rows:
            return f"{self.experiment_id}: (no rows)"
        cols = list(columns) if columns else list(self.rows[0].keys())
        header = [c for c in cols]
        body = [
            [_format_cell(row.get(c)) for c in cols]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def make_sgx_host(seed: int, hostname: str = "testbed") -> Tuple[Kernel, SgxDriver]:
    """A fresh host with the SGX driver loaded (the paper's server)."""
    kernel = Kernel(seed=seed, hostname=hostname)
    driver = SgxDriver()
    kernel.load_module(driver)
    return kernel, driver
