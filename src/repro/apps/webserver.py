"""An NGINX-like static web server model.

Used by the Figure-5 overhead experiment.  NGINX's request path is
syscall-dense relative to its compute — accept, read, open/stat of the
document, sendfile-ish writes, close — which is exactly why it shows the
*highest* monitoring overhead in the paper (87 % of baseline): every one of
those syscalls is an instrumented event.

The server keeps a real document root; GETs read documents through the
kernel page cache, producing the page-cache kprobe traffic TEEMon's cache
metrics count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.frameworks.base import SgxFramework
from repro.simkernel.clock import NANOS_PER_SEC

#: Syscalls per HTTP request (keep-alive connections, small static files).
SYSCALLS_PER_REQUEST: Tuple[Tuple[str, float], ...] = (
    ("read", 1.0),        # request read
    ("open", 0.5),        # document open (fd cache misses)
    ("close", 0.5),
    ("writev", 1.5),      # response header + body
    ("epoll_wait", 1.0),
    ("clock_gettime", 2.0),  # access-log timestamps + keepalive timers
    ("accept4", 0.1),
)

#: In-enclave service cost per request under SCONE, ns (≈ 80 K req/s peak).
REQUEST_COST_NS = 12_000.0


@dataclass
class HttpStats:
    """Request counters."""

    requests: int = 0
    not_found: int = 0
    bytes_sent: int = 0


class NginxLikeServer:
    """Static file server over the simulated page cache."""

    def __init__(self, name: str = "nginx") -> None:
        self.name = name
        self._documents: Dict[str, bytes] = {}
        self._inode_by_path: Dict[str, int] = {}
        self._next_inode = 1
        self.stats = HttpStats()

    # ------------------------------------------------------------------
    def put_document(self, path: str, content: bytes) -> None:
        """Install a document at ``path``."""
        if not path.startswith("/"):
            raise ReproError(f"document paths are absolute: {path!r}")
        self._documents[path] = content
        if path not in self._inode_by_path:
            self._inode_by_path[path] = self._next_inode
            self._next_inode += 1

    def handle_get(self, runtime: SgxFramework, path: str) -> Tuple[int, bytes]:
        """Serve one GET through the kernel (page cache + syscalls)."""
        kernel = runtime._require_setup()  # noqa: SLF001 - harness-level access
        pid = runtime.process.pid
        kernel.syscalls.dispatch("read", pid)
        self.stats.requests += 1
        content = self._documents.get(path)
        if content is None:
            self.stats.not_found += 1
            kernel.syscalls.dispatch("writev", pid)
            return 404, b"not found"
        inode = self._inode_by_path[path]
        pages = max(1, len(content) // 4096)
        for page_index in range(pages):
            kernel.page_cache.read(inode, page_index, pid=pid)
        kernel.syscalls.dispatch("writev", pid)
        self.stats.bytes_sent += len(content)
        return 200, content

    # ------------------------------------------------------------------
    # Aggregate load (Figure 5 overhead experiment)
    # ------------------------------------------------------------------
    @staticmethod
    def events_per_request() -> float:
        """Instrumented syscall events per request."""
        return sum(rate for _, rate in SYSCALLS_PER_REQUEST)

    def run_load_slice(
        self,
        runtime: SgxFramework,
        requests: int,
        duration_ns: int,
        document_bytes: int = 4096,
    ) -> None:
        """Replay ``requests`` worth of HTTP traffic in aggregate."""
        if requests <= 0:
            return
        kernel = runtime._require_setup()  # noqa: SLF001
        pid = runtime.process.pid
        for name, per_request in SYSCALLS_PER_REQUEST:
            count = int(per_request * requests)
            if count > 0:
                runtime._dispatch_syscalls(name, count)  # noqa: SLF001
        kernel.page_cache.account_activity(
            pid, reads=requests * max(1, document_bytes // 4096), hit_ratio=0.97
        )
        self.stats.requests += requests
        self.stats.bytes_sent += requests * document_bytes

    def achievable_rate(
        self,
        runtime: SgxFramework,
        ebpf_active: bool = False,
        full_monitoring: bool = False,
    ) -> float:
        """Requests/s under the runtime and monitoring configuration."""
        overhead = _monitoring_factor(
            self.events_per_request(), REQUEST_COST_NS, ebpf_active, full_monitoring
        )
        return (1e9 / REQUEST_COST_NS) * overhead


def _monitoring_factor(
    events_per_request: float,
    request_cost_ns: float,
    ebpf_active: bool,
    full_monitoring: bool,
) -> float:
    """Shared overhead model (same shape as the framework one)."""
    if not ebpf_active and not full_monitoring:
        return 1.0
    from repro.frameworks.base import EBPF_EVENT_COST_NS

    share = events_per_request * EBPF_EVENT_COST_NS / request_cost_ns
    overhead = share * (2.0 if full_monitoring else 1.0)
    return 1.0 / (1.0 + overhead)
