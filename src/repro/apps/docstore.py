"""A MongoDB-like document store model.

The Figure-5 experiment's third application.  MongoDB sits at the other
end of the overhead spectrum from NGINX: each operation does substantial
in-process work (BSON decode, index lookup, journal append) relative to
its syscall count, so monitoring costs it the least (95 % of baseline in
the paper).

The store is real: named collections of dict documents with ``insert``,
``find`` (equality filters), ``update`` and ``delete``, plus periodic
journal flushes that dirty page-cache pages (the ``fsync`` traffic TEEMon
sees from database workloads).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.frameworks.base import SgxFramework

#: Syscalls per operation: few, large batches (snappy-compressed wire).
SYSCALLS_PER_OP: Tuple[Tuple[str, float], ...] = (
    ("recvfrom", 1.0),
    ("sendto", 1.0),
    ("futex", 2.0),
    ("clock_gettime", 1.0),
    ("fsync", 0.01),   # journal group commit
)

#: In-enclave service cost per operation under SCONE, ns (≈ 40 K op/s).
OP_COST_NS = 25_000.0

JOURNAL_INODE = 7_777_777


@dataclass
class DocStats:
    """Operation counters."""

    inserts: int = 0
    finds: int = 0
    updates: int = 0
    deletes: int = 0


class Collection:
    """One named collection."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: Dict[int, Dict[str, Any]] = {}
        self._ids = itertools.count(start=1)

    def insert(self, document: Dict[str, Any]) -> int:
        """Insert a document; returns its _id."""
        doc_id = next(self._ids)
        stored = dict(document)
        stored["_id"] = doc_id
        self._docs[doc_id] = stored
        return doc_id

    def find(self, filter_: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """Equality-filter query (empty filter returns everything)."""
        if not filter_:
            return [dict(d) for d in self._docs.values()]
        return [
            dict(d) for d in self._docs.values()
            if all(d.get(k) == v for k, v in filter_.items())
        ]

    def update(self, filter_: Dict[str, Any], changes: Dict[str, Any]) -> int:
        """Apply ``changes`` to matching documents; returns count."""
        if "_id" in changes:
            raise ReproError("_id is immutable")
        matched = 0
        for doc in self._docs.values():
            if all(doc.get(k) == v for k, v in filter_.items()):
                doc.update(changes)
                matched += 1
        return matched

    def delete(self, filter_: Dict[str, Any]) -> int:
        """Delete matching documents; returns count."""
        victims = [
            doc_id for doc_id, doc in self._docs.items()
            if all(doc.get(k) == v for k, v in filter_.items())
        ]
        for doc_id in victims:
            del self._docs[doc_id]
        return len(victims)

    def __len__(self) -> int:
        return len(self._docs)


class MongoLikeServer:
    """Document store with journal-flush page-cache behaviour."""

    def __init__(self, name: str = "mongod") -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self.stats = DocStats()
        self._journal_page = 0

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def insert(self, collection: str, document: Dict[str, Any]) -> int:
        """Insert into a collection."""
        self.stats.inserts += 1
        return self.collection(collection).insert(document)

    def find(self, collection: str, filter_: Optional[Dict[str, Any]] = None):
        """Query a collection."""
        self.stats.finds += 1
        return self.collection(collection).find(filter_)

    def journal_flush(self, runtime: SgxFramework, dirty_pages: int = 8) -> None:
        """Group-commit the journal: dirty pages + fsync."""
        kernel = runtime._require_setup()  # noqa: SLF001 - harness-level access
        pid = runtime.process.pid
        for _ in range(dirty_pages):
            kernel.page_cache.write(JOURNAL_INODE, self._journal_page, pid=pid)
            self._journal_page += 1
        kernel.syscalls.dispatch("fsync", pid)

    # ------------------------------------------------------------------
    # Aggregate load (Figure 5 overhead experiment)
    # ------------------------------------------------------------------
    @staticmethod
    def events_per_op() -> float:
        """Instrumented syscall events per operation."""
        return sum(rate for _, rate in SYSCALLS_PER_OP)

    def run_load_slice(
        self, runtime: SgxFramework, operations: int, duration_ns: int
    ) -> None:
        """Replay ``operations`` worth of traffic in aggregate."""
        if operations <= 0:
            return
        kernel = runtime._require_setup()  # noqa: SLF001
        pid = runtime.process.pid
        for name, per_op in SYSCALLS_PER_OP:
            count = int(per_op * operations)
            if count > 0:
                runtime._dispatch_syscalls(name, count)  # noqa: SLF001
        kernel.page_cache.account_activity(
            pid, writes=max(1, operations // 100), hit_ratio=0.95
        )
        self.stats.finds += operations

    def achievable_rate(
        self,
        runtime: SgxFramework,
        ebpf_active: bool = False,
        full_monitoring: bool = False,
    ) -> float:
        """Operations/s under the runtime and monitoring configuration."""
        from repro.apps.webserver import _monitoring_factor

        factor = _monitoring_factor(
            self.events_per_op(), OP_COST_NS, ebpf_active, full_monitoring
        )
        return (1e9 / OP_COST_NS) * factor
