"""Load generators: memtier_benchmark and redis-benchmark models.

:class:`MemtierBenchmark` reproduces the paper's §6.5 configuration — 8
client threads, 8 connections each per indicated connection count, a
pipeline of 8 requests, GETs over the pre-populated keyspace, the two
hosts joined by a 1 GbE link.  It runs in virtual-time slices: each slice
asks the runtime for its achievable rate, replays that many requests'
worth of kernel events through the runtime, and advances the clock —
which also fires any scheduled scrapes and analyses, so TEEMon genuinely
monitors the benchmark as it runs.

:class:`RedisBenchmark` is the §6.4 single-host variant (no network cap)
used in the code-evolution experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.kvstore import RedisLikeServer, db_bytes_for
from repro.errors import ReproError
from repro.frameworks.base import SgxFramework, WorkloadSlice
from repro.net.network import Link
from repro.simkernel.clock import NANOS_PER_SEC, seconds


import math

#: z-scores for the percentiles memtier reports.
_Z_SCORES = {0.50: 0.0, 0.95: 1.6449, 0.99: 2.3263, 0.999: 3.0902}


@dataclass
class SlicePoint:
    """Per-slice measurement."""

    time_s: float
    throughput_rps: float
    latency_ms: float
    #: Link utilisation during the slice (drives the latency tail).
    utilisation: float = 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Analytic per-request latency percentile within this slice.

        Per-request latency is modelled log-normally around the slice
        mean; the dispersion grows with link utilisation (queueing near
        saturation fattens the tail, which is what memtier's p99 shows).
        """
        if quantile not in _Z_SCORES:
            raise ReproError(
                f"supported percentiles: {sorted(_Z_SCORES)}, got {quantile}"
            )
        sigma = 0.20 + 0.45 * min(1.0, max(0.0, self.utilisation))
        median = self.latency_ms / math.exp(sigma * sigma / 2.0)
        return median * math.exp(sigma * _Z_SCORES[quantile])


@dataclass
class BenchmarkResult:
    """Aggregate outcome of one benchmark run."""

    framework: str
    connections: int
    pipeline: int
    db_bytes: int
    value_size: int
    duration_s: float
    requests_total: int
    throughput_rps: float
    latency_ms: float
    slices: List[SlicePoint] = field(default_factory=list)
    emissions: List[WorkloadSlice] = field(default_factory=list)

    def latency_percentile_ms(self, quantile: float) -> float:
        """Run-level latency percentile (request-weighted over slices)."""
        if not self.slices:
            return float("inf")
        total_weight = sum(p.throughput_rps for p in self.slices)
        if total_weight <= 0:
            return float("inf")
        return sum(
            p.latency_percentile(quantile) * p.throughput_rps
            for p in self.slices
        ) / total_weight

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.framework:>12}  conns={self.connections:<4} "
            f"db={self.db_bytes // (1024 * 1024)}MB  "
            f"tput={self.throughput_rps / 1000:.1f} KIOP/s  "
            f"lat={self.latency_ms:.2f} ms"
        )


#: Base network round-trip of the switched 1 GbE testbed, milliseconds.
BASE_RTT_MS = 0.25


class MemtierBenchmark:
    """The §6.5 load generator."""

    def __init__(
        self,
        threads: int = 8,
        connections: int = 64,
        pipeline: int = 8,
        link: Optional[Link] = None,
    ) -> None:
        if threads <= 0 or connections <= 0 or pipeline <= 0:
            raise ReproError("benchmark parameters must be positive")
        if connections % threads:
            raise ReproError(
                f"connections ({connections}) must be a multiple of the "
                f"client threads ({threads}), as in the paper"
            )
        self.threads = threads
        self.connections = connections
        self.pipeline = pipeline
        self.link = link if link is not None else Link()

    # ------------------------------------------------------------------
    def prepopulate(
        self, runtime: SgxFramework, server: RedisLikeServer,
        keys: int = 720_000, value_size: int = 32,
    ) -> int:
        """SET phase: populate the keyspace; returns the database size."""
        server.populate_synthetic(keys, value_size)
        runtime.load_working_set(server.db_bytes)
        return server.db_bytes

    def network_cap_rps(self, server: RedisLikeServer) -> float:
        """Requests/s the link can carry for this value size."""
        response_bytes = max(1, server.get_response_bytes())
        return self.link.payload_bytes_per_s / response_bytes

    def run(
        self,
        runtime: SgxFramework,
        server: RedisLikeServer,
        duration_s: float = 30.0,
        slice_s: float = 1.0,
        ebpf_active: bool = False,
        full_monitoring: bool = False,
    ) -> BenchmarkResult:
        """Issue GETs for ``duration_s`` of virtual time."""
        if duration_s <= 0 or slice_s <= 0 or slice_s > duration_s:
            raise ReproError("bad benchmark duration/slice")
        kernel = runtime._require_setup()  # noqa: SLF001 - harness-level access
        db_bytes = server.db_bytes
        network_cap = self.network_cap_rps(server)
        slices: List[SlicePoint] = []
        emissions: List[WorkloadSlice] = []
        requests_total = 0
        elapsed = 0.0
        while elapsed < duration_s - 1e-9:
            step = min(slice_s, duration_s - elapsed)
            rate = runtime.achievable_rate(
                connections=self.connections,
                pipeline=self.pipeline,
                db_bytes=db_bytes,
                network_cap_rps=network_cap,
                ebpf_active=ebpf_active,
                full_monitoring=full_monitoring,
            )
            requests = int(rate * step)
            emission = runtime.emit_slice(
                requests=requests,
                connections=self.connections,
                db_bytes=db_bytes,
                duration_ns=int(step * NANOS_PER_SEC),
            )
            emissions.append(emission)
            requests_total += requests
            latency_ms = self._latency_ms(rate, network_cap)
            slices.append(
                SlicePoint(
                    time_s=kernel.clock.now_seconds,
                    throughput_rps=rate,
                    latency_ms=latency_ms,
                    utilisation=rate / max(network_cap, 1e-9),
                )
            )
            kernel.clock.advance(seconds(step))
            elapsed += step
        mean_tput = (
            sum(p.throughput_rps for p in slices) / len(slices) if slices else 0.0
        )
        mean_lat = sum(p.latency_ms for p in slices) / len(slices) if slices else 0.0
        return BenchmarkResult(
            framework=runtime.name,
            connections=self.connections,
            pipeline=self.pipeline,
            db_bytes=db_bytes,
            value_size=server.value_size,
            duration_s=duration_s,
            requests_total=requests_total,
            throughput_rps=mean_tput,
            latency_ms=mean_lat,
            slices=slices,
            emissions=emissions,
        )

    def _latency_ms(self, rate_rps: float, network_cap_rps: float) -> float:
        """Little's-law latency plus network base RTT and queueing."""
        if rate_rps <= 0:
            return float("inf")
        inflight = self.connections * self.pipeline
        service_ms = inflight / rate_rps * 1000.0
        # Offered load on the link in bytes/s: utilisation times capacity.
        utilisation = rate_rps / max(network_cap_rps, 1e-9)
        queueing_ms = self.link.queueing_delay_s(
            utilisation * self.link.payload_bytes_per_s
        ) * 1000.0
        return BASE_RTT_MS + service_ms + queueing_ms


class RedisBenchmark:
    """The §6.4 single-host load generator (no network cap)."""

    def __init__(self, connections: int = 50, pipeline: int = 1) -> None:
        if connections <= 0 or pipeline <= 0:
            raise ReproError("benchmark parameters must be positive")
        self.connections = connections
        self.pipeline = pipeline

    def run(
        self,
        runtime: SgxFramework,
        server: RedisLikeServer,
        duration_s: float = 30.0,
        slice_s: float = 1.0,
        ebpf_active: bool = False,
        full_monitoring: bool = False,
    ) -> BenchmarkResult:
        """Single-host run: loopback transport, no bandwidth cap."""
        memtier = MemtierBenchmark(
            threads=1, connections=self.connections, pipeline=self.pipeline,
            link=Link(bandwidth_bits_per_s=40e9, base_latency_s=0.000_02),
        )
        # redis-benchmark populates a small keyspace itself.
        if server.key_count == 0:
            server.populate_synthetic(100_000, 64)
            runtime.load_working_set(server.db_bytes)
        return memtier.run(
            runtime, server, duration_s=duration_s, slice_s=slice_s,
            ebpf_active=ebpf_active, full_monitoring=full_monitoring,
        )
