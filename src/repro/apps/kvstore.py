"""A Redis-like in-memory key-value store.

Two layers:

* a **real data structure** — commands ``SET``/``GET``/``DEL``/``EXISTS``/
  ``INCR``/``FLUSHALL`` over a dict, with RESP-style wire-size accounting,
  used directly by tests and examples;
* a **synthetic population** layer — the paper pre-populates 720 000 keys,
  which would be wasteful to materialise for every benchmark
  configuration, so :meth:`RedisLikeServer.populate_synthetic` records the
  key count and value size and the store answers size queries from that
  metadata.  Real keys written with :meth:`set` overlay the synthetic
  space.

The paper's database sizes (§6.5: values of 32/64/96 bytes giving 78, 105
and 127 MB) are reproduced by :func:`db_bytes_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError

MIB = 1024 * 1024

#: The paper's exact (value size -> database size) mapping for 720 000 keys.
PAPER_DB_SIZES = {32: 78 * MIB, 64: 105 * MIB, 96: 127 * MIB}

#: Per-key overhead (key string, dict entry, robj header) when the paper
#: mapping does not apply.
PER_KEY_OVERHEAD_BYTES = 81

#: RESP framing overhead per GET response, amortised over a pipeline.
RESP_OVERHEAD_BYTES = 12


def db_bytes_for(keys: int, value_size: int) -> int:
    """Database size for a population (paper mapping when it applies)."""
    if keys == 720_000 and value_size in PAPER_DB_SIZES:
        return PAPER_DB_SIZES[value_size]
    return keys * (value_size + PER_KEY_OVERHEAD_BYTES)


class WrongTypeError(ReproError):
    """INCR on a non-integer value (Redis WRONGTYPE)."""


@dataclass
class KvStats:
    """Command counters."""

    gets: int = 0
    sets: int = 0
    hits: int = 0
    misses: int = 0


class RedisLikeServer:
    """The store itself (no networking; the benchmark models transport)."""

    def __init__(self, name: str = "redis-server") -> None:
        self.name = name
        self._data: Dict[str, bytes] = {}
        self._synthetic_keys = 0
        self._synthetic_value_size = 0
        self.stats = KvStats()

    # ------------------------------------------------------------------
    # Real commands
    # ------------------------------------------------------------------
    def set(self, key: str, value: bytes) -> None:
        """SET key value."""
        if not isinstance(value, bytes):
            raise ReproError(f"values are bytes, got {type(value).__name__}")
        self._data[key] = value
        self.stats.sets += 1

    def get(self, key: str) -> Optional[bytes]:
        """GET key (None when missing)."""
        self.stats.gets += 1
        value = self._data.get(key)
        if value is None and not self._covered_by_synthetic(key):
            self.stats.misses += 1
            return None
        if value is None:
            # Synthetic key: deterministic content derived from the key.
            self.stats.hits += 1
            return self._synthetic_value(key)
        self.stats.hits += 1
        return value

    def delete(self, key: str) -> bool:
        """DEL key; True when it existed (real keys only)."""
        return self._data.pop(key, None) is not None

    def exists(self, key: str) -> bool:
        """EXISTS key."""
        return key in self._data or self._covered_by_synthetic(key)

    def incr(self, key: str) -> int:
        """INCR key (missing keys start at 0)."""
        raw = self._data.get(key, b"0")
        try:
            value = int(raw)
        except ValueError:
            raise WrongTypeError(f"value at {key!r} is not an integer") from None
        value += 1
        self._data[key] = str(value).encode("ascii")
        return value

    def flushall(self) -> None:
        """Drop everything, synthetic population included."""
        self._data.clear()
        self._synthetic_keys = 0
        self._synthetic_value_size = 0

    # ------------------------------------------------------------------
    # Synthetic population
    # ------------------------------------------------------------------
    def populate_synthetic(self, keys: int, value_size: int) -> None:
        """Pre-populate ``keys`` synthetic keys of ``value_size`` bytes."""
        if keys < 0 or value_size <= 0:
            raise ReproError(
                f"bad population: keys={keys}, value_size={value_size}"
            )
        self._synthetic_keys = keys
        self._synthetic_value_size = value_size

    def _covered_by_synthetic(self, key: str) -> bool:
        if self._synthetic_keys == 0 or not key.startswith("memtier-"):
            return False
        try:
            index = int(key[len("memtier-"):])
        except ValueError:
            return False
        return 0 <= index < self._synthetic_keys

    def _synthetic_value(self, key: str) -> bytes:
        pattern = (key * (self._synthetic_value_size // max(1, len(key)) + 1))
        return pattern.encode("utf-8")[: self._synthetic_value_size]

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Total keys, synthetic + real."""
        return self._synthetic_keys + len(self._data)

    @property
    def db_bytes(self) -> int:
        """Approximate memory footprint of the dataset."""
        synthetic = (
            db_bytes_for(self._synthetic_keys, self._synthetic_value_size)
            if self._synthetic_keys
            else 0
        )
        real = sum(
            len(k) + len(v) + PER_KEY_OVERHEAD_BYTES for k, v in self._data.items()
        )
        return synthetic + real

    @property
    def value_size(self) -> int:
        """Synthetic value size (0 when not populated)."""
        return self._synthetic_value_size

    def get_response_bytes(self) -> int:
        """Wire bytes of one GET response (RESP framing included)."""
        return self._synthetic_value_size + RESP_OVERHEAD_BYTES
