"""Workload applications and load generators.

The paper evaluates TEEMon with three real applications — Redis, NGINX and
MongoDB (§6.3) — driven by memtier_benchmark / redis-benchmark (§6.4-6.5).
This package provides executable models of all of them:

* :class:`~repro.apps.kvstore.RedisLikeServer` — an in-memory key-value
  store with a real command set and RESP-style byte accounting;
* :class:`~repro.apps.webserver.NginxLikeServer` — a static web server
  with a page-cache-backed document root;
* :class:`~repro.apps.docstore.MongoLikeServer` — a document store with
  collections, filter queries and disk-flush behaviour;
* :class:`~repro.apps.clients.MemtierBenchmark` and
  :class:`~repro.apps.clients.RedisBenchmark` — load generators matching
  the paper's configurations (8 client threads, a pipeline of 8, GET
  workloads over 720 000 pre-populated keys).
"""

from repro.apps.clients import BenchmarkResult, MemtierBenchmark, RedisBenchmark
from repro.apps.docstore import MongoLikeServer
from repro.apps.kvstore import RedisLikeServer, db_bytes_for
from repro.apps.webserver import NginxLikeServer

__all__ = [
    "RedisLikeServer",
    "NginxLikeServer",
    "MongoLikeServer",
    "MemtierBenchmark",
    "RedisBenchmark",
    "BenchmarkResult",
    "db_bytes_for",
]
