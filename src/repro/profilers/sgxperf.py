"""An sgx-perf model: two-phase record/report of transitions and paging.

sgx-perf (Weichbrodt et al., Middleware '18) records enclave entries/exits
by interposing on the Intel SDK's ECALL/OCALL bridges and EPC paging via
kprobes, then produces an offline report.  Two properties matter for the
paper's comparison and are reproduced here:

* **SDK-only**: it sees transitions through the SDK bridge symbols.  The
  model checks how the monitored runtime issues syscalls — Graphene's
  per-syscall OCALLs are visible, SCONE's shared-memory queue is not —
  and reports accordingly (zero events for SCONE, as in reality);
* **no runtime reporting**: data is only available after
  :meth:`SgxPerf.stop` produces the report; querying mid-run raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.frameworks.base import SgxFramework
from repro.frameworks.graphene import GrapheneRuntime
from repro.frameworks.sgxlkl import SgxLklRuntime
from repro.simkernel.kernel import Kernel

#: Recording overhead per observed transition (shim + buffer write), ns.
RECORD_COST_NS = 350


class ProfilerStateError(ReproError):
    """Operation not valid in the profiler's current phase."""


@dataclass
class SgxPerfReport:
    """The offline report produced after the run."""

    duration_ns: int
    ecalls: int
    ocalls: int
    aexs: int
    pages_evicted: int
    pages_reclaimed: int
    sdk_compatible: bool

    def transitions_per_second(self) -> float:
        """Enclave boundary crossings per second."""
        if self.duration_ns <= 0:
            return 0.0
        total = self.ecalls + self.ocalls + self.aexs
        return total * 1e9 / self.duration_ns

    def render(self) -> str:
        """Human-readable report text."""
        if not self.sdk_compatible:
            return (
                "sgx-perf report: no events recorded — the application does "
                "not use SDK-style ECALL/OCALL bridges (e.g. SCONE's "
                "asynchronous syscalls are invisible to sgx-perf)."
            )
        return (
            "sgx-perf report\n"
            f"  duration        : {self.duration_ns / 1e9:.1f} s\n"
            f"  ecalls          : {self.ecalls}\n"
            f"  ocalls          : {self.ocalls}\n"
            f"  async exits     : {self.aexs}\n"
            f"  EPC evicted     : {self.pages_evicted}\n"
            f"  EPC reclaimed   : {self.pages_reclaimed}\n"
            f"  transitions/s   : {self.transitions_per_second():,.0f}"
        )


class SgxPerf:
    """Two-phase profiler: record() ... stop() -> report."""

    def __init__(self, kernel: Kernel, runtime: SgxFramework) -> None:
        self._kernel = kernel
        self._runtime = runtime
        self._recording = False
        self._start_ns = 0
        self._baseline: Dict[str, int] = {}
        self._report: Optional[SgxPerfReport] = None
        #: Recording overhead accumulated (charged to the app's runtime).
        self.overhead_ns = 0
        self._handles = []

    @property
    def sdk_compatible(self) -> bool:
        """Whether the runtime's transitions go through SDK-style bridges."""
        return isinstance(self._runtime, (GrapheneRuntime, SgxLklRuntime))

    def record(self) -> None:
        """Phase 1: start recording."""
        if self._recording:
            raise ProfilerStateError("sgx-perf is already recording")
        enclave = self._runtime.enclave
        if enclave is None:
            raise ProfilerStateError(
                "sgx-perf profiles enclave applications; none is set up"
            )
        self._recording = True
        self._report = None
        self._start_ns = self._kernel.clock.now_ns
        epc = self._kernel.module("isgx").epc
        self._baseline = {
            "ecalls": enclave.stats.ecalls,
            "ocalls": enclave.stats.ocalls,
            "aexs": enclave.stats.aexs,
            "evicted": epc.counters.pages_evicted,
            "reclaimed": epc.counters.pages_reclaimed,
        }
        # Paging kprobes: charge the recording shim per event.
        for hook in ("isgx:sgx_ewb", "isgx:sgx_eldu"):
            self._handles.append(
                self._kernel.hooks.attach(
                    hook, lambda ctx: self._charge(ctx.count)
                )
            )

    def _charge(self, count: int) -> None:
        self.overhead_ns += RECORD_COST_NS * count

    def stop(self) -> SgxPerfReport:
        """Phase 2: stop recording and produce the report."""
        if not self._recording:
            raise ProfilerStateError("sgx-perf is not recording")
        self._recording = False
        for handle in self._handles:
            handle.detach()
        self._handles.clear()
        enclave = self._runtime.enclave
        epc = self._kernel.module("isgx").epc
        compatible = self.sdk_compatible
        report = SgxPerfReport(
            duration_ns=self._kernel.clock.now_ns - self._start_ns,
            ecalls=(enclave.stats.ecalls - self._baseline["ecalls"]) if compatible else 0,
            ocalls=(enclave.stats.ocalls - self._baseline["ocalls"]) if compatible else 0,
            aexs=(enclave.stats.aexs - self._baseline["aexs"]) if compatible else 0,
            pages_evicted=epc.counters.pages_evicted - self._baseline["evicted"],
            pages_reclaimed=epc.counters.pages_reclaimed - self._baseline["reclaimed"],
            sdk_compatible=compatible,
        )
        self._report = report
        return report

    def report(self) -> SgxPerfReport:
        """The offline report; unavailable while recording (by design)."""
        if self._recording:
            raise ProfilerStateError(
                "sgx-perf cannot report during the run: it is a two-phased "
                "record-and-report tool (the limitation TEEMon removes)"
            )
        if self._report is None:
            raise ProfilerStateError("no recording has completed yet")
        return self._report
