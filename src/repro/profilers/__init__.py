"""Baseline profilers from the paper's Table 1 survey.

The paper positions TEEMon against existing SGX tooling.  Two of those
baselines are implemented here, on the same substrate, so the comparison
is executable rather than asserted:

* :mod:`repro.profilers.sgxperf` — sgx-perf [73]: a two-phase
  **record-then-report** profiler for SGX enclave transitions and paging.
  Faithful to its key limitations: it only works with Intel-SDK-style
  applications (it hooks ECALL/OCALL symbols, so SCONE's async-queue apps
  are invisible to it), and it cannot report during the run;
* :mod:`repro.profilers.teeperf` — TEE-Perf [26]: a platform-independent
  **method-level software-counter** profiler.  Faithful to its cost: the
  injected code runs on every function call, slowing the application ~1.9x
  on average (up to 5.7x vs perf), which is why the paper rules it out for
  production monitoring.

The ``benchmarks/test_baseline_profilers.py`` bench runs all three tools
over the same workload and reproduces the paper's positioning: TEEMon is
the only one that is simultaneously low-overhead, runtime-reporting and
framework-agnostic.
"""

from repro.profilers.sgxperf import SgxPerf, SgxPerfReport
from repro.profilers.teeperf import TeePerf, TeePerfReport

__all__ = ["SgxPerf", "SgxPerfReport", "TeePerf", "TeePerfReport"]
