"""A TEE-Perf model: method-level software counters.

TEE-Perf (Bailleu et al., DSN '19) instruments *every function call* with
software-counter reads, which makes it platform-independent (no PMU, no
kernel support) and expensive: the paper cites an average slowdown of
1.9x over native SGX execution and up to 5.7x versus Linux perf — the
reason it suits development, not production.

The model instruments the workload at method granularity (the paper's
Table 1 lists TEE-Perf's granularity as "function"): callers wrap their
request processing in :meth:`TeePerf.profile_calls`, which accounts the
per-call counter cost and maintains a call-count table from which the
flame-graph-style report is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Cost of the injected counter code per function call, ns (the software
#: counter read and store run *inside* the enclave).  Chosen so the Redis
#: call profile (~9 instrumented calls per request) over SCONE's ~3 us
#: request lands at the paper's ~1.9x average slowdown.
PER_CALL_COST_NS = 300

#: The method call tree of one Redis GET (depth-first, calls per request).
REDIS_GET_CALL_PROFILE: Tuple[Tuple[str, float], ...] = (
    ("main;aeProcessEvents", 0.125),
    ("main;aeProcessEvents;readQueryFromClient", 1.0),
    ("main;aeProcessEvents;readQueryFromClient;processInputBuffer", 1.0),
    ("main;aeProcessEvents;readQueryFromClient;processCommand", 1.0),
    ("main;aeProcessEvents;readQueryFromClient;processCommand;getCommand", 1.0),
    ("main;aeProcessEvents;readQueryFromClient;processCommand;getCommand;lookupKeyRead", 1.0),
    ("main;aeProcessEvents;readQueryFromClient;processCommand;getCommand;lookupKeyRead;dictFind", 1.2),
    ("main;aeProcessEvents;readQueryFromClient;processCommand;getCommand;addReplyBulk", 1.0),
    ("main;aeProcessEvents;writeToClient", 1.0),
    ("main;aeProcessEvents;writeToClient;sdsfree", 0.8),
)


@dataclass
class TeePerfReport:
    """Method-level profile with flame-graph text output."""

    duration_ns: int
    call_counts: Dict[str, int]
    instrumented_calls: int
    overhead_ns: int

    def hottest(self, limit: int = 5) -> List[Tuple[str, int]]:
        """Most-called methods."""
        ordered = sorted(self.call_counts.items(), key=lambda kv: -kv[1])
        return ordered[:limit]

    def folded_stacks(self) -> str:
        """Brendan-Gregg folded-stack format (flamegraph.pl input)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(self.call_counts.items())
        ]
        return "\n".join(lines)

    def slowdown_factor(self, useful_ns: int) -> float:
        """Run-time inflation from the injected counters."""
        if useful_ns <= 0:
            return 1.0
        return (useful_ns + self.overhead_ns) / useful_ns


class TeePerf:
    """Method-level profiler accumulating call counts."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._calls = 0
        self._overhead_ns = 0
        self._running = False
        self._start_ns = 0

    @property
    def running(self) -> bool:
        """Whether a profile is in progress."""
        return self._running

    def start(self, now_ns: int) -> None:
        """Begin a profile."""
        if self._running:
            raise ReproError("TEE-Perf already profiling")
        self._running = True
        self._start_ns = now_ns
        self._counts.clear()
        self._calls = 0
        self._overhead_ns = 0

    def profile_calls(
        self,
        requests: int,
        call_profile: Sequence[Tuple[str, float]] = REDIS_GET_CALL_PROFILE,
    ) -> int:
        """Record ``requests`` worth of method calls; returns overhead ns.

        The returned overhead is the injected-counter cost the application
        pays — the caller charges it to the workload, which is how the
        ~1.9x slowdown arises.
        """
        if not self._running:
            raise ReproError("TEE-Perf is not profiling")
        if requests <= 0:
            return 0
        overhead = 0
        for stack, per_request in call_profile:
            calls = int(per_request * requests)
            if calls <= 0:
                continue
            self._counts[stack] = self._counts.get(stack, 0) + calls
            self._calls += calls
            overhead += calls * PER_CALL_COST_NS
        self._overhead_ns += overhead
        return overhead

    def stop(self, now_ns: int) -> TeePerfReport:
        """Finish and produce the report."""
        if not self._running:
            raise ReproError("TEE-Perf is not profiling")
        self._running = False
        return TeePerfReport(
            duration_ns=now_ns - self._start_ns,
            call_counts=dict(self._counts),
            instrumented_calls=self._calls,
            overhead_ns=self._overhead_ns,
        )
