"""Bounded in-memory trace storage with per-trace lookup.

Finished spans are appended in end order, grouped by trace id.  The store
is bounded by *trace count* — a long-lived deployment tracing every scrape
cycle evicts whole old traces FIFO rather than truncating recent ones —
and exposes a canonical text journal, the determinism witness: two
same-seed runs of the same workload must produce byte-identical journals
(asserted by the chaos suite, like fault journals).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import Span

#: Default trace capacity: generous for demos, bounded for soak runs.
DEFAULT_MAX_TRACES = 256


class TraceStore:
    """Holds finished spans, grouped and evictable by trace."""

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        if max_traces < 1:
            raise ValueError(f"trace capacity must be >= 1, got {max_traces}")
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self.spans_stored = 0
        self.traces_evicted = 0

    # ------------------------------------------------------------------
    def add(self, span: "Span") -> None:
        """Store one finished span, evicting the oldest trace past capacity."""
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = self._traces[span.trace_id] = []
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.traces_evicted += 1
        spans.append(span)
        self.spans_stored += 1

    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> List["Span"]:
        """All spans of one trace, in start order (empty if unknown)."""
        spans = self._traces.get(trace_id, [])
        return sorted(spans, key=lambda s: (s.start_ns, s.seq))

    def trace_ids(self) -> List[str]:
        """Stored trace ids, oldest first."""
        return list(self._traces)

    def latest(self, name: Optional[str] = None) -> Optional[str]:
        """The newest trace id — optionally the newest whose *root* span
        (no parent) is named ``name``."""
        for trace_id in reversed(self._traces):
            if name is None:
                return trace_id
            if any(s.parent_id is None and s.name == name
                   for s in self._traces[trace_id]):
                return trace_id
        return None

    def __len__(self) -> int:
        return len(self._traces)

    def span_count(self) -> int:
        """Spans currently held (evicted traces excluded)."""
        return sum(len(spans) for spans in self._traces.values())

    def clear(self) -> None:
        """Drop everything (statistics are kept)."""
        self._traces.clear()

    # ------------------------------------------------------------------
    # Determinism witness
    # ------------------------------------------------------------------
    def journal_text(self) -> str:
        """Every stored span as canonical text (byte-comparable).

        Traces appear in insertion order; spans within a trace in end
        order, which is deterministic because the simulation is.
        """
        lines: List[str] = []
        for spans in self._traces.values():
            lines.extend(span.line() for span in spans)
        return "\n".join(lines)
