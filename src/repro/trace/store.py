"""Bounded in-memory trace storage with per-trace lookup.

Finished spans are appended in end order, grouped by trace id.  The store
is bounded by *trace count* — a long-lived deployment tracing every scrape
cycle evicts whole old traces FIFO rather than truncating recent ones —
and exposes a canonical text journal, the determinism witness: two
same-seed runs of the same workload must produce byte-identical journals
(asserted by the chaos suite, like fault journals).

With :class:`~repro.trace.sampling.TailRules` attached, the store runs in
*tail-sampling* mode: finished spans accumulate in a bounded pending
buffer, and a trace is only promoted to the store once complete (its root
span ended, plus a small lag window so late spans — retries continuing
the cycle's trace — can still join) *and* the keep rules match.  Dropped
trace ids are remembered so a late-arriving interesting span (an error, a
retry) can resurrect its trace rather than vanish: fault-bearing traces
are never lost to tail sampling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.sampling import TailRules
    from repro.trace.tracer import Span

#: Default trace capacity: generous for demos, bounded for soak runs.
DEFAULT_MAX_TRACES = 256

#: Default bound of the tail-sampling pending buffer (whole traces).
DEFAULT_PENDING_MAX_TRACES = 64

#: Completed pending traces are held back this many completions before
#: the keep/drop verdict, so late spans (retries fire on a backoff timer
#: well inside the next scrape interval) still join their trace.
PENDING_LAG = 2

#: How many dropped trace ids to remember for the resurrection path.
DROPPED_MEMORY = 1024


class TraceStore:
    """Holds finished spans, grouped and evictable by trace."""

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        tail_rules: Optional["TailRules"] = None,
        pending_max_traces: int = DEFAULT_PENDING_MAX_TRACES,
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"trace capacity must be >= 1, got {max_traces}")
        if pending_max_traces < 1:
            raise ValueError(
                f"pending capacity must be >= 1, got {pending_max_traces}"
            )
        self.max_traces = max_traces
        self.tail_rules = tail_rules
        self.pending_max_traces = pending_max_traces
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        #: Lazily built start-order views, invalidated on append.
        self._sorted_views: Dict[str, List["Span"]] = {}
        #: Tail mode: completed-but-not-yet-judged traces, insertion order.
        self._pending: "OrderedDict[str, List[Span]]" = OrderedDict()
        #: Tail mode: pending trace ids whose root span has ended, in
        #: completion order (the finalization queue).
        self._complete: List[str] = []
        #: Tail mode: recently dropped trace ids -> drop reason.
        self._dropped: "OrderedDict[str, str]" = OrderedDict()
        self.spans_stored = 0
        self.traces_evicted = 0
        self.traces_kept = 0
        self.traces_dropped = 0
        self.spans_dropped = 0
        self.traces_resurrected = 0
        #: Tail keep verdicts by reason (``error`` / ``fault-event`` /
        #: ``retry`` / ``slow-span``).
        self.keep_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, span: "Span") -> None:
        """Store one finished span, evicting the oldest trace past capacity.

        In tail-sampling mode the span lands in the pending buffer first;
        the whole trace is judged against the keep rules once complete.
        """
        if self.tail_rules is None:
            self._insert(span)
            return
        trace_id = span.trace_id
        if trace_id in self._traces:
            # Late span joining an already-kept trace.
            self._insert(span)
            return
        if trace_id in self._dropped:
            # Late span to a dropped trace: interesting spans resurrect
            # their trace (partially), boring ones are dropped too.
            keep, reason = self.tail_rules.matches_span(span)
            if keep:
                del self._dropped[trace_id]
                self.traces_resurrected += 1
                self.traces_kept += 1
                self.keep_reasons[reason] = (
                    self.keep_reasons.get(reason, 0) + 1
                )
                self._insert(span)
            else:
                self.spans_dropped += 1
            return
        spans = self._pending.get(trace_id)
        if spans is None:
            spans = self._pending[trace_id] = []
        spans.append(span)
        if span.parent_id is None:
            # The root ended: the trace is complete, queue the verdict.
            self._complete.append(trace_id)
        while len(self._complete) > PENDING_LAG:
            self._finalize(self._complete.pop(0))
        while len(self._pending) > self.pending_max_traces:
            oldest = next(iter(self._pending))
            if oldest in self._complete:
                self._complete.remove(oldest)
            self._finalize(oldest)

    def _insert(self, span: "Span") -> None:
        """Append one span to the kept store (the pre-tail behaviour)."""
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = self._traces[span.trace_id] = []
            while len(self._traces) > self.max_traces:
                evicted, _ = self._traces.popitem(last=False)
                self._sorted_views.pop(evicted, None)
                self.traces_evicted += 1
        spans.append(span)
        self._sorted_views.pop(span.trace_id, None)
        self.spans_stored += 1

    def _finalize(self, trace_id: str) -> None:
        """Judge one pending trace against the keep rules."""
        spans = self._pending.pop(trace_id, None)
        if not spans:
            return
        keep, reason = self.tail_rules.evaluate(spans)
        if keep:
            self.traces_kept += 1
            self.keep_reasons[reason] = self.keep_reasons.get(reason, 0) + 1
            for span in spans:
                self._insert(span)
        else:
            self.traces_dropped += 1
            self.spans_dropped += len(spans)
            self._dropped[trace_id] = reason
            while len(self._dropped) > DROPPED_MEMORY:
                self._dropped.popitem(last=False)

    def flush_pending(self) -> None:
        """Judge every pending trace now (end-of-run / test hook)."""
        self._complete.clear()
        while self._pending:
            self._finalize(next(iter(self._pending)))

    def pending_count(self) -> int:
        """Traces awaiting a tail verdict."""
        return len(self._pending)

    def dropped_reason(self, trace_id: str) -> Optional[str]:
        """Why a trace was tail-dropped (None if unknown/kept)."""
        return self._dropped.get(trace_id)

    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> List["Span"]:
        """All spans of one trace, in start order (empty if unknown).

        The start-order view is cached per trace and invalidated on
        append, so repeated renders of the same trace (waterfall +
        flamegraph on one dashboard) sort once, not per call.
        """
        view = self._sorted_views.get(trace_id)
        if view is None:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._pending.get(trace_id)
                if spans is None:
                    return []
                # Pending traces are transient: sort, don't cache.
                return sorted(spans, key=lambda s: (s.start_ns, s.seq))
            view = sorted(spans, key=lambda s: (s.start_ns, s.seq))
            self._sorted_views[trace_id] = view
        return list(view)

    def trace_ids(self) -> List[str]:
        """Stored (kept) trace ids, oldest first."""
        return list(self._traces)

    def latest(self, name: Optional[str] = None) -> Optional[str]:
        """The newest trace id — optionally the newest whose *root* span
        (no parent) is named ``name``."""
        for trace_id in reversed(self._traces):
            if name is None:
                return trace_id
            if any(s.parent_id is None and s.name == name
                   for s in self._traces[trace_id]):
                return trace_id
        return None

    def __len__(self) -> int:
        return len(self._traces)

    def span_count(self) -> int:
        """Spans currently held (evicted traces excluded)."""
        return sum(len(spans) for spans in self._traces.values())

    def clear(self) -> None:
        """Drop everything (statistics are kept)."""
        self._traces.clear()
        self._sorted_views.clear()
        self._pending.clear()
        self._complete.clear()
        self._dropped.clear()

    # ------------------------------------------------------------------
    # Determinism witness
    # ------------------------------------------------------------------
    def journal_text(self) -> str:
        """Every stored span as canonical text (byte-comparable).

        Traces appear in insertion order; spans within a trace in end
        order, which is deterministic because the simulation is.  In
        tail mode only *kept* traces appear, in finalization order —
        still deterministic, because completion order is.
        """
        lines: List[str] = []
        for spans in self._traces.values():
            lines.extend(span.line() for span in spans)
        return "\n".join(lines)
