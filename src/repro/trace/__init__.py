"""Distributed tracing on the virtual clock (the pipeline monitors itself).

TEEMon's pitch is *continuous, low-overhead* monitoring — this package
turns the lens on the pipeline itself.  It is an OpenTelemetry-shaped
tracing subsystem built entirely on the simulation substrate:

* :class:`~repro.trace.tracer.Tracer` / :class:`~repro.trace.tracer.Span`
  — spans with virtual-time start/end, attributes, events and status;
  span and trace ids are drawn from a :class:`DeterministicRng`
  substream, so the same seed yields byte-identical traces;
* :class:`~repro.trace.store.TraceStore` — a bounded in-memory store with
  per-trace lookup and a canonical text journal (the determinism
  witness, mirroring :meth:`repro.faults.plan.FaultPlan.journal_text`);
* :class:`~repro.trace.context.TraceContext` — W3C ``traceparent``
  propagation, carried through the simulated HTTP layer's headers;
* :data:`NOOP_TRACER` — the off-by-default fast path: a singleton no-op
  tracer whose spans allocate nothing, so instrumented code pays one
  attribute check when tracing is disabled;
* :class:`~repro.trace.sampling.HeadSampler` /
  :class:`~repro.trace.sampling.TailRules` — adaptive sampling: a
  seeded head decision at root creation (propagated via the traceparent
  flags) plus tail keep rules that promote only interesting traces
  (faults, retries, errors, slow spans) out of a pending buffer;
* :class:`~repro.trace.detect.AnomalyDetector` — joins kept traces with
  TSDB series (AEX counters, EPC evictions, syscall latency) over
  rolling baselines and journals ``teemon_anomaly_*`` detections.

The scrape manager, query engine and rule evaluator accept a tracer, and
:mod:`repro.pmv.trace_view` renders stored traces as text waterfalls and
folded flamegraph stacks.
"""

from repro.trace.context import (
    TRACEPARENT_HEADER,
    TraceContext,
    format_traceparent,
    parse_traceparent,
)
from repro.trace.detect import (
    AnomalyDetector,
    AnomalyEvent,
    AnomalyRule,
)
from repro.trace.sampling import HeadSampler, TailRules
from repro.trace.store import TraceStore
from repro.trace.tracer import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "format_traceparent",
    "parse_traceparent",
    "Span",
    "SpanEvent",
    "Tracer",
    "TraceStore",
    "HeadSampler",
    "TailRules",
    "AnomalyDetector",
    "AnomalyEvent",
    "AnomalyRule",
    "NoopTracer",
    "NOOP_TRACER",
    "NOOP_SPAN",
]
