"""Trace-driven anomaly detection over the monitor's own TSDB.

The payoff of keeping traces: a detector that joins what the tail
sampler kept with the metric streams the pipeline already ingests.  Each
run (a fixed virtual-time cadence, scheduled by the deployment) it takes
window deltas of three enclave health signals —

* ``sgx_epc_pages_evicted_total``  → EPC thrashing (paging storms),
* ``sgx_aexs_total``               → AEX storms (enclave exit floods),
* ``ebpf_syscall_latency_us_bucket`` → syscall-latency outliers (p95
  estimated from the log2 histogram's window delta),

— compares each against a rolling per-signal baseline (mean of the
previous window deltas) *and* an absolute floor, and on a hit emits:

1. an :class:`AnomalyEvent` appended to a deterministically-ordered
   journal (same seed ⇒ byte-identical text, like the fault and alert
   journals);
2. ``teemon_anomaly_*`` self-series written straight into the TSDB, so
   dashboards can plot them and alerting rules can page on
   ``teemon_anomaly_active == 1``;
3. a trace join: the newest kept trace with a ``scrape.target`` span for
   the signal's exporter job inside the window, recorded as evidence on
   the event — the span-level view of *what the pipeline saw* while the
   signal spiked.

The floor-and-ratio shape is what makes the detection scenarios strict:
an injected EPC-thrash/AEX-storm/syscall-outlier burst must trip its
rule, while the clean same-seed control run must stay below every floor
(zero false positives, asserted by the scenario suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Anomaly kinds (the journal vocabulary).
KIND_EPC_THRASH = "epc-thrash"
KIND_AEX_STORM = "aex-storm"
KIND_SYSCALL_LATENCY = "syscall-latency"


@dataclass(frozen=True)
class AnomalyRule:
    """Threshold shape of one detection rule.

    A window delta flags when it is at least ``min_delta`` *and* at
    least ``ratio`` times the rolling baseline (the baseline guard is
    waived while the baseline is still zero — the floor alone decides).
    """

    kind: str
    metric: str
    job: str
    min_delta: float
    ratio: float = 4.0


#: Default rule set, floors sized so steady-state simulation noise
#: (background paging, normal syscall traffic) stays well below them.
DEFAULT_RULES: Tuple[AnomalyRule, ...] = (
    AnomalyRule(
        kind=KIND_EPC_THRASH, metric="sgx_epc_pages_evicted_total",
        job="sgx", min_delta=512.0,
    ),
    AnomalyRule(
        kind=KIND_AEX_STORM, metric="sgx_aexs_total",
        job="sgx", min_delta=256.0,
    ),
    AnomalyRule(
        kind=KIND_SYSCALL_LATENCY, metric="ebpf_syscall_latency_us_bucket",
        job="ebpf", min_delta=1024.0,  # p95 floor, microseconds
    ),
)


@dataclass(frozen=True)
class AnomalyEvent:
    """One journalled detection."""

    time_ns: int
    kind: str
    metric: str
    value: float
    baseline: float
    trace_id: str

    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        return (
            f"{self.time_ns} anomaly-{self.kind} {self.metric} "
            f"value={self.value:.2f} baseline={self.baseline:.2f} "
            f"trace={self.trace_id}"
        )


def _parse_le(text: str) -> float:
    return math.inf if text == "+Inf" else float(text)


class AnomalyDetector:
    """Rolling-baseline detector over the deployment's TSDB + traces."""

    def __init__(
        self,
        tsdb,
        trace_store=None,
        rules: Tuple[AnomalyRule, ...] = DEFAULT_RULES,
        baseline_windows: int = 6,
        warmup_windows: int = 1,
        self_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if baseline_windows < 1:
            raise ValueError("baseline_windows must be >= 1")
        if warmup_windows < 0:
            raise ValueError("warmup_windows cannot be negative")
        self._tsdb = tsdb
        self._trace_store = trace_store
        self.rules = tuple(rules)
        self.baseline_windows = baseline_windows
        self.warmup_windows = warmup_windows
        self._self_labels = dict(self_labels or {"job": "teemon_detector"})
        #: Per-kind previous cumulative value (None until first seen).
        self._prev_cum: Dict[str, Optional[float]] = {}
        #: Per-kind previous bucket snapshot (syscall rule only).
        self._prev_buckets: Dict[float, float] = {}
        #: Per-kind rolling window-delta history (baseline input).
        self._history: Dict[str, List[float]] = {}
        self._last_run_ns: Optional[int] = None
        self.journal: List[AnomalyEvent] = []
        self.runs_total = 0
        self.anomalies_total = 0
        self.anomalies_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Signal extraction
    # ------------------------------------------------------------------
    def _window_series(self, metric: str, start_ns: int, end_ns: int):
        return self._tsdb.select_metric(metric, max(0, start_ns), end_ns)

    def _counter_delta(
        self, rule: AnomalyRule, start_ns: int, end_ns: int
    ) -> Optional[float]:
        """Window delta of a cumulative counter (None = no data yet)."""
        series = self._window_series(rule.metric, start_ns, end_ns)
        if not series:
            return None
        current = sum(s.samples[-1].value for s in series if s.samples)
        previous = self._prev_cum.get(rule.kind)
        self._prev_cum[rule.kind] = current
        if previous is None:
            return None
        return max(0.0, current - previous)

    def _syscall_p95(
        self, rule: AnomalyRule, start_ns: int, end_ns: int
    ) -> Optional[float]:
        """p95 latency (us) estimated from the window's bucket deltas."""
        series = self._window_series(rule.metric, start_ns, end_ns)
        if not series:
            return None
        buckets: Dict[float, float] = {}
        for s in series:
            if not s.samples:
                continue
            le = _parse_le(s.labels.get("le", "+Inf"))
            buckets[le] = buckets.get(le, 0.0) + s.samples[-1].value
        previous = self._prev_buckets
        self._prev_buckets = buckets
        if not previous:
            return None
        deltas = {
            le: max(0.0, count - previous.get(le, 0.0))
            for le, count in buckets.items()
        }
        total = deltas.get(math.inf, 0.0)
        if total <= 0.0:
            return 0.0
        target = 0.95 * total
        for le in sorted(deltas):
            if deltas[le] >= target:
                # +Inf resolves to the largest finite bound doubled — an
                # estimate is enough for an outlier threshold.
                if math.isinf(le):
                    finite = [b for b in deltas if not math.isinf(b)]
                    return max(finite) * 2.0 if finite else 0.0
                return le
        return 0.0

    # ------------------------------------------------------------------
    # Trace evidence
    # ------------------------------------------------------------------
    def _evidence_trace(
        self, job: str, start_ns: int, end_ns: int
    ) -> str:
        """Newest kept trace scraping ``job`` inside the window, or '-'."""
        store = self._trace_store
        if store is None:
            return "-"
        for trace_id in reversed(store.trace_ids()):
            for span in store.get(trace_id):
                if span.name != "scrape.target":
                    continue
                if span.attributes.get("job") != job:
                    continue
                if span.start_ns > end_ns or span.start_ns < start_ns:
                    continue
                return trace_id
        return "-"

    # ------------------------------------------------------------------
    # The detection cycle
    # ------------------------------------------------------------------
    def run(self, now_ns: int) -> List[AnomalyEvent]:
        """Evaluate every rule over the window since the previous run."""
        self.runs_total += 1
        start_ns = self._last_run_ns if self._last_run_ns is not None else 0
        self._last_run_ns = now_ns
        fired: List[AnomalyEvent] = []
        for rule in self.rules:
            if rule.kind == KIND_SYSCALL_LATENCY:
                value = self._syscall_p95(rule, start_ns, now_ns)
            else:
                value = self._counter_delta(rule, start_ns, now_ns)
            if value is None:
                continue
            history = self._history.setdefault(rule.kind, [])
            baseline = (
                sum(history) / len(history) if history else 0.0
            )
            warmed = len(history) >= self.warmup_windows
            flagged = (
                warmed
                and value >= rule.min_delta
                and (baseline <= 0.0 or value >= rule.ratio * baseline)
            )
            if flagged:
                event = AnomalyEvent(
                    time_ns=now_ns, kind=rule.kind, metric=rule.metric,
                    value=value, baseline=baseline,
                    trace_id=self._evidence_trace(rule.job, start_ns, now_ns),
                )
                self.journal.append(event)
                fired.append(event)
                self.anomalies_total += 1
                self.anomalies_by_kind[rule.kind] = (
                    self.anomalies_by_kind.get(rule.kind, 0) + 1
                )
            else:
                # Anomalous windows stay out of the baseline, so a
                # sustained storm keeps flagging instead of teaching
                # the baseline that storms are normal.
                history.append(value)
                if len(history) > self.baseline_windows:
                    history.pop(0)
            self._write_self_series(rule, now_ns, value, flagged)
        return fired

    def _write_self_series(
        self, rule: AnomalyRule, now_ns: int, value: float, flagged: bool
    ) -> None:
        labels = dict(self._self_labels)
        self._tsdb.append_sample(
            "teemon_anomaly_active", now_ns, 1.0 if flagged else 0.0,
            kind=rule.kind, **labels,
        )
        self._tsdb.append_sample(
            "teemon_anomaly_score", now_ns, value, kind=rule.kind, **labels,
        )
        self._tsdb.append_sample(
            "teemon_anomalies_total", now_ns,
            float(self.anomalies_by_kind.get(rule.kind, 0)),
            kind=rule.kind, **labels,
        )

    # ------------------------------------------------------------------
    # Determinism witness
    # ------------------------------------------------------------------
    def journal_text(self) -> str:
        """Every detection as canonical text (byte-comparable)."""
        return "\n".join(event.line() for event in self.journal)

    def stats(self) -> Dict[str, object]:
        """Detector counters for the session API / self-telemetry."""
        return {
            "runs_total": self.runs_total,
            "anomalies_total": self.anomalies_total,
            "anomalies_by_kind": dict(self.anomalies_by_kind),
        }


__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "AnomalyRule",
    "DEFAULT_RULES",
    "KIND_AEX_STORM",
    "KIND_EPC_THRASH",
    "KIND_SYSCALL_LATENCY",
]
