"""Spans and the tracer that makes them.

Spans live on the :class:`~repro.simkernel.clock.VirtualClock`: a span's
``start_ns``/``end_ns`` are virtual timestamps, and ids are drawn from a
:class:`~repro.simkernel.rng.DeterministicRng` substream — two same-seed
runs of the same workload produce byte-identical trace journals, the
property the chaos suite asserts for fault journals.

Because the simulation executes whole pipeline stages at a single clock
instant, spans additionally carry *modelled* time: instrumented code calls
:meth:`Span.add_virtual_time` with the stage's modelled cost (transport
latency, parse cost, append cost), and a span's children are laid out
sequentially along that modelled timeline.  A child starts at its
parent's current cursor and, on ending, pushes the cursor to its own end
— which is what makes the waterfall renderer show *where time goes*
inside a scrape cycle rather than a stack of zero-width bars.

Tracing is off by default with a near-zero no-op path: :data:`NOOP_TRACER`
hands out one shared :data:`NOOP_SPAN` whose every method is a pass, so
instrumented code can be written unconditionally (``with tracer.span(...)``)
and hot paths can skip even that with an ``if tracer.enabled`` guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.simkernel.clock import VirtualClock
from repro.simkernel.rng import DeterministicRng
from repro.trace.context import TraceContext
from repro.trace.store import TraceStore

#: Span status values (OpenTelemetry's three-valued status).
STATUS_UNSET = "unset"
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (e.g. a retry being scheduled)."""

    time_ns: int
    name: str
    attributes: Tuple[Tuple[str, object], ...] = ()

    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        attrs = ",".join(f"{k}={v!r}" for k, v in self.attributes)
        return f"@{self.time_ns}:{self.name}{{{attrs}}}"


class Span:
    """One traced operation with virtual-time bounds.

    Use as a context manager via :meth:`Tracer.span`; exceptions escaping
    the body mark the span's status ``error`` (and still propagate).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "seq",
        "start_ns", "end_ns", "cursor_ns", "status",
        "attributes", "events", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        seq: int,
        start_ns: int,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.start_ns = start_ns
        #: The modelled "current time" inside the span; children start
        #: here and completed work pushes it forward.
        self.cursor_ns = start_ns
        self.end_ns: Optional[int] = None
        self.status = STATUS_UNSET
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}
        self.events: List[SpanEvent] = []

    # ------------------------------------------------------------------
    @property
    def context(self) -> TraceContext:
        """This span's propagation context."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_ns(self) -> int:
        """Virtual duration; 0 while the span is still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute."""
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Record a point event at the span's current cursor."""
        self.events.append(SpanEvent(
            time_ns=self.cursor_ns, name=name,
            attributes=tuple(sorted(attributes.items())),
        ))

    def add_virtual_time(self, delta_ns: int) -> None:
        """Advance the span's modelled timeline by ``delta_ns``."""
        if delta_ns > 0:
            self.cursor_ns += delta_ns

    def set_status(self, status: str) -> None:
        """Set the span status (``ok`` / ``error``)."""
        self.status = status

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.add_event("exception", type=exc_type.__name__, message=str(exc))
        self._tracer._end(self)
        return False  # never swallow

    # ------------------------------------------------------------------
    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        attrs = ",".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        events = " ".join(event.line() for event in self.events)
        parent = self.parent_id or "-"
        base = (
            f"{self.trace_id} {self.seq} {self.span_id} {parent} {self.name} "
            f"{self.start_ns} {self.end_ns} {self.status} [{attrs}]"
        )
        return f"{base} {events}" if events else base


class Tracer:
    """Creates spans, maintains the active-span stack, feeds the store.

    The simulation is single-threaded, so a plain stack gives correct and
    deterministic implicit parenting: ``tracer.span(...)`` parents to the
    innermost open span unless an explicit ``parent`` context is given
    (the cross-request case — e.g. a retry continuing its cycle's trace).
    """

    enabled = True

    def __init__(
        self,
        clock: VirtualClock,
        rng: Optional[DeterministicRng] = None,
        store: Optional[TraceStore] = None,
    ) -> None:
        self._clock = clock
        self._ids = (rng or DeterministicRng(0)).fork("trace-ids")
        self.store = store if store is not None else TraceStore()
        self._stack: List[Span] = []
        self._seq = 0
        self.spans_started = 0
        self.spans_ended = 0
        self.traces_started = 0
        self._end_callbacks: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    # Id generation (deterministic under the seed)
    # ------------------------------------------------------------------
    def _new_trace_id(self) -> str:
        return f"{self._ids.randint(1, (1 << 128) - 1):032x}"

    def _new_span_id(self) -> str:
        return f"{self._ids.randint(1, (1 << 64) - 1):016x}"

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
        parent: Optional[TraceContext] = None,
    ) -> Span:
        """Open a span (use as a context manager).

        Parenting, most specific first: the explicit ``parent`` context,
        else the innermost open span, else a fresh trace root.
        """
        top = self._stack[-1] if self._stack else None
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
            start_ns = top.cursor_ns if top is not None else self._clock.now_ns
        elif top is not None:
            trace_id, parent_id = top.trace_id, top.span_id
            start_ns = top.cursor_ns
        else:
            trace_id, parent_id = self._new_trace_id(), None
            start_ns = self._clock.now_ns
            self.traces_started += 1
        self._seq += 1
        span = Span(
            tracer=self, name=name, trace_id=trace_id,
            span_id=self._new_span_id(), parent_id=parent_id,
            seq=self._seq, start_ns=start_ns, attributes=attributes,
        )
        self._stack.append(span)
        self.spans_started += 1
        return span

    def _end(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # Out-of-order end: tolerate (drop deeper spans' stack slots)
            # rather than corrupting the stack — tracing must never take
            # the pipeline down.
            if span in self._stack:
                while self._stack and self._stack[-1] is not span:
                    self._stack.pop()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.end_ns = span.cursor_ns
        if span.status == STATUS_UNSET:
            span.status = STATUS_OK
        parent = self._stack[-1] if self._stack else None
        if parent is not None and parent.trace_id == span.trace_id:
            # Sequential layout: the next sibling starts where this span
            # ended on the modelled timeline.
            if span.end_ns > parent.cursor_ns:
                parent.cursor_ns = span.end_ns
        self.spans_ended += 1
        self.store.add(span)
        for callback in self._end_callbacks:
            callback(span)

    # ------------------------------------------------------------------
    # Context and observers
    # ------------------------------------------------------------------
    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context, for header injection."""
        if not self._stack:
            return None
        return self._stack[-1].context

    def on_span_end(self, callback: Callable[[Span], None]) -> None:
        """Run ``callback`` on every finished span (self-telemetry feed)."""
        self._end_callbacks.append(callback)


class _NoopSpan:
    """The shared do-nothing span; every method is a pass."""

    __slots__ = ()

    context = None
    events: tuple = ()
    attributes: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass

    def add_virtual_time(self, delta_ns: int) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


#: The shared no-op span instance.
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: hands out :data:`NOOP_SPAN`, stores nothing."""

    enabled = False
    store = None
    spans_started = 0
    spans_ended = 0
    traces_started = 0

    def span(self, name, attributes=None, parent=None) -> _NoopSpan:  # noqa: D102
        return NOOP_SPAN

    def current_context(self) -> None:  # noqa: D102
        return None

    def on_span_end(self, callback) -> None:  # noqa: D102
        pass


#: The shared no-op tracer — the off-by-default fast path.
NOOP_TRACER = NoopTracer()
