"""Spans and the tracer that makes them.

Spans live on the :class:`~repro.simkernel.clock.VirtualClock`: a span's
``start_ns``/``end_ns`` are virtual timestamps, and ids are drawn from a
:class:`~repro.simkernel.rng.DeterministicRng` substream — two same-seed
runs of the same workload produce byte-identical trace journals, the
property the chaos suite asserts for fault journals.

Because the simulation executes whole pipeline stages at a single clock
instant, spans additionally carry *modelled* time: instrumented code calls
:meth:`Span.add_virtual_time` with the stage's modelled cost (transport
latency, parse cost, append cost), and a span's children are laid out
sequentially along that modelled timeline.  A child starts at its
parent's current cursor and, on ending, pushes the cursor to its own end
— which is what makes the waterfall renderer show *where time goes*
inside a scrape cycle rather than a stack of zero-width bars.

Tracing is off by default with a near-zero no-op path: :data:`NOOP_TRACER`
hands out one shared :data:`NOOP_SPAN` whose every method is a pass, so
instrumented code can be written unconditionally (``with tracer.span(...)``)
and hot paths can skip even that with an ``if tracer.enabled`` guard.

With a :class:`~repro.trace.sampling.HeadSampler` attached, the tracer
makes the keep/drop decision once per trace, at root creation.  A
sampled-out trace gets one shared-shape :class:`_UnsampledSpan` object
for its *entire* subtree — nested ``span()`` calls return the same
object with a depth counter — so the unsampled path does no attribute
dicts, no events, no store writes and no end callbacks.  The decision
rides :attr:`TraceContext.sampled` (the W3C flags byte), and an explicit
``parent`` context with ``sampled=False`` keeps the whole continuation
(retries, remote joins) on the cheap path too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.simkernel.clock import VirtualClock
from repro.simkernel.rng import DeterministicRng
from repro.trace.context import TraceContext
from repro.trace.sampling import HeadSampler
from repro.trace.store import TraceStore

#: Span status values (OpenTelemetry's three-valued status).
STATUS_UNSET = "unset"
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (e.g. a retry being scheduled)."""

    time_ns: int
    name: str
    attributes: Tuple[Tuple[str, object], ...] = ()

    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        attrs = ",".join(f"{k}={v!r}" for k, v in self.attributes)
        return f"@{self.time_ns}:{self.name}{{{attrs}}}"


class Span:
    """One traced operation with virtual-time bounds.

    Use as a context manager via :meth:`Tracer.span`; exceptions escaping
    the body mark the span's status ``error`` (and still propagate).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "seq",
        "start_ns", "end_ns", "cursor_ns", "status",
        "attributes", "events", "_tracer",
    )

    #: Real spans record; the unsampled/no-op shapes override to False so
    #: call sites can gate expensive attribute computation.
    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        seq: int,
        start_ns: int,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.start_ns = start_ns
        #: The modelled "current time" inside the span; children start
        #: here and completed work pushes it forward.
        self.cursor_ns = start_ns
        self.end_ns: Optional[int] = None
        self.status = STATUS_UNSET
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}
        self.events: List[SpanEvent] = []

    # ------------------------------------------------------------------
    @property
    def context(self) -> TraceContext:
        """This span's propagation context."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_ns(self) -> int:
        """Virtual duration; 0 while the span is still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute."""
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Record a point event at the span's current cursor."""
        self.events.append(SpanEvent(
            time_ns=self.cursor_ns, name=name,
            attributes=tuple(sorted(attributes.items())),
        ))

    def add_virtual_time(self, delta_ns: int) -> None:
        """Advance the span's modelled timeline by ``delta_ns``."""
        if delta_ns > 0:
            self.cursor_ns += delta_ns

    def set_status(self, status: str) -> None:
        """Set the span status (``ok`` / ``error``)."""
        self.status = status

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.add_event("exception", type=exc_type.__name__, message=str(exc))
        self._tracer._end(self)
        return False  # never swallow

    # ------------------------------------------------------------------
    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        attrs = ",".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        events = " ".join(event.line() for event in self.events)
        parent = self.parent_id or "-"
        base = (
            f"{self.trace_id} {self.seq} {self.span_id} {parent} {self.name} "
            f"{self.start_ns} {self.end_ns} {self.status} [{attrs}]"
        )
        return f"{base} {events}" if events else base


class _UnsampledSpan:
    """One shared object for a sampled-out trace's entire subtree.

    Shaped like :class:`_NoopSpan` (every recording method is a pass) but
    it *does* carry a context, so traceparent injection propagates the
    not-sampled decision downstream.  Nested ``span()`` calls on the
    tracer return this same object with a depth counter; the object pops
    off the tracer when the outermost ``with`` exits.
    """

    __slots__ = ("trace_id", "span_id", "_depth", "_tracer")

    recording = False
    events: tuple = ()
    attributes: dict = {}

    def __init__(self, tracer: "Tracer", trace_id: str) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        # Derived, not drawn: the unsampled path must not consume the id
        # stream.  Either half of a nonzero trace id is a valid span id
        # (at least one half is nonzero).
        half = trace_id[16:]
        self.span_id = half if half != "0" * 16 else trace_id[:16]
        self._depth = 1

    @property
    def context(self) -> TraceContext:
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id, sampled=False
        )

    def __enter__(self) -> "_UnsampledSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._depth -= 1
        if self._depth <= 0:
            self._tracer._unsampled_exit(self)
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass

    def add_virtual_time(self, delta_ns: int) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


class Tracer:
    """Creates spans, maintains the active-span stack, feeds the store.

    The simulation is single-threaded, so a plain stack gives correct and
    deterministic implicit parenting: ``tracer.span(...)`` parents to the
    innermost open span unless an explicit ``parent`` context is given
    (the cross-request case — e.g. a retry continuing its cycle's trace).
    """

    enabled = True

    def __init__(
        self,
        clock: VirtualClock,
        rng: Optional[DeterministicRng] = None,
        store: Optional[TraceStore] = None,
        sampler: Optional[HeadSampler] = None,
    ) -> None:
        self._clock = clock
        self._ids = (rng or DeterministicRng(0)).fork("trace-ids")
        self.store = store if store is not None else TraceStore()
        self.sampler = sampler
        self._stack: List[Span] = []
        self._unsampled: List[_UnsampledSpan] = []
        self._seq = 0
        self.spans_started = 0
        self.spans_ended = 0
        self.traces_started = 0
        self.traces_sampled_out = 0
        self.spans_unsampled = 0
        self._end_callbacks: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    # Id generation (deterministic under the seed)
    # ------------------------------------------------------------------
    def _new_trace_id(self) -> str:
        # getrandbits over randint: no rejection loop for the 128-bit
        # range.  ``or 1`` keeps the all-zeros id (invalid per W3C) out.
        return f"{self._ids.getrandbits(128) or 1:032x}"

    def _new_span_id(self) -> str:
        return f"{self._ids.getrandbits(64) or 1:016x}"

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
        parent: Optional[TraceContext] = None,
    ):
        """Open a span (use as a context manager).

        Parenting, most specific first: the explicit ``parent`` context,
        else the innermost open span, else a fresh trace root.  A parent
        whose head decision was *not sampled* — explicit via its context
        flags, or implicit via the open unsampled subtree — keeps the
        child on the unsampled fast path.
        """
        top = self._stack[-1] if self._stack else None
        if parent is not None:
            if not parent.sampled:
                return self._unsampled_span(parent.trace_id)
            trace_id, parent_id = parent.trace_id, parent.span_id
            start_ns = top.cursor_ns if top is not None else self._clock.now_ns
        elif top is not None:
            trace_id, parent_id = top.trace_id, top.span_id
            start_ns = top.cursor_ns
        elif self._unsampled:
            # Inside an open unsampled root: the subtree stays cheap.
            # Inlined reuse (the hot always-on path): same trace by
            # construction, so just bump the depth counter.
            self.spans_unsampled += 1
            unsampled_top = self._unsampled[-1]
            unsampled_top._depth += 1
            return unsampled_top
        else:
            trace_id, parent_id = self._new_trace_id(), None
            start_ns = self._clock.now_ns
            self.traces_started += 1
            if self.sampler is not None and not self.sampler.sample(trace_id):
                self.traces_sampled_out += 1
                return self._unsampled_span(trace_id)
        self._seq += 1
        span = Span(
            tracer=self, name=name, trace_id=trace_id,
            span_id=self._new_span_id(), parent_id=parent_id,
            seq=self._seq, start_ns=start_ns, attributes=attributes,
        )
        self._stack.append(span)
        self.spans_started += 1
        return span

    def _unsampled_span(self, trace_id: str) -> _UnsampledSpan:
        """Reuse (or open) the unsampled subtree object for ``trace_id``."""
        self.spans_unsampled += 1
        if self._unsampled and self._unsampled[-1].trace_id == trace_id:
            top = self._unsampled[-1]
            top._depth += 1
            return top
        span = _UnsampledSpan(self, trace_id)
        self._unsampled.append(span)
        return span

    def _unsampled_exit(self, span: _UnsampledSpan) -> None:
        if self._unsampled and self._unsampled[-1] is span:
            self._unsampled.pop()

    def _end(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # Out-of-order end: tolerate (drop deeper spans' stack slots)
            # rather than corrupting the stack — tracing must never take
            # the pipeline down.
            if span in self._stack:
                while self._stack and self._stack[-1] is not span:
                    self._stack.pop()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.end_ns = span.cursor_ns
        if span.status == STATUS_UNSET:
            span.status = STATUS_OK
        parent = self._stack[-1] if self._stack else None
        if parent is not None and parent.trace_id == span.trace_id:
            # Sequential layout: the next sibling starts where this span
            # ended on the modelled timeline.
            if span.end_ns > parent.cursor_ns:
                parent.cursor_ns = span.end_ns
        self.spans_ended += 1
        self.store.add(span)
        for callback in self._end_callbacks:
            callback(span)

    # ------------------------------------------------------------------
    # Context and observers
    # ------------------------------------------------------------------
    def recording(self) -> bool:
        """Would a span opened now record anything?

        False only inside an open unsampled subtree — the guard that lets
        hot call sites (``if tracer.enabled and tracer.recording()``)
        skip even the fast-path span objects and the attribute values
        they would discard.  With no span open at all this is True: the
        next span starts a fresh root whose head decision has not been
        made yet.
        """
        return bool(self._stack) or not self._unsampled

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context, for header injection.

        An open unsampled subtree still yields a context (with
        ``sampled=False``), so the not-sampled decision propagates to
        downstream participants instead of letting them re-roll it.
        """
        if self._stack:
            return self._stack[-1].context
        if self._unsampled:
            return self._unsampled[-1].context
        return None

    def on_span_end(self, callback: Callable[[Span], None]) -> None:
        """Run ``callback`` on every finished span (self-telemetry feed)."""
        self._end_callbacks.append(callback)


class _NoopSpan:
    """The shared do-nothing span; every method is a pass."""

    __slots__ = ()

    recording = False
    context = None
    events: tuple = ()
    attributes: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass

    def add_virtual_time(self, delta_ns: int) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


#: The shared no-op span instance.
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: hands out :data:`NOOP_SPAN`, stores nothing."""

    enabled = False
    store = None
    sampler = None
    spans_started = 0
    spans_ended = 0
    traces_started = 0
    traces_sampled_out = 0
    spans_unsampled = 0

    def span(self, name, attributes=None, parent=None) -> _NoopSpan:  # noqa: D102
        return NOOP_SPAN

    def recording(self) -> bool:  # noqa: D102
        return False

    def current_context(self) -> None:  # noqa: D102
        return None

    def on_span_end(self, callback) -> None:  # noqa: D102
        pass


#: The shared no-op tracer — the off-by-default fast path.
NOOP_TRACER = NoopTracer()
