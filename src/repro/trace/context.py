"""W3C-style trace context propagation.

A :class:`TraceContext` is the wire-format identity of a span — the pair
``(trace_id, span_id)`` — serialised as a ``traceparent`` header in the
W3C Trace Context shape::

    00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01

(version ``00``, 16-byte trace id, 8-byte parent span id, sampled flag).
The simulated HTTP layer carries the header on requests and echoes it on
responses, so a scrape's server-side work can be tied back to the trace
the scraper started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Header name, lowercase per the W3C Trace Context spec.
TRACEPARENT_HEADER = "traceparent"

_TRACE_ID_LEN = 32  # 16 bytes, hex
_SPAN_ID_LEN = 16   # 8 bytes, hex
_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(text: str) -> bool:
    return bool(text) and all(char in _HEX_DIGITS for char in text)


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """Serialise as a ``traceparent`` header value (always sampled)."""
        return format_traceparent(self.trace_id, self.span_id)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-<trace_id>-<span_id>-01`` (version 00, sampled)."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; None for anything malformed.

    Propagation is best-effort by design: a bad header must never fail a
    request, it just breaks the trace — exactly the W3C behaviour.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != "00":
        return None
    if len(trace_id) != _TRACE_ID_LEN or not _is_hex(trace_id):
        return None
    if len(span_id) != _SPAN_ID_LEN or not _is_hex(span_id):
        return None
    if trace_id == "0" * _TRACE_ID_LEN or span_id == "0" * _SPAN_ID_LEN:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)
