"""W3C-style trace context propagation.

A :class:`TraceContext` is the wire-format identity of a span — the pair
``(trace_id, span_id)`` plus the sampled flag — serialised as a
``traceparent`` header in the W3C Trace Context shape::

    00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01

(version ``00``, 16-byte trace id, 8-byte parent span id, trace flags).
The trailing flags byte carries the head-sampling decision: ``01`` means
the root sampled this trace, ``00`` means it did not — and every
downstream participant honors that decision instead of re-rolling it.
The simulated HTTP layer carries the header on requests and echoes it on
responses, so a scrape's server-side work can be tied back to the trace
the scraper started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Header name, lowercase per the W3C Trace Context spec.
TRACEPARENT_HEADER = "traceparent"

#: Trace-flags byte values (only bit 0, "sampled", is defined).
FLAGS_SAMPLED = "01"
FLAGS_NOT_SAMPLED = "00"

_TRACE_ID_LEN = 32  # 16 bytes, hex
_SPAN_ID_LEN = 16   # 8 bytes, hex
_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(text: str) -> bool:
    return bool(text) and all(char in _HEX_DIGITS for char in text)


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: ``(trace_id, span_id)``.

    ``sampled`` carries the head decision made at the trace root; child
    participants on other nodes must honor it (a non-sampled parent never
    produces sampled children).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """Serialise as a ``traceparent`` header value."""
        return format_traceparent(
            self.trace_id, self.span_id, sampled=self.sampled
        )


def format_traceparent(
    trace_id: str, span_id: str, sampled: bool = True
) -> str:
    """``00-<trace_id>-<span_id>-<flags>`` (version 00)."""
    flags = FLAGS_SAMPLED if sampled else FLAGS_NOT_SAMPLED
    return f"00-{trace_id}-{span_id}-{flags}"


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; None for anything malformed.

    Propagation is best-effort by design: a bad header must never fail a
    request, it just breaks the trace — exactly the W3C behaviour.  The
    flags byte is parsed leniently: any valid hex byte with bit 0 set
    counts as sampled.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00":
        return None
    if len(trace_id) != _TRACE_ID_LEN or not _is_hex(trace_id):
        return None
    if len(span_id) != _SPAN_ID_LEN or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * _TRACE_ID_LEN or span_id == "0" * _SPAN_ID_LEN:
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)
