"""Head- and tail-based trace sampling.

Full tracing costs ~3.4x per scrape cycle (``BENCH_trace.json``), which
is why it shipped off by default.  This module makes always-on tracing
affordable with the two standard levers:

* **Head sampling** (:class:`HeadSampler`) — a probabilistic keep/drop
  decision made once, at root-span creation, as a pure function of the
  trace id and a seeded salt.  The decision rides the W3C traceparent
  flags byte so every downstream participant (retries continuing a
  cycle's trace, simulated remote nodes joining via the header) honors
  the root's choice instead of re-rolling it.  Because the decision is
  hash-based rather than drawn from the rng stream, sampling consumes
  no per-decision randomness: two same-seed runs at the same
  probability make identical decisions and emit byte-identical sampled
  journals.

* **Tail keep rules** (:class:`TailRules`) — evaluated per *completed*
  trace against a bounded pending buffer in the
  :class:`~repro.trace.store.TraceStore`.  A trace is promoted to the
  store when it is interesting (fault events, retries, error spans,
  slow spans) and dropped otherwise, so the store holds exactly the
  traces an anomaly investigation needs.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Tuple

from repro.simkernel.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import Span

#: Span-event names that mark a trace as fault-bearing.  These are the
#: events the instrumentation layer emits when the fault injectors bite
#: (plus ``exception``, which any failing span body produces).
FAULT_EVENT_NAMES: FrozenSet[str] = frozenset({
    "scrape.timeout",
    "scrape.http_failure",
    "scrape.parse_failure",
    "scrape.retry_scheduled",
    "transport.delay",
    "exception",
})

#: Span names that mark a trace as retry-bearing.
RETRY_SPAN_NAMES: FrozenSet[str] = frozenset({"scrape.retry"})

#: Default slow-span threshold: anything modelled slower than this is
#: kept regardless of probability (250ms of virtual time).
DEFAULT_SLOW_SPAN_NS = 250_000_000

# Keep-decision reasons, in evaluation order (the journal vocabulary).
KEEP_ERROR = "error"
KEEP_FAULT_EVENT = "fault-event"
KEEP_RETRY = "retry"
KEEP_SLOW = "slow-span"
DROP = "drop"


class HeadSampler:
    """Deterministic probabilistic head sampler.

    The keep/drop decision for a trace id is ``hash(salt, trace_id)``
    mapped onto ``[0, 1)`` and compared against ``probability``.  The
    salt is drawn once from a seeded rng substream at construction, so:

    * the same seed yields the same decisions (byte-identical sampled
      journals across reruns, the chaos-suite contract);
    * no per-decision rng draw happens, so the decision stream never
      perturbs any other seeded substream;
    * two samplers forked from the same seed agree on every trace id,
      which is what lets simulated remote nodes verify a received
      flags byte against their own local decision.
    """

    __slots__ = (
        "probability", "_salt", "_threshold", "decisions", "sampled_in",
    )

    def __init__(
        self,
        probability: float,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"sampling probability must be in [0, 1], got {probability}"
            )
        self.probability = probability
        seed_rng = (rng or DeterministicRng(0)).fork("head-sampler")
        self._salt = seed_rng.randint(0, (1 << 32) - 1)
        self._threshold = probability * 4294967296.0
        self.decisions = 0
        self.sampled_in = 0

    def sample(self, trace_id: str) -> bool:
        """The head decision for ``trace_id`` (stable per sampler seed)."""
        self.decisions += 1
        if self.probability >= 1.0:
            self.sampled_in += 1
            return True
        if self.probability <= 0.0:
            return False
        # crc32 is stable across platforms/processes (unlike hash()) and
        # cheap enough for the hot path.
        bucket = zlib.crc32(
            trace_id.encode("ascii"), self._salt
        ) & 0xFFFFFFFF
        keep = bucket < self._threshold
        if keep:
            self.sampled_in += 1
        return keep


class TailRules:
    """Keep rules evaluated against a completed trace's span list.

    Rules, in order (first match wins, the reason is journalled):

    1. ``error`` — any span with status ``error``;
    2. ``fault-event`` — any span event named in ``fault_events``;
    3. ``retry`` — any span named in ``retry_spans``;
    4. ``slow-span`` — any span whose modelled duration is
       >= ``slow_span_ns``.

    Everything else is dropped.  The rule set is intentionally small and
    deterministic: a trace's fate is a pure function of its spans.
    """

    __slots__ = ("slow_span_ns", "fault_events", "retry_spans")

    def __init__(
        self,
        slow_span_ns: int = DEFAULT_SLOW_SPAN_NS,
        fault_events: Iterable[str] = FAULT_EVENT_NAMES,
        retry_spans: Iterable[str] = RETRY_SPAN_NAMES,
    ) -> None:
        if slow_span_ns < 0:
            raise ValueError(
                f"slow-span threshold must be >= 0, got {slow_span_ns}"
            )
        self.slow_span_ns = slow_span_ns
        self.fault_events = frozenset(fault_events)
        self.retry_spans = frozenset(retry_spans)

    def evaluate(self, spans: Iterable["Span"]) -> Tuple[bool, str]:
        """``(keep, reason)`` for one completed trace."""
        saw_fault_event = False
        saw_retry = False
        saw_slow = False
        for span in spans:
            if span.status == "error":
                return True, KEEP_ERROR
            if not saw_fault_event and span.events:
                for event in span.events:
                    if event.name in self.fault_events:
                        saw_fault_event = True
                        break
            if not saw_retry and span.name in self.retry_spans:
                saw_retry = True
            if not saw_slow and span.end_ns is not None:
                if span.end_ns - span.start_ns >= self.slow_span_ns:
                    saw_slow = True
        if saw_fault_event:
            return True, KEEP_FAULT_EVENT
        if saw_retry:
            return True, KEEP_RETRY
        if saw_slow:
            return True, KEEP_SLOW
        return False, DROP

    def matches_span(self, span: "Span") -> Tuple[bool, str]:
        """Keep decision for one span in isolation (late-arrival path)."""
        return self.evaluate((span,))
