"""Dashboards: rows of panels with template variables and annotations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.pmag.query.engine import QueryEngine
from repro.pmv.panels import Panel, PanelData


@dataclass
class DashboardRow:
    """One horizontal row of panels."""

    title: str
    panels: List[Panel] = field(default_factory=list)


@dataclass
class Annotation:
    """A point-in-time marker (e.g. an alert) shown on the dashboard."""

    time_ns: int
    text: str
    severity: str = "info"


class Dashboard:
    """A named collection of panel rows.

    Template variables implement the paper's frontend process filter: the
    SGX dashboard queries contain ``$process``, and
    ``set_variable("process", "redis-server")`` narrows every panel.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise AnalysisError("dashboard needs a name")
        self.name = name
        self.rows: List[DashboardRow] = []
        self.variables: Dict[str, str] = {}
        self.annotations: List[Annotation] = []

    def add_row(self, title: str, panels: List[Panel]) -> DashboardRow:
        """Append a row of panels."""
        row = DashboardRow(title=title, panels=list(panels))
        self.rows.append(row)
        return row

    def set_variable(self, name: str, value: str) -> None:
        """Set a template variable (e.g. the process filter)."""
        self.variables[name] = value

    def annotate(self, time_ns: int, text: str, severity: str = "info") -> None:
        """Add an annotation (the alert-sink integration point)."""
        self.annotations.append(Annotation(time_ns=time_ns, text=text, severity=severity))

    def alert_sink(self):
        """An :class:`~repro.pman.alerts.AlertSink` that annotates this dashboard."""
        def sink(alert, event: str) -> None:
            time_ns = (
                alert.resolved_at_ns if event == "resolve" and alert.resolved_at_ns
                else alert.fired_at_ns
            )
            self.annotate(
                time_ns, f"{event}: {alert.message}", severity=alert.severity.value
            )
        return sink

    def panels(self) -> List[Panel]:
        """All panels in row order."""
        return [panel for row in self.rows for panel in row.panels]

    def snapshot(self, engine: QueryEngine, now_ns: int) -> List[PanelData]:
        """Snapshot every panel with the current variables."""
        return [
            panel.snapshot(engine, now_ns, self.variables)
            for panel in self.panels()
        ]
