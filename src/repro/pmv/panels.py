"""Panel types.

Each panel binds a title to a query and knows how to *snapshot* itself:
evaluate the query against the engine at a point in time and produce a
plain-data result the renderer can draw.  Queries may contain template
variables (``$process``) resolved by the owning dashboard before
evaluation, which implements the paper's process filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.pmag.model import Labels, Series
from repro.pmag.query.engine import QueryEngine
from repro.simkernel.clock import NANOS_PER_SEC

DEFAULT_GRAPH_WINDOW_NS = 5 * 60 * NANOS_PER_SEC
DEFAULT_GRAPH_STEP_NS = 15 * NANOS_PER_SEC


@dataclass
class PanelData:
    """Snapshot result: either series (graphs) or instant rows (others)."""

    title: str
    kind: str
    series: List[Series] = field(default_factory=list)
    rows: List[Tuple[Labels, float]] = field(default_factory=list)
    unit: str = ""


class Panel:
    """Base panel."""

    kind = "panel"

    def __init__(self, title: str, query: str, unit: str = "") -> None:
        if not title:
            raise AnalysisError("panel needs a title")
        self.title = title
        self.query = query
        self.unit = unit

    def resolved_query(self, variables: Dict[str, str]) -> str:
        """Substitute ``$name`` template variables into the query."""
        query = self.query
        for name, value in variables.items():
            query = query.replace(f"${name}", value)
        return query

    def snapshot(
        self, engine: QueryEngine, now_ns: int, variables: Optional[Dict[str, str]] = None
    ) -> PanelData:
        """Evaluate the panel; subclasses decide instant vs range."""
        raise NotImplementedError


class GraphPanel(Panel):
    """Time-series line graph over a trailing window."""

    kind = "graph"

    def __init__(
        self,
        title: str,
        query: str,
        unit: str = "",
        window_ns: int = DEFAULT_GRAPH_WINDOW_NS,
        step_ns: int = DEFAULT_GRAPH_STEP_NS,
    ) -> None:
        super().__init__(title, query, unit)
        self.window_ns = window_ns
        self.step_ns = step_ns

    def snapshot(self, engine, now_ns, variables=None):
        query = self.resolved_query(variables or {})
        series = engine.range_query(
            query, max(0, now_ns - self.window_ns), now_ns, self.step_ns
        )
        return PanelData(title=self.title, kind=self.kind, series=series, unit=self.unit)


class SingleStatPanel(Panel):
    """One big number (first series of the instant vector)."""

    kind = "singlestat"

    def snapshot(self, engine, now_ns, variables=None):
        query = self.resolved_query(variables or {})
        vector = engine.instant(query, now_ns)
        return PanelData(
            title=self.title, kind=self.kind, rows=vector[:1], unit=self.unit
        )


class GaugePanel(Panel):
    """A bounded gauge with min/max for the bar rendering."""

    kind = "gauge"

    def __init__(
        self, title: str, query: str, unit: str = "",
        minimum: float = 0.0, maximum: float = 100.0,
    ) -> None:
        super().__init__(title, query, unit)
        if maximum <= minimum:
            raise AnalysisError(f"gauge bounds inverted: [{minimum}, {maximum}]")
        self.minimum = minimum
        self.maximum = maximum

    def snapshot(self, engine, now_ns, variables=None):
        query = self.resolved_query(variables or {})
        vector = engine.instant(query, now_ns)
        return PanelData(
            title=self.title, kind=self.kind, rows=vector, unit=self.unit
        )


class TablePanel(Panel):
    """All series of an instant vector as labelled rows."""

    kind = "table"

    def __init__(self, title: str, query: str, unit: str = "",
                 sort_desc: bool = True, limit: int = 20) -> None:
        super().__init__(title, query, unit)
        self.sort_desc = sort_desc
        self.limit = limit

    def snapshot(self, engine, now_ns, variables=None):
        query = self.resolved_query(variables or {})
        vector = engine.instant(query, now_ns)
        rows = sorted(vector, key=lambda pair: pair[1], reverse=self.sort_desc)
        return PanelData(
            title=self.title, kind=self.kind, rows=rows[: self.limit], unit=self.unit
        )
