"""Federation timeline rendering: per-sender uplink lag bars.

The remote-write receiver appends ``teemon_federation_lag_seconds``
per sender (virtual now minus the newest applied sample timestamp);
this view folds those series into one bar per sender over a window::

    region-0
      |▁▁▁▁▁▂▁▁▁▁▁▁▅▇██████▇▅▂▁▁▁▁▁▁▁▁▁▁▁▁|  last 5.0s  max 41.0s

Each cell is the worst lag observed in its slice of the window, scaled
against the window's overall maximum (the ramp ``▁``–``█``); ``·``
marks slices with no measurement (the sender had not applied yet, or
the receiver was down).  A healthy uplink is a flat low ramp (lag ≈
one flush interval); a relay crash or partition reads as a growing
wedge that collapses when the spill drains.  Purely deterministic text
over deterministic input.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

CHAR_EMPTY = "·"   # ·
RAMP = "▁▂▃▄▅▆▇█"  # eighth blocks, lowest to full


def render_federation_timeline(
    lag_series: Sequence[Tuple[str, Sequence[Tuple[int, float]]]],
    start_ns: int, end_ns: int,
    width: int = 72,
) -> str:
    """Render one lag bar per sender over ``[start, end]``.

    ``lag_series`` maps each sender to its ``(time_ns, lag_seconds)``
    measurements (what the receiver's self-series hold).
    """
    if end_ns <= start_ns:
        return "(empty window)"
    bar_width = max(10, width - 4)
    span_ns = end_ns - start_ns
    in_window: List[Tuple[str, List[Tuple[int, float]]]] = []
    overall_max = 0.0
    for sender, samples in lag_series:
        kept = [
            (time_ns, lag_s)
            for time_ns, lag_s in samples
            if start_ns <= time_ns <= end_ns
        ]
        in_window.append((sender, kept))
        for _time_ns, lag_s in kept:
            overall_max = max(overall_max, lag_s)
    if not any(kept for _sender, kept in in_window):
        return "(no federation traffic)"
    out: List[str] = []
    for sender, kept in sorted(in_window):
        cells: List[float] = [-1.0] * bar_width
        for time_ns, lag_s in kept:
            cell = min(
                bar_width - 1, ((time_ns - start_ns) * bar_width) // span_ns
            )
            cells[cell] = max(cells[cell], lag_s)
        bar = "".join(
            CHAR_EMPTY if lag_s < 0.0 else RAMP[
                min(len(RAMP) - 1,
                    int(lag_s / overall_max * len(RAMP)) if overall_max else 0)
            ]
            for lag_s in cells
        )
        out.append(sender)
        if kept:
            last = kept[-1][1]
            worst = max(lag_s for _time_ns, lag_s in kept)
            out.append(
                f"  |{bar}|  last {last:.1f}s  max {worst:.1f}s"
            )
        else:
            out.append(f"  |{bar}|  no samples in window")
    legend = (
        f"legend: {CHAR_EMPTY} no measurement  {RAMP[0]}–{RAMP[-1]} lag "
        f"relative to window max"
    )
    return "\n".join(out + [legend])
