"""Anomaly timeline rendering: detector journal to per-kind bars.

The anomaly detector's journal is a flat list of
:class:`~repro.trace.detect.AnomalyEvent` records; this view folds them
into one bar per anomaly kind over a window::

    epc-thrash
      |····················█···············█··················|  2 hits  peak 4096.00

Characters: ``·`` quiet, ``█`` a flagged detection window.  Purely
deterministic text over deterministic input — the same journal renders
the same timeline, byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.trace.detect import AnomalyEvent

CHAR_QUIET = "·"   # ·
CHAR_HIT = "█"     # █


def render_anomaly_timeline(
    events: Sequence[AnomalyEvent], start_ns: int, end_ns: int,
    width: int = 72,
) -> str:
    """Render one timeline bar per anomaly kind over ``[start, end]``."""
    if end_ns <= start_ns:
        return "(empty window)"
    bar_width = max(10, width - 4)
    by_kind: Dict[str, List[Tuple[int, float]]] = {}
    for event in events:
        by_kind.setdefault(event.kind, []).append(
            (event.time_ns, event.value)
        )
    if not by_kind:
        return "(no anomalies detected)"
    span_ns = end_ns - start_ns
    out: List[str] = []
    for kind in sorted(by_kind):
        hits = by_kind[kind]
        cells = [CHAR_QUIET] * bar_width
        in_window = 0
        peak = 0.0
        for time_ns, value in hits:
            if time_ns < start_ns or time_ns > end_ns:
                continue
            in_window += 1
            peak = max(peak, value)
            cell = min(
                bar_width - 1, ((time_ns - start_ns) * bar_width) // span_ns
            )
            cells[cell] = CHAR_HIT
        out.append(kind)
        out.append(
            f"  |{''.join(cells)}|  {in_window} hits  peak {peak:.2f}"
        )
    legend = f"legend: {CHAR_QUIET} quiet  {CHAR_HIT} anomaly flagged"
    return "\n".join(out + [legend])
