"""Text rendering of stored traces: waterfalls and folded flame graphs.

The tracing counterpart of :mod:`repro.pmv.render`: given the spans of
one trace (from :class:`repro.trace.store.TraceStore`), draw the classic
distributed-tracing **waterfall** — one row per span, indented by depth,
with a bar showing where the span sits on the trace's virtual timeline —
and the **folded-stack** form (``root;child;leaf <ns>``) that flame-graph
tooling consumes.

All timing is virtual-clock time, so two same-seed runs render the exact
same text; the renderers are pure functions over span lists and never
touch the tracer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_FULL, _EMPTY = "█", "·"


def _format_ns(ns: int) -> str:
    """A compact human duration: ns, µs, ms or s."""
    if ns < 1_000:
        return f"{ns}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f}µs"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.2f}ms"
    return f"{ns / 1_000_000_000:.3f}s"


def _order_spans(spans: Sequence) -> List:
    """Spans in waterfall order: parents before children, by start time.

    Orphans (parent not in the trace, e.g. evicted or foreign context)
    render as additional roots rather than disappearing.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[str], List] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_ns, s.seq))
    ordered: List = []

    def walk(span, depth: int) -> None:
        ordered.append((span, depth))
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return ordered


def render_waterfall(spans: Sequence, width: int = 100) -> str:
    """Render one trace's spans as an indented waterfall.

    ``width`` is the total line width; the timeline bar gets whatever is
    left of it after the name/duration gutter.  Span events are drawn as
    ``·`` annotation lines under their span.
    """
    if not spans:
        return "(empty trace)"
    ordered = _order_spans(spans)
    trace_start = min(span.start_ns for span, _ in ordered)
    trace_end = max(span.end_ns for span, _ in ordered)
    total = max(1, trace_end - trace_start)
    gutter = max(
        len(f"{'  ' * depth}{span.name} ({_format_ns(span.duration_ns)})")
        for span, depth in ordered
    )
    bar_width = max(10, width - gutter - 4)
    lines = [
        f"trace {ordered[0][0].trace_id}  "
        f"({_format_ns(total)} over {len(spans)} spans)"
    ]
    for span, depth in ordered:
        label = f"{'  ' * depth}{span.name} ({_format_ns(span.duration_ns)})"
        lo = int((span.start_ns - trace_start) / total * bar_width)
        hi = int((span.end_ns - trace_start) / total * bar_width)
        hi = max(hi, lo + 1)  # zero-duration spans still get one cell
        bar = _EMPTY * lo + _FULL * (hi - lo) + _EMPTY * (bar_width - hi)
        marker = " !" if span.status == "error" else ""
        lines.append(f"{label:<{gutter}}  |{bar}|{marker}")
        for event in span.events:
            attrs = ""
            if event.attributes:
                attrs = " " + ",".join(
                    f"{k}={v!r}" for k, v in event.attributes
                )
            offset = _format_ns(event.time_ns - trace_start)
            lines.append(
                f"{'  ' * (depth + 1)}· @{offset} {event.name}{attrs}"
            )
    return "\n".join(lines)


def render_flamegraph(spans: Sequence) -> str:
    """Render spans as folded stacks: ``root;child;leaf self_ns``.

    Self time is the span's duration minus its children's (floored at
    zero: overlapping children cannot make a parent negative).  The
    output is line-sorted, so it is stable across runs and diffable.
    """
    if not spans:
        return ""
    by_id = {span.span_id: span for span in spans}
    child_time: Dict[str, int] = {}
    for span in spans:
        if span.parent_id in by_id:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0) + span.duration_ns
            )

    def stack_of(span) -> str:
        parts = [span.name]
        cursor = span
        seen = {span.span_id}
        while cursor.parent_id in by_id and cursor.parent_id not in seen:
            cursor = by_id[cursor.parent_id]
            seen.add(cursor.span_id)
            parts.append(cursor.name)
        return ";".join(reversed(parts))

    folded: Dict[str, int] = {}
    for span in spans:
        self_ns = max(0, span.duration_ns - child_time.get(span.span_id, 0))
        stack = stack_of(span)
        folded[stack] = folded.get(stack, 0) + self_ns
    return "\n".join(f"{stack} {ns}" for stack, ns in sorted(folded.items()))
