"""ASCII rendering of dashboards.

Graphs render as unicode block-height charts (one line of bars per
series), gauges as filled bars, tables with aligned columns.  The output
is what examples print and what humans inspect when running the
reproduction in a terminal.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional

from repro.pmag.model import METRIC_NAME_LABEL, Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmv.dashboard import Dashboard
from repro.pmv.panels import GaugePanel, PanelData

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 60) -> str:
    """Render values as a unicode sparkline resampled to ``width``.

    NaN values (e.g. from a ``rate()/rate()`` with a zero denominator)
    render as gaps rather than crashing the dashboard.
    """
    if not values:
        return "(no data)"
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return "(no data)"
    if len(values) > width:
        # Downsample by averaging fixed-size strides (NaN-aware).
        stride = len(values) / width
        resampled = []
        for index in range(width):
            lo = int(index * stride)
            hi = max(lo + 1, int((index + 1) * stride))
            chunk = [v for v in values[lo:hi] if not math.isnan(v)]
            resampled.append(
                sum(chunk) / len(chunk) if chunk else float("nan")
            )
        values = resampled
        finite = [v for v in values if not math.isnan(v)]
        if not finite:
            return "(no data)"
    low = min(finite)
    high = max(finite)
    span = high - low
    if span <= 0:
        return _BLOCKS[4] * len(values) + f"  (constant {high:g})"
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
            continue
        level = int((value - low) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[level])
    return "".join(chars)


def _labels_text(labels: Labels) -> str:
    pairs = [f"{k}={v}" for k, v in labels.items() if k != METRIC_NAME_LABEL]
    return "{" + ",".join(pairs) + "}" if pairs else "{}"


def render_panel(data: PanelData, width: int = 72) -> str:
    """Render one panel snapshot to text."""
    lines = [f"── {data.title} " + "─" * max(0, width - len(data.title) - 4)]
    if data.kind == "graph":
        if not data.series:
            lines.append("  (no data)")
        for series in data.series[:8]:
            values = [sample.value for sample in series.samples]
            finite = [v for v in values if not math.isnan(v)]
            peak = max(finite) if finite else 0.0
            lines.append(f"  {_labels_text(series.labels)}  peak={peak:g} {data.unit}")
            lines.append("  " + sparkline(values, width - 4))
    elif data.kind in ("singlestat", "gauge"):
        if not data.rows:
            lines.append("  (no data)")
        for labels, value in data.rows[:4]:
            lines.append(f"  {value:g} {data.unit}  {_labels_text(labels)}")
    elif data.kind == "table":
        if not data.rows:
            lines.append("  (no data)")
        else:
            label_width = max(len(_labels_text(l)) for l, _ in data.rows)
            for labels, value in data.rows:
                lines.append(
                    f"  {_labels_text(labels):<{label_width}}  {value:>14.6g} {data.unit}"
                )
    else:
        lines.append(f"  (unknown panel kind {data.kind!r})")
    return "\n".join(lines)


def render_gauge_bar(value: float, minimum: float, maximum: float, width: int = 40) -> str:
    """A filled horizontal bar for gauge panels."""
    span = maximum - minimum
    fraction = 0.0 if span <= 0 else max(0.0, min(1.0, (value - minimum) / span))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + f"] {value:g}"


def render_dashboard(
    dashboard: Dashboard, engine: QueryEngine, now_ns: int, width: int = 72
) -> str:
    """Render a whole dashboard at an instant."""
    header = f"═══ {dashboard.name} "
    lines = [header + "═" * max(0, width - len(header))]
    if dashboard.variables:
        variables = ", ".join(f"${k}={v}" for k, v in sorted(dashboard.variables.items()))
        lines.append(f"  filters: {variables}")
    for row in dashboard.rows:
        lines.append(f"▌ {row.title}")
        for panel in row.panels:
            data = panel.snapshot(engine, now_ns, dashboard.variables)
            lines.append(render_panel(data, width))
            if isinstance(panel, GaugePanel) and data.rows:
                for _, value in data.rows[:1]:
                    lines.append(
                        "  " + render_gauge_bar(value, panel.minimum, panel.maximum)
                    )
    if dashboard.annotations:
        lines.append("▌ annotations")
        for annotation in dashboard.annotations[-10:]:
            lines.append(
                f"  @{annotation.time_ns / 1e9:.0f}s [{annotation.severity}] {annotation.text}"
            )
    return "\n".join(lines)
