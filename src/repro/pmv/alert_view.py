"""Alert timeline rendering: journal lines to per-alert interval bars.

The alerting engine's journal is a flat list of canonical
``"{time_ns} alert-{kind} {labels} [detail]"`` lines; this view folds
them into one bar per alert instance over a window::

    TargetDown{instance=sgx-host,job=ebpf}
      |····░░░░████████████████····························|  fired 1x

Characters: ``·`` inactive, ``░`` pending, ``█`` firing.  Purely
deterministic text over deterministic input — the same journal renders
the same timeline, byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

CHAR_INACTIVE = "·"   # ·
CHAR_PENDING = "░"    # ░
CHAR_FIRING = "█"     # █

#: Journal kinds that affect an alert instance's state on the timeline.
_STATE_KINDS = {
    "alert-pending", "alert-firing", "alert-resolved",
    "alert-expired", "alert-restored",
}


def _parse_state_lines(
    lines: List[str],
) -> Dict[str, List[Tuple[int, str]]]:
    """``{labels: [(time_ns, kind), ...]}`` from raw journal lines."""
    transitions: Dict[str, List[Tuple[int, str]]] = {}
    for line in lines:
        pieces = line.split(" ", 3)
        if len(pieces) < 3:
            continue
        time_text, kind, subject = pieces[0], pieces[1], pieces[2]
        if kind not in _STATE_KINDS:
            continue
        try:
            time_ns = int(time_text)
        except ValueError:
            continue
        if kind == "alert-restored":
            # "alert-restored ... state=firing|pending" continues the
            # pre-crash state rather than starting a new episode.
            detail = pieces[3] if len(pieces) > 3 else ""
            kind = (
                "alert-firing" if "state=firing" in detail
                else "alert-pending"
            )
        transitions.setdefault(subject, []).append((time_ns, kind))
    return transitions


def render_alert_timeline(
    lines: List[str], start_ns: int, end_ns: int, width: int = 72
) -> str:
    """Render one timeline bar per alert instance over ``[start, end]``."""
    if end_ns <= start_ns:
        return "(empty window)"
    bar_width = max(10, width - 4)
    transitions = _parse_state_lines(lines)
    if not transitions:
        return "(no alert activity)"
    span_ns = end_ns - start_ns
    out: List[str] = []
    for subject in sorted(transitions):
        events = sorted(transitions[subject])
        cells = []
        fired = sum(1 for _, kind in events if kind == "alert-firing")
        for cell in range(bar_width):
            cell_ns = start_ns + (cell * span_ns) // bar_width
            state = CHAR_INACTIVE
            for time_ns, kind in events:
                if time_ns > cell_ns:
                    break
                if kind == "alert-pending":
                    state = CHAR_PENDING
                elif kind == "alert-firing":
                    state = CHAR_FIRING
                else:  # resolved / expired
                    state = CHAR_INACTIVE
            cells.append(state)
        out.append(subject)
        out.append(f"  |{''.join(cells)}|  fired {fired}x")
    legend = (
        f"legend: {CHAR_INACTIVE} inactive  {CHAR_PENDING} pending  "
        f"{CHAR_FIRING} firing"
    )
    return "\n".join(out + [legend])
