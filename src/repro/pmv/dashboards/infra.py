"""The infrastructure dashboard: node-exporter + eBPF-exporter metrics."""

from __future__ import annotations

from repro.pmv.dashboard import Dashboard
from repro.pmv.panels import GraphPanel, SingleStatPanel, TablePanel


def build_infra_dashboard() -> Dashboard:
    """Construct the infrastructure dashboard."""
    dashboard = Dashboard("TEEMon / Infrastructure")
    dashboard.add_row(
        "CPU and memory",
        [
            GraphPanel(
                "CPU busy (by cpu)",
                'sum by (cpu) (rate(node_cpu_seconds_total{mode="busy"}[1m]))',
                unit="cores",
            ),
            SingleStatPanel("Memory free", "node_memory_MemFree_bytes", unit="B"),
            SingleStatPanel("Page cache", "node_memory_Cached_bytes", unit="B"),
        ],
    )
    dashboard.add_row(
        "Kernel activity",
        [
            GraphPanel(
                "Context switches (/proc/stat)",
                "rate(node_context_switches_total[1m])", unit="/s",
            ),
            GraphPanel(
                "LLC miss ratio",
                "rate(ebpf_llc_misses_total[1m]) / rate(ebpf_llc_references_total[1m])",
                unit="",
            ),
            TablePanel(
                "Page-cache ops",
                "sum by (op) (rate(ebpf_page_cache_ops_total[1m]))", unit="/s",
            ),
        ],
    )
    dashboard.add_row(
        "Scrape health",
        [
            TablePanel("Targets up", "up", unit="", sort_desc=False),
        ],
    )
    return dashboard
