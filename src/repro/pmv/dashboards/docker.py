"""The Docker dashboard: cAdvisor per-container metrics."""

from __future__ import annotations

from repro.pmv.dashboard import Dashboard
from repro.pmv.panels import GraphPanel, SingleStatPanel, TablePanel


def build_docker_dashboard() -> Dashboard:
    """Construct the Docker dashboard."""
    dashboard = Dashboard("TEEMon / Docker")
    dashboard.add_row(
        "Containers",
        [
            SingleStatPanel("Running containers", "container_count", unit=""),
            TablePanel(
                "Container CPU time",
                "sum by (container) (container_cpu_usage_seconds_total)",
                unit="s",
            ),
            TablePanel(
                "Container memory",
                "sum by (container) (container_memory_usage_bytes)",
                unit="B",
            ),
        ],
    )
    dashboard.add_row(
        "Utilisation over time",
        [
            GraphPanel(
                "Container CPU rate",
                "sum by (container) (rate(container_cpu_usage_seconds_total[1m]))",
                unit="cores",
            ),
            GraphPanel(
                "Container threads",
                "sum by (container) (container_threads)",
                unit="threads",
            ),
        ],
    )
    return dashboard
