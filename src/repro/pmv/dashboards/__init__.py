"""The three canned TEEMon dashboards (§5.3).

"(i) an SGX dashboard showing EPC metrics and a selection of metrics
provided by eBPF programs, (ii) a Docker dashboard showing performance
data provided by cAdvisor from running Docker containers, and (iii) an
infrastructure dashboard showing metrics from both Node-Exporter and
eBPF-Exporter."
"""

from repro.pmv.dashboards.docker import build_docker_dashboard
from repro.pmv.dashboards.infra import build_infra_dashboard
from repro.pmv.dashboards.sgx import build_sgx_dashboard

__all__ = [
    "build_sgx_dashboard",
    "build_docker_dashboard",
    "build_infra_dashboard",
]
