"""The SGX dashboard.

Matches the paper's Figure 3 layout: EPC utilisation on the top row,
system-call distribution in the middle, page faults at the bottom — with a
``$process``-pid filter variable for the per-process panels.
"""

from __future__ import annotations

from repro.pmv.dashboard import Dashboard
from repro.pmv.panels import GaugePanel, GraphPanel, SingleStatPanel, TablePanel


def build_sgx_dashboard(epc_total_pages: int = 24_064) -> Dashboard:
    """Construct the SGX dashboard."""
    dashboard = Dashboard("TEEMon / SGX")
    dashboard.add_row(
        "Enclave Page Cache",
        [
            GaugePanel(
                "EPC free pages", "sgx_epc_free_pages", unit="pages",
                minimum=0.0, maximum=float(epc_total_pages),
            ),
            GraphPanel(
                "EPC evictions (EWB) per second",
                "rate(sgx_epc_pages_evicted_total[1m])", unit="pages/s",
            ),
            GraphPanel(
                "EPC reclaims (ELD) per second",
                "rate(sgx_epc_pages_reclaimed_total[1m])", unit="pages/s",
            ),
            SingleStatPanel("Active enclaves", "sgx_enclaves_active", unit="enclaves"),
        ],
    )
    dashboard.add_row(
        "System calls",
        [
            TablePanel(
                "Syscall rates by name",
                "sum by (name) (rate(ebpf_syscalls_total[1m]))", unit="/s",
            ),
            GraphPanel(
                "clock_gettime rate",
                'rate(ebpf_syscalls_total{name="clock_gettime"}[1m])', unit="/s",
            ),
            GraphPanel(
                "read+write rate",
                'sum (rate(ebpf_syscalls_total{name=~"read|write"}[1m]))', unit="/s",
            ),
        ],
    )
    dashboard.add_row(
        "Faults and switches",
        [
            GraphPanel(
                "User page faults by kind",
                "sum by (kind) (rate(ebpf_page_faults_user_total[1m]))", unit="/s",
            ),
            GraphPanel(
                "Host context switches",
                "rate(ebpf_context_switches_total[1m])", unit="/s",
            ),
            GraphPanel(
                "Process context switches",
                'rate(ebpf_context_switches_pid_total{pid="$process"}[1m])', unit="/s",
            ),
        ],
    )
    return dashboard
