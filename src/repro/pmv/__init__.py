"""Performance Metrics Visualization (the paper's PMV component).

A Grafana-like dashboard model: panels bound to query-engine expressions,
grouped into dashboards, rendered to text (graphs as unicode charts,
gauges as bars, tables aligned).  The paper's §5.3 describes three canned
dashboards — SGX, Docker, and infrastructure — which ship in
:mod:`repro.pmv.dashboards` and support the frontend's process filter
(a ``$process`` template variable substituted into panel queries).
"""

from repro.pmv.alert_view import render_alert_timeline
from repro.pmv.anomaly_view import render_anomaly_timeline
from repro.pmv.dashboard import Dashboard, DashboardRow
from repro.pmv.federation_view import render_federation_timeline
from repro.pmv.panels import (
    GaugePanel,
    GraphPanel,
    Panel,
    SingleStatPanel,
    TablePanel,
)
from repro.pmv.render import render_dashboard
from repro.pmv.trace_view import render_flamegraph, render_waterfall

__all__ = [
    "render_alert_timeline",
    "render_anomaly_timeline",
    "render_federation_timeline",
    "render_waterfall",
    "render_flamegraph",
    "Panel",
    "GraphPanel",
    "GaugePanel",
    "SingleStatPanel",
    "TablePanel",
    "Dashboard",
    "DashboardRow",
    "render_dashboard",
]
