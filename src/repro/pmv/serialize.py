"""Dashboard JSON export/import.

Grafana dashboards are shared as JSON documents; §4 notes that PMV lets
users "modify them or add new metrics according to their needs and
preferences".  This module round-trips dashboards through a JSON schema
close enough to Grafana's to be recognisable (``title``, ``panels`` with
``type``/``targets``, ``templating``), so users can version-control and
exchange dashboard definitions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import AnalysisError
from repro.pmv.dashboard import Dashboard
from repro.pmv.panels import (
    GaugePanel,
    GraphPanel,
    Panel,
    SingleStatPanel,
    TablePanel,
)

SCHEMA_VERSION = 1

_PANEL_TYPES = {
    "graph": GraphPanel,
    "singlestat": SingleStatPanel,
    "gauge": GaugePanel,
    "table": TablePanel,
}


def _panel_to_dict(panel: Panel) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "type": panel.kind,
        "title": panel.title,
        "targets": [{"expr": panel.query}],
        "unit": panel.unit,
    }
    if isinstance(panel, GraphPanel):
        entry["window_ns"] = panel.window_ns
        entry["step_ns"] = panel.step_ns
    elif isinstance(panel, GaugePanel):
        entry["min"] = panel.minimum
        entry["max"] = panel.maximum
    elif isinstance(panel, TablePanel):
        entry["sort_desc"] = panel.sort_desc
        entry["limit"] = panel.limit
    return entry


def _panel_from_dict(entry: Dict[str, Any]) -> Panel:
    kind = entry.get("type")
    if kind not in _PANEL_TYPES:
        raise AnalysisError(f"unknown panel type: {kind!r}")
    targets = entry.get("targets") or []
    if not targets or "expr" not in targets[0]:
        raise AnalysisError(f"panel {entry.get('title')!r} has no query target")
    title = entry.get("title", "")
    query = targets[0]["expr"]
    unit = entry.get("unit", "")
    if kind == "graph":
        return GraphPanel(
            title, query, unit=unit,
            window_ns=int(entry.get("window_ns", 300 * 10**9)),
            step_ns=int(entry.get("step_ns", 15 * 10**9)),
        )
    if kind == "gauge":
        return GaugePanel(
            title, query, unit=unit,
            minimum=float(entry.get("min", 0.0)),
            maximum=float(entry.get("max", 100.0)),
        )
    if kind == "table":
        return TablePanel(
            title, query, unit=unit,
            sort_desc=bool(entry.get("sort_desc", True)),
            limit=int(entry.get("limit", 20)),
        )
    return SingleStatPanel(title, query, unit=unit)


def dashboard_to_json(dashboard: Dashboard, indent: int = 2) -> str:
    """Export a dashboard as a JSON document."""
    document = {
        "schemaVersion": SCHEMA_VERSION,
        "title": dashboard.name,
        "templating": {
            "list": [
                {"name": name, "current": value}
                for name, value in sorted(dashboard.variables.items())
            ]
        },
        "rows": [
            {
                "title": row.title,
                "panels": [_panel_to_dict(panel) for panel in row.panels],
            }
            for row in dashboard.rows
        ],
    }
    return json.dumps(document, indent=indent)


def dashboard_from_json(text: str) -> Dashboard:
    """Import a dashboard from :func:`dashboard_to_json` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"bad dashboard JSON: {exc}") from None
    version = document.get("schemaVersion")
    if version != SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported dashboard schema version: {version!r}"
        )
    title = document.get("title")
    if not title:
        raise AnalysisError("dashboard JSON needs a title")
    dashboard = Dashboard(title)
    for variable in document.get("templating", {}).get("list", []):
        dashboard.set_variable(variable["name"], variable.get("current", ""))
    for row in document.get("rows", []):
        panels: List[Panel] = [
            _panel_from_dict(entry) for entry in row.get("panels", [])
        ]
        dashboard.add_row(row.get("title", ""), panels)
    return dashboard
