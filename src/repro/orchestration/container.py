"""Docker-like containers on one simulated host.

An image declares what to run (an entrypoint factory that builds the
in-simulation component) plus resource hints; the runtime instantiates
containers from images, tracks their lifecycle, and labels the underlying
processes with the container id so cAdvisor can attribute usage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import OrchestrationError
from repro.simkernel.kernel import Kernel

#: Entry point: builds the containerised component, returns an object with
#: an optional ``shutdown()``.
Entrypoint = Callable[[Kernel, str], Any]


@dataclass(frozen=True)
class ContainerImage:
    """An image: name, entrypoint factory, resource hints."""

    name: str
    entrypoint: Entrypoint
    memory_hint_bytes: int = 64 * 1024 * 1024
    labels: Dict[str, str] = field(default_factory=dict)


@dataclass
class Container:
    """A running (or exited) container."""

    container_id: str
    image: ContainerImage
    name: str
    component: Any = None
    running: bool = False

    def stop(self) -> None:
        """Stop the containerised component."""
        if not self.running:
            raise OrchestrationError(f"container {self.name} is not running")
        shutdown = getattr(self.component, "shutdown", None)
        if callable(shutdown):
            shutdown()
        self.running = False


class DockerRuntime:
    """Per-host container runtime."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._containers: Dict[str, Container] = {}
        self._ids = itertools.count(start=1)

    def run(self, image: ContainerImage, name: Optional[str] = None) -> Container:
        """Create and start a container from ``image``."""
        container_name = name or f"{image.name}-{next(self._ids)}"
        if container_name in self._containers:
            raise OrchestrationError(f"container name in use: {container_name}")
        container_id = f"{self.kernel.hostname}/{container_name}"
        component = image.entrypoint(self.kernel, container_id)
        container = Container(
            container_id=container_id,
            image=image,
            name=container_name,
            component=component,
            running=True,
        )
        self._containers[container_name] = container
        return container

    def stop(self, name: str) -> None:
        """Stop a running container."""
        container = self.get(name)
        container.stop()

    def remove(self, name: str) -> None:
        """Remove a stopped container."""
        container = self.get(name)
        if container.running:
            raise OrchestrationError(f"container {name} still running; stop it first")
        del self._containers[name]

    def get(self, name: str) -> Container:
        """Look up a container by name."""
        try:
            return self._containers[name]
        except KeyError:
            raise OrchestrationError(f"no such container: {name}") from None

    def containers(self, running_only: bool = False) -> List[Container]:
        """All containers on this host."""
        result = list(self._containers.values())
        if running_only:
            result = [c for c in result if c.running]
        return result
