"""A Kubernetes-like cluster model.

Covers the §5.4 feature set TEEMon relies on:

* **nodes** — one simulated host each, with labels and taints (a node
  advertising SGX carries the ``sgx=enabled`` label, produced here by
  actually checking whether the ``isgx`` module is loaded);
* **pods** — containers scheduled onto nodes, subject to node selectors
  and taint/toleration rules;
* **DaemonSets** — one pod per matching node, *including nodes added
  later* (the controller reconciles on node join);
* **annotations + service discovery** — pods annotated with
  ``prometheus.io/scrape`` surface scrape targets, which the PMAG's
  discovery callback consumes, adapting to topology changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OrchestrationError
from repro.orchestration.container import Container, ContainerImage, DockerRuntime
from repro.pmag.scrape import ScrapeTarget
from repro.simkernel.clock import VirtualClock
from repro.simkernel.kernel import Kernel

SGX_LABEL = "sgx"
SGX_ENABLED = "enabled"
SEV_LABEL = "sev"
SEV_ENABLED = "enabled"


@dataclass(frozen=True)
class Taint:
    """A node taint; pods need a matching toleration to schedule."""

    key: str
    value: str
    effect: str = "NoSchedule"


@dataclass
class PodSpec:
    """What to run and where it may run."""

    name: str
    image: ContainerImage
    node_selector: Dict[str, str] = field(default_factory=dict)
    tolerations: List[Taint] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)

    def tolerates(self, taint: Taint) -> bool:
        """Whether this pod tolerates a taint."""
        return any(
            t.key == taint.key and t.value == taint.value for t in self.tolerations
        )

    def matches_node(self, node: "Node") -> bool:
        """Selector + taint admission check."""
        for key, value in self.node_selector.items():
            if node.labels.get(key) != value:
                return False
        return all(self.tolerates(taint) for taint in node.taints)


@dataclass
class Pod:
    """A scheduled pod."""

    name: str
    spec: PodSpec
    node_name: str
    container: Container
    phase: str = "Running"

    def scrape_target(self) -> Optional[ScrapeTarget]:
        """Derive a scrape target from prometheus.io annotations."""
        annotations = self.spec.annotations
        if annotations.get("prometheus.io/scrape") != "true":
            return None
        component = self.container.component
        url = getattr(component, "url", None)
        if url is None:
            port = annotations.get("prometheus.io/port", "80")
            path = annotations.get("prometheus.io/path", "/metrics")
            url = f"http://{self.node_name}:{port}{path}"
        return ScrapeTarget(
            job=annotations.get("prometheus.io/job", self.spec.name),
            instance=self.node_name,
            url=url,
        )


class Node:
    """One cluster node: a simulated host plus metadata."""

    def __init__(self, kernel: Kernel, labels: Optional[Dict[str, str]] = None,
                 taints: Optional[List[Taint]] = None) -> None:
        self.kernel = kernel
        self.name = kernel.hostname
        self.labels: Dict[str, str] = dict(labels or {})
        self.taints: List[Taint] = list(taints or [])
        self.docker = DockerRuntime(kernel)
        # Nodes advertise TEE capabilities by inspecting their own
        # hardware, like the device-plugin / NFD flow in real clusters.
        if kernel.has_module("isgx"):
            self.labels.setdefault(SGX_LABEL, SGX_ENABLED)
        if kernel.has_module("ccp"):
            self.labels.setdefault(SEV_LABEL, SEV_ENABLED)


class DaemonSet:
    """One pod per matching node, reconciled as nodes join."""

    def __init__(self, spec: PodSpec) -> None:
        self.spec = spec
        self.pods_by_node: Dict[str, Pod] = {}

    def reconcile(self, cluster: "Cluster") -> List[Pod]:
        """Create pods on matching nodes that lack one; returns new pods."""
        created: List[Pod] = []
        for node in cluster.nodes():
            if node.name in self.pods_by_node:
                continue
            if not self.spec.matches_node(node):
                continue
            pod = cluster.schedule_pod(self.spec, node=node)
            self.pods_by_node[node.name] = pod
            created.append(pod)
        return created


class Deployment:
    """Replica-count controller: keeps N pods of a spec running.

    Reconciliation creates missing replicas (least-loaded placement) and
    deletes extras; pods lost to node failure are replaced on the next
    reconcile, which the cluster triggers automatically.
    """

    def __init__(self, spec: PodSpec, replicas: int) -> None:
        if replicas < 0:
            raise OrchestrationError("replicas must be non-negative")
        self.spec = spec
        self.replicas = replicas
        self.pods: List[Pod] = []

    def scale(self, replicas: int) -> None:
        """Change the desired replica count (reconciled by the cluster)."""
        if replicas < 0:
            raise OrchestrationError("replicas must be non-negative")
        self.replicas = replicas

    def reconcile(self, cluster: "Cluster") -> Tuple[List[Pod], List[Pod]]:
        """Converge to the desired count; returns (created, deleted)."""
        self.pods = [p for p in self.pods if p.phase == "Running"]
        created: List[Pod] = []
        deleted: List[Pod] = []
        while len(self.pods) < self.replicas:
            try:
                pod = cluster.schedule_pod(self.spec)
            except OrchestrationError:
                break  # no schedulable node: stay degraded, retry later
            self.pods.append(pod)
            created.append(pod)
        while len(self.pods) > self.replicas:
            victim = self.pods.pop()
            cluster.delete_pod(victim.name)
            deleted.append(victim)
        return created, deleted


class Cluster:
    """The cluster: nodes, pods, DaemonSets, Deployments, discovery."""

    #: Kubernetes supports up to 5000 nodes per cluster (§5.4 / [20]).
    MAX_NODES = 5000

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._nodes: Dict[str, Node] = {}
        self._pods: Dict[str, Pod] = {}
        self._daemonsets: List[DaemonSet] = []
        self._deployments: List[Deployment] = []
        self._pod_ids = itertools.count(start=1)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Join a node; DaemonSets reconcile onto it immediately."""
        if len(self._nodes) >= self.MAX_NODES:
            raise OrchestrationError(f"cluster is at its {self.MAX_NODES}-node limit")
        if node.name in self._nodes:
            raise OrchestrationError(f"node name in use: {node.name}")
        if node.kernel.clock is not self.clock:
            raise OrchestrationError(
                f"node {node.name} is not on the cluster clock; "
                "construct its Kernel with clock=cluster.clock"
            )
        self._nodes[node.name] = node
        for daemonset in self._daemonsets:
            daemonset.reconcile(self)
        self.reconcile_deployments()  # degraded Deployments recover
        return node

    def node(self, name: str) -> Node:
        """Look up a node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise OrchestrationError(f"no such node: {name}") from None

    def nodes(self) -> List[Node]:
        """All nodes in join order."""
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # Pods
    # ------------------------------------------------------------------
    def schedule_pod(self, spec: PodSpec, node: Optional[Node] = None) -> Pod:
        """Schedule one pod (explicitly placed or first matching node)."""
        if node is None:
            candidates = [n for n in self.nodes() if spec.matches_node(n)]
            if not candidates:
                raise OrchestrationError(
                    f"pod {spec.name}: no node matches selector "
                    f"{spec.node_selector} / taints"
                )
            # Least-loaded placement.
            node = min(candidates, key=lambda n: len(self.pods_on(n.name)))
        elif not spec.matches_node(node):
            raise OrchestrationError(
                f"pod {spec.name} cannot schedule on {node.name}: "
                "selector or taints do not match"
            )
        pod_name = f"{spec.name}-{next(self._pod_ids)}"
        container = node.docker.run(spec.image, name=pod_name)
        pod = Pod(name=pod_name, spec=spec, node_name=node.name, container=container)
        self._pods[pod_name] = pod
        return pod

    def delete_pod(self, name: str) -> None:
        """Delete a pod, stopping its container."""
        pod = self._pods.pop(name, None)
        if pod is None:
            raise OrchestrationError(f"no such pod: {name}")
        if pod.container.running:
            pod.container.stop()
        pod.phase = "Terminated"
        for daemonset in self._daemonsets:
            daemonset.pods_by_node.pop(pod.node_name, None)

    def pods(self) -> List[Pod]:
        """All live pods."""
        return list(self._pods.values())

    def pods_on(self, node_name: str) -> List[Pod]:
        """Pods scheduled on one node."""
        return [p for p in self._pods.values() if p.node_name == node_name]

    # ------------------------------------------------------------------
    # DaemonSets and discovery
    # ------------------------------------------------------------------
    def apply_daemonset(self, spec: PodSpec) -> DaemonSet:
        """Install a DaemonSet and reconcile it now."""
        daemonset = DaemonSet(spec)
        self._daemonsets.append(daemonset)
        daemonset.reconcile(self)
        return daemonset

    def apply_deployment(self, spec: PodSpec, replicas: int) -> Deployment:
        """Install a Deployment and reconcile it now."""
        deployment = Deployment(spec, replicas)
        self._deployments.append(deployment)
        deployment.reconcile(self)
        return deployment

    def deployments(self) -> List[Deployment]:
        """Installed Deployments."""
        return list(self._deployments)

    def reconcile_deployments(self) -> None:
        """Converge every Deployment (called after topology changes)."""
        for deployment in self._deployments:
            deployment.reconcile(self)

    def fail_node(self, name: str) -> List[Pod]:
        """A node dies: its pods terminate, controllers reconcile.

        Returns the pods that were lost.  DaemonSet pods are not
        rescheduled elsewhere (they are node-bound); Deployment replicas
        are recreated on surviving nodes.
        """
        node = self.node(name)
        lost: List[Pod] = []
        for pod in list(self.pods_on(name)):
            # The node is gone: containers die with it (no graceful stop).
            pod.container.running = False
            pod.phase = "Terminated"
            del self._pods[pod.name]
            lost.append(pod)
        del self._nodes[name]
        for daemonset in self._daemonsets:
            daemonset.pods_by_node.pop(name, None)
        self.reconcile_deployments()
        return lost

    def daemonsets(self) -> List[DaemonSet]:
        """Installed DaemonSets."""
        return list(self._daemonsets)

    def discover_scrape_targets(self) -> List[ScrapeTarget]:
        """Annotation-driven service discovery (the PMAG callback)."""
        targets: List[ScrapeTarget] = []
        for pod in self._pods.values():
            if pod.phase != "Running":
                continue
            target = pod.scrape_target()
            if target is not None:
                targets.append(target)
        return targets
