"""Node fleets: hundreds of scrape targets behind DaemonSet discovery.

The paper's §5.4 deployment is one exporter per node found via
annotation-driven discovery.  This module scales that shape to a
*fleet*: a :class:`NodeFleet` mass-produces cluster nodes (each a full
simulated host on the shared cluster clock) carrying one
:class:`FleetExporter` pod from a DaemonSet, with seeded churn
(:class:`FleetChurner` joins, drains and reboots nodes on the virtual
clock) and rolling exporter upgrades — every topology event journalled
in the run's one :class:`~repro.faults.plan.FaultPlan`.

Two properties make fleets chaos-testable:

* **pure expositions** — a fleet exporter's body is a pure function of
  (node name, virtual time, exporter version).  Two HA monitor replicas
  scraping the same node at the same instant read identical bytes, and
  same-seed reruns are byte-identical end to end;
* **explicit route lifecycle** — a failed node's ``/metrics`` route is
  withdrawn from the shared network (a dead host serves nothing), so
  the scraper sees hard failures, marks the target down, and — once
  discovery stops returning it — writes its staleness markers instead
  of keeping phantom series alive.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError, OrchestrationError
from repro.net.http import HttpNetwork
from repro.orchestration.container import ContainerImage
from repro.orchestration.kubernetes import Cluster, Node, PodSpec
from repro.simkernel.clock import NANOS_PER_SEC
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng

#: Port/path every fleet exporter serves on (its own node's hostname).
FLEET_EXPORTER_PORT = 9790
FLEET_EXPORTER_PATH = "/metrics"


class FleetExporter:
    """A per-node exporter whose exposition is a pure function of time.

    Serves the enclave-health signals the anomaly detector and the
    built-in alert rules watch (EPC evictions, AEXs, syscalls) plus a
    ``fleet_exporter_build_info`` version marker.  Counters are computed
    from elapsed virtual time and the node's name-derived phase — no
    internal mutable state — so any number of monitors scraping at any
    cadence observe one consistent timeline.
    """

    def __init__(self, kernel: Kernel, network: HttpNetwork,
                 version: str = "v1",
                 epc_evictions_per_s: float = 8.0,
                 aexs_per_s: float = 20.0,
                 syscalls_per_s: float = 400.0) -> None:
        self.kernel = kernel
        self.network = network
        self.version = version
        self.epc_evictions_per_s = epc_evictions_per_s
        self.aexs_per_s = aexs_per_s
        self.syscalls_per_s = syscalls_per_s
        #: Name-derived phase in [0, 1): staggers the utilization wave so
        #: the fleet is heterogeneous but reproducible.
        self.phase = (zlib.crc32(kernel.hostname.encode()) % 1000) / 1000.0
        #: Injected EPC-thrash windows: (start_ns, end_ns, pages_per_s).
        self.thrash_windows: List[Tuple[int, int, float]] = []
        self.scrapes_served = 0
        self._registered = False
        self._register()

    # ------------------------------------------------------------------
    def _register(self) -> None:
        self.network.register(
            self.kernel.hostname, FLEET_EXPORTER_PORT, FLEET_EXPORTER_PATH,
            self._serve,
        )
        self._registered = True

    def withdraw(self) -> None:
        """Remove the /metrics route (the host became unreachable)."""
        if not self._registered:
            return
        try:
            self.network.unregister(
                self.kernel.hostname, FLEET_EXPORTER_PORT, FLEET_EXPORTER_PATH
            )
        except NetworkError:
            pass  # already gone (network-level teardown raced us)
        self._registered = False

    def shutdown(self) -> None:
        """Container stop hook: a graceful stop also withdraws the route."""
        self.withdraw()

    @property
    def url(self) -> str:
        """The scrape URL (``Pod.scrape_target`` picks this up)."""
        return (
            f"http://{self.kernel.hostname}:{FLEET_EXPORTER_PORT}"
            f"{FLEET_EXPORTER_PATH}"
        )

    # ------------------------------------------------------------------
    def inject_epc_thrash(self, start_ns: int, end_ns: int,
                          pages_per_s: float) -> None:
        """Add an EPC-thrash burst window to this node's timeline."""
        if end_ns <= start_ns:
            raise OrchestrationError(
                f"empty thrash window: [{start_ns}, {end_ns})"
            )
        self.thrash_windows.append((start_ns, end_ns, pages_per_s))

    def _thrash_pages(self, now_ns: int) -> float:
        total = 0.0
        for start_ns, end_ns, pages_per_s in self.thrash_windows:
            overlap_ns = min(now_ns, end_ns) - start_ns
            if overlap_ns > 0:
                total += pages_per_s * (overlap_ns / NANOS_PER_SEC)
        return total

    def _serve(self) -> str:
        self.scrapes_served += 1
        t = self.kernel.clock.now_ns / NANOS_PER_SEC
        evicted = self.epc_evictions_per_s * t + self._thrash_pages(
            self.kernel.clock.now_ns
        )
        aexs = self.aexs_per_s * t
        syscalls = self.syscalls_per_s * t
        # Sawtooth utilization staggered by the name-derived phase.
        utilization = 0.30 + 0.40 * (((t / 60.0) + self.phase) % 1.0)
        return (
            f'fleet_exporter_build_info{{version="{self.version}"}} 1\n'
            f"sgx_epc_pages_evicted_total {evicted:.3f}\n"
            f"sgx_aexs_total {aexs:.3f}\n"
            f'ebpf_syscalls_total{{name="read"}} {syscalls:.3f}\n'
            f"node_cpu_utilization {utilization:.6f}\n"
        )


class NodeFleet:
    """Mass-produces exporter-carrying nodes behind DaemonSet discovery.

    Every topology change goes through here so the three bookkeeping
    planes stay consistent: the cluster (nodes/pods), the network
    (exporter routes), and the fault journal (``FLEET`` events).
    """

    def __init__(self, cluster: Cluster, network: HttpNetwork,
                 rng: DeterministicRng, plan=None,
                 job: str = "sgx", node_prefix: str = "node",
                 version: str = "v1") -> None:
        self.cluster = cluster
        self.network = network
        self.plan = plan
        self.job = job
        self.node_prefix = node_prefix
        #: Exporter version new pods are built with (rolling upgrades
        #: bump this, then recreate pods batch by batch).
        self.version = version
        self._rng = rng.fork("fleet")
        self._exporters: Dict[str, FleetExporter] = {}
        self._next_index = 0
        self._rebooting: Dict[str, object] = {}
        self.joins = 0
        self.leaves = 0
        self.reboots = 0
        self.upgraded = 0
        self._daemonset = cluster.apply_daemonset(PodSpec(
            name="fleet-exporter",
            image=ContainerImage(
                name="fleet-exporter", entrypoint=self._entrypoint
            ),
            annotations={
                "prometheus.io/scrape": "true",
                "prometheus.io/job": job,
            },
        ))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _entrypoint(self, kernel: Kernel, container_id: str) -> FleetExporter:
        exporter = FleetExporter(kernel, self.network, version=self.version)
        self._exporters[kernel.hostname] = exporter
        return exporter

    def _record(self, kind: str, subject: str) -> None:
        if self.plan is not None:
            self.plan.record(kind, subject, method="FLEET")

    def _join(self, name: str, kind: str) -> str:
        # The node's kernel seed derives from its name alone, so a
        # rebooted node resumes the exact host it was before.
        seed = self._rng.fork(name).getrandbits(32)
        kernel = Kernel(seed=seed, hostname=name, clock=self.cluster.clock)
        self.cluster.add_node(Node(kernel))
        self.joins += 1
        self._record(kind, name)
        return name

    def add_nodes(self, count: int) -> List[str]:
        """Join ``count`` fresh nodes; the DaemonSet pods them."""
        names = []
        for _ in range(count):
            name = f"{self.node_prefix}-{self._next_index}"
            self._next_index += 1
            names.append(self._join(name, "node-join"))
        return names

    def remove_node(self, name: str, kind: str = "node-leave") -> None:
        """A node departs abruptly: pods die, its route is withdrawn."""
        self.cluster.fail_node(name)
        exporter = self._exporters.pop(name, None)
        if exporter is not None:
            exporter.withdraw()
        self.leaves += 1
        self._record(kind, name)

    def reboot_node(self, name: str, downtime_s: float = 10.0) -> None:
        """Take a node down and rejoin it (same name, same derived seed)
        after ``downtime_s`` of virtual time."""
        if name in self._rebooting:
            raise OrchestrationError(f"node already rebooting: {name}")
        self.remove_node(name, kind="node-reboot-down")
        self.reboots += 1

        def rejoin() -> None:
            self._rebooting.pop(name, None)
            self._join(name, "node-reboot-up")

        self._rebooting[name] = self.cluster.clock.call_later(
            int(downtime_s * NANOS_PER_SEC), rejoin
        )

    def node_names(self) -> List[str]:
        """Live node names, sorted (the churner's victim pool)."""
        return sorted(
            node.name for node in self.cluster.nodes()
            if node.name.startswith(f"{self.node_prefix}-")
        )

    def exporter(self, name: str) -> FleetExporter:
        """The live exporter on one node."""
        try:
            return self._exporters[name]
        except KeyError:
            raise OrchestrationError(
                f"no live exporter on node: {name}"
            ) from None

    def discovery(self):
        """The scrape-discovery callback (pass to ``add_discovery``)."""
        return self.cluster.discover_scrape_targets

    # ------------------------------------------------------------------
    # Rolling upgrades
    # ------------------------------------------------------------------
    def rolling_upgrade(self, version: str, batch_size: int = 10,
                        interval_s: float = 5.0) -> int:
        """Upgrade the fleet's exporters batch by batch on the clock.

        Bumps :attr:`version` immediately (new joins get it), then every
        ``interval_s`` recreates ``batch_size`` pods: graceful delete
        (stopping a container withdraws its route), DaemonSet reconcile
        (the fresh pod's exporter is built at the new version).  Returns
        the number of scheduled batches; nodes that depart mid-upgrade
        are skipped when their batch comes due.
        """
        if batch_size < 1:
            raise OrchestrationError(f"batch_size must be >= 1: {batch_size}")
        if interval_s <= 0:
            raise OrchestrationError(
                f"interval_s must be positive: {interval_s}"
            )
        self.version = version
        pending = self.node_names()
        batches = [
            pending[start:start + batch_size]
            for start in range(0, len(pending), batch_size)
        ]
        clock = self.cluster.clock
        interval_ns = int(interval_s * NANOS_PER_SEC)

        def upgrade_batch(index: int) -> None:
            for name in batches[index]:
                pod = self._daemonset.pods_by_node.get(name)
                if pod is None:
                    continue  # node departed mid-upgrade
                self.cluster.delete_pod(pod.name)
                self.upgraded += 1
                self._record("upgrade", name)
            self._daemonset.reconcile(self.cluster)
            if index + 1 < len(batches):
                clock.call_later(
                    interval_ns, lambda: upgrade_batch(index + 1)
                )

        if batches:
            clock.call_later(interval_ns, lambda: upgrade_batch(0))
        return len(batches)

    def versions(self) -> Dict[str, str]:
        """Exporter version per live node."""
        return {
            name: exporter.version
            for name, exporter in sorted(self._exporters.items())
        }

    def stats(self) -> Dict[str, int]:
        """Fleet lifecycle counters."""
        return {
            "nodes": len(self.node_names()),
            "joins": self.joins,
            "leaves": self.leaves,
            "reboots": self.reboots,
            "upgraded": self.upgraded,
            "rebooting": len(self._rebooting),
        }


class FleetChurner:
    """Seeded node churn on the virtual clock.

    Every tick draws one action — join a fresh node, drain a random one,
    or reboot a random one — from the fleet rng's ``churn`` substream,
    so the whole churn history is a pure function of the seed.  The
    fleet size is clamped to ``[min_nodes, max_nodes]``: a drain at the
    floor (or a join at the ceiling) becomes the opposite action, which
    keeps the event *count* stable across parameter tweaks.
    """

    def __init__(self, fleet: NodeFleet, interval_s: float = 15.0,
                 join_weight: float = 1.0, leave_weight: float = 1.0,
                 reboot_weight: float = 1.0,
                 reboot_downtime_s: float = 10.0,
                 min_nodes: int = 1, max_nodes: int = 1000) -> None:
        if interval_s <= 0:
            raise OrchestrationError(
                f"interval_s must be positive: {interval_s}"
            )
        if min_nodes < 0 or max_nodes < min_nodes:
            raise OrchestrationError(
                f"bad fleet bounds: [{min_nodes}, {max_nodes}]"
            )
        total = join_weight + leave_weight + reboot_weight
        if total <= 0:
            raise OrchestrationError("churn weights must sum positive")
        self.fleet = fleet
        self.interval_ns = int(interval_s * NANOS_PER_SEC)
        self.weights = (join_weight, leave_weight, reboot_weight)
        self.reboot_downtime_s = reboot_downtime_s
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self._rng = fleet._rng.fork("churn")
        self._timer = None
        self._running = False
        self.events = 0

    def start(self) -> None:
        """Begin churning."""
        if self._running:
            raise OrchestrationError("churner already started")
        self._running = True
        self._timer = self.fleet.cluster.clock.call_later(
            self.interval_ns, self._tick
        )

    def stop(self) -> None:
        """Stop churning (pending reboots still rejoin)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _pick_action(self, population: int) -> str:
        join_w, leave_w, reboot_w = self.weights
        draw = self._rng.random() * (join_w + leave_w + reboot_w)
        if draw < join_w:
            action = "join"
        elif draw < join_w + leave_w:
            action = "leave"
        else:
            action = "reboot"
        # Clamp to the configured fleet-size band.
        if action == "join" and population >= self.max_nodes:
            action = "leave"
        if action in ("leave", "reboot") and population <= self.min_nodes:
            action = "join"
        return action

    def _tick(self) -> None:
        if not self._running:
            return
        fleet = self.fleet
        live = [
            name for name in fleet.node_names()
            if name not in fleet._rebooting
        ]
        action = self._pick_action(len(live))
        if action == "join" or not live:
            fleet.add_nodes(1)
        elif action == "leave":
            fleet.remove_node(self._rng.choice(live))
        else:
            fleet.reboot_node(
                self._rng.choice(live), downtime_s=self.reboot_downtime_s
            )
        self.events += 1
        self._timer = fleet.cluster.clock.call_later(
            self.interval_ns, self._tick
        )
