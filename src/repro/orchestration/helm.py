"""Helm-like chart model and the TEEMon chart.

"We created a chart to install TEEMon in large-scale infrastructures
managed by Kubernetes." (§5.4)  A :class:`HelmChart` is a named set of
resource factories parameterised by values; :func:`install_teemon_chart`
is the TEEMon chart itself: per-node exporter DaemonSets (the SGX exporter
restricted to SGX-labelled nodes), a Prometheus-equivalent aggregation pod
wired to annotation-based service discovery, Grafana-equivalent
dashboards, and the PMAN analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import OrchestrationError
from repro.exporters import (
    CadvisorExporter,
    EbpfExporter,
    NodeExporter,
    TeeMetricsExporter,
)
from repro.net.http import HttpNetwork
from repro.orchestration.container import ContainerImage
from repro.orchestration.kubernetes import (
    Cluster,
    PodSpec,
    SEV_ENABLED,
    SEV_LABEL,
    SGX_ENABLED,
    SGX_LABEL,
    Taint,
)
from repro.pmag.query.engine import QueryEngine
from repro.pmag.scrape import ScrapeManager
from repro.pmag.tsdb import Tsdb
from repro.pman.analyzer import PmanAnalyzer
from repro.pmv.dashboards import (
    build_docker_dashboard,
    build_infra_dashboard,
    build_sgx_dashboard,
)
from repro.simkernel.clock import NANOS_PER_SEC


@dataclass
class HelmChart:
    """A named, versioned set of values + an installer."""

    name: str
    version: str
    default_values: Dict[str, Any]
    installer: Callable[["Cluster", HttpNetwork, Dict[str, Any]], Any]

    def install(
        self,
        cluster: Cluster,
        network: HttpNetwork,
        values: Optional[Dict[str, Any]] = None,
    ):
        """Render defaults + overrides and run the installer."""
        merged = dict(self.default_values)
        if values:
            unknown = set(values) - set(self.default_values)
            if unknown:
                raise OrchestrationError(
                    f"chart {self.name}: unknown values {sorted(unknown)}"
                )
            merged.update(values)
        return self.installer(cluster, network, merged)


@dataclass
class TeemonRelease:
    """A deployed TEEMon instance on a cluster."""

    cluster: Cluster
    network: HttpNetwork
    tsdb: Tsdb
    scrape_manager: ScrapeManager
    engine: QueryEngine
    analyzer: PmanAnalyzer
    dashboards: Dict[str, Any] = field(default_factory=dict)

    def uninstall(self) -> None:
        """Stop scraping and analysis; delete TEEMon pods."""
        self.scrape_manager.stop()
        self.analyzer.stop()
        for pod in list(self.cluster.pods()):
            if pod.spec.name.startswith("teemon-"):
                self.cluster.delete_pod(pod.name)


def _exporter_image(name: str, factory) -> ContainerImage:
    return ContainerImage(
        name=name,
        entrypoint=factory,
        labels={"app.kubernetes.io/part-of": "teemon"},
    )


def _install_teemon(cluster: Cluster, network: HttpNetwork,
                    values: Dict[str, Any]) -> TeemonRelease:
    def node_exporter_entry(kernel, container_id):
        exporter = NodeExporter(kernel, container_id=container_id)
        exporter.expose(network)
        return exporter

    def ebpf_exporter_entry(kernel, container_id):
        exporter = EbpfExporter(kernel, container_id=container_id)
        exporter.expose(network)
        return exporter

    def cadvisor_entry(kernel, container_id):
        exporter = CadvisorExporter(kernel, container_id=container_id)
        exporter.expose(network)
        return exporter

    def sgx_exporter_entry(kernel, container_id):
        exporter = TeeMetricsExporter(kernel, container_id=container_id)
        exporter.expose(network)
        return exporter

    scrape_annotations = {"prometheus.io/scrape": "true"}

    daemonset_specs = [
        PodSpec(
            name="teemon-node-exporter",
            image=_exporter_image("node-exporter", node_exporter_entry),
            annotations={**scrape_annotations, "prometheus.io/job": "node"},
        ),
        PodSpec(
            name="teemon-ebpf-exporter",
            image=_exporter_image("ebpf-exporter", ebpf_exporter_entry),
            annotations={**scrape_annotations, "prometheus.io/job": "ebpf"},
        ),
    ]
    if values["cadvisor.enabled"]:
        daemonset_specs.append(
            PodSpec(
                name="teemon-cadvisor",
                image=_exporter_image("cadvisor", cadvisor_entry),
                annotations={**scrape_annotations, "prometheus.io/job": "cadvisor"},
            )
        )
    # TEE exporters only land on capable nodes (labels + taints).
    daemonset_specs.append(
        PodSpec(
            name="teemon-sgx-exporter",
            image=_exporter_image("sgx-exporter", sgx_exporter_entry),
            node_selector={SGX_LABEL: SGX_ENABLED},
            tolerations=[Taint(SGX_LABEL, SGX_ENABLED)],
            annotations={**scrape_annotations, "prometheus.io/job": "sgx"},
        )
    )
    if values["sev.enabled"]:
        def sev_exporter_entry(kernel, container_id):
            from repro.sev.exporter import SevMetricsExporter

            exporter = SevMetricsExporter(kernel, container_id=container_id)
            exporter.expose(network)
            return exporter

        daemonset_specs.append(
            PodSpec(
                name="teemon-sev-exporter",
                image=_exporter_image("sev-exporter", sev_exporter_entry),
                node_selector={SEV_LABEL: SEV_ENABLED},
                tolerations=[Taint(SEV_LABEL, SEV_ENABLED)],
                annotations={**scrape_annotations, "prometheus.io/job": "sev"},
            )
        )
    for spec in daemonset_specs:
        cluster.apply_daemonset(spec)

    # Aggregation: Prometheus-equivalent, one instance, discovery-driven.
    tsdb = Tsdb(retention_ns=int(values["prometheus.retention_hours"] * 3600 * NANOS_PER_SEC))
    scrape_manager = ScrapeManager(
        cluster.clock, network, tsdb,
        interval_ns=int(values["prometheus.scrape_interval_s"] * NANOS_PER_SEC),
    )
    scrape_manager.add_discovery(cluster.discover_scrape_targets)
    scrape_manager.start()

    engine = QueryEngine(tsdb)
    analyzer = PmanAnalyzer(cluster.clock, engine)
    analyzer.start()

    dashboards = {
        "sgx": build_sgx_dashboard(),
        "docker": build_docker_dashboard(),
        "infra": build_infra_dashboard(),
    }
    for dashboard in dashboards.values():
        analyzer.alerts.add_sink(dashboard.alert_sink())

    return TeemonRelease(
        cluster=cluster,
        network=network,
        tsdb=tsdb,
        scrape_manager=scrape_manager,
        engine=engine,
        analyzer=analyzer,
        dashboards=dashboards,
    )


TEEMON_CHART = HelmChart(
    name="teemon",
    version="1.0.0",
    default_values={
        "prometheus.scrape_interval_s": 5.0,
        "prometheus.retention_hours": 24.0,
        "cadvisor.enabled": True,
        "sev.enabled": True,
    },
    installer=_install_teemon,
)


def install_teemon_chart(
    cluster: Cluster,
    network: HttpNetwork,
    values: Optional[Dict[str, Any]] = None,
) -> TeemonRelease:
    """helm install teemon ./teemon-chart"""
    return TEEMON_CHART.install(cluster, network, values)
