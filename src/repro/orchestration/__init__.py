"""Container and cluster orchestration models.

§5.4 of the paper: "TEEMon components are encapsulated in individual
Docker containers ... they can also be deployed ... by an orchestrator,
such as Kubernetes ... each of TEEMon's metrics exporters is deployed
(using Helm) in a daemon-like fashion (as DaemonSet resource) ...
Kubernetes offers service discovery and resource annotations that TEEMon
uses to connect the performance metric aggregation component ... TEE-
related metrics exporters can be deployed selectively on nodes that
support TEEs" (via taints/labels).

This package models all of that:

* :mod:`repro.orchestration.container` — images and a per-host container
  runtime;
* :mod:`repro.orchestration.kubernetes` — a cluster of simulated hosts,
  pods, node labels/taints and tolerations, DaemonSets, and
  annotation-driven service discovery;
* :mod:`repro.orchestration.helm` — a chart model and the TEEMon chart
  that installs the full monitoring stack onto a cluster;
* :mod:`repro.orchestration.fleet` — node fleets at scale: DaemonSet
  exporters across hundreds of nodes with seeded churn and rolling
  upgrades.
"""

from repro.orchestration.container import Container, ContainerImage, DockerRuntime
from repro.orchestration.fleet import FleetChurner, FleetExporter, NodeFleet
from repro.orchestration.helm import HelmChart, install_teemon_chart
from repro.orchestration.kubernetes import (
    Cluster,
    DaemonSet,
    Deployment,
    Node,
    Pod,
    PodSpec,
    Taint,
)

__all__ = [
    "ContainerImage",
    "Container",
    "DockerRuntime",
    "Cluster",
    "Node",
    "Pod",
    "PodSpec",
    "Taint",
    "DaemonSet",
    "Deployment",
    "FleetChurner",
    "FleetExporter",
    "NodeFleet",
    "HelmChart",
    "install_teemon_chart",
]
