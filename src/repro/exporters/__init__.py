"""Performance Metrics Exporters (the paper's PME component).

Four exporters run per host, each in its own container in the paper's
deployment:

* :class:`~repro.exporters.tme.TeeMetricsExporter` — the SGX exporter:
  reads the instrumented driver's module parameters from
  ``/sys/module/isgx/parameters`` and serves them in OpenMetrics format
  over a Flask-like HTTP endpoint (§5.1);
* :class:`~repro.exporters.ebpf_exporter.EbpfExporter` — loads eBPF
  counting programs onto the Table-2 hooks (syscalls, context switches,
  page faults, cache statistics) and exports their maps;
* :class:`~repro.exporters.node_exporter.NodeExporter` — machine metrics
  from ``/proc`` (CPU, memory, filesystem, network);
* :class:`~repro.exporters.cadvisor.CadvisorExporter` — per-container
  utilisation metrics.

All exporters share :class:`~repro.exporters.base.Exporter`: a collector
registry, an HTTP endpoint, and a modelled resource footprint (CPU share
and memory) that the Figure-4 experiment measures.
"""

from repro.exporters.base import Exporter, ExporterFootprint
from repro.exporters.cadvisor import CadvisorExporter
from repro.exporters.ebpf_exporter import EbpfExporter, EbpfExporterConfig
from repro.exporters.node_exporter import NodeExporter
from repro.exporters.teemon_self import TeemonSelfExporter
from repro.exporters.tme import TeeMetricsExporter

__all__ = [
    "Exporter",
    "ExporterFootprint",
    "TeeMetricsExporter",
    "EbpfExporter",
    "EbpfExporterConfig",
    "NodeExporter",
    "CadvisorExporter",
    "TeemonSelfExporter",
]
