"""Shared exporter machinery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.http import HttpEndpoint, HttpNetwork
from repro.openmetrics.encoder import encode_registry
from repro.openmetrics.registry import CollectorRegistry
from repro.simkernel.kernel import Kernel

MIB = 1024 * 1024


@dataclass(frozen=True)
class ExporterFootprint:
    """Modelled resource consumption of one monitoring component.

    ``cpu_fraction`` is the average share of one CPU the component uses
    while active; ``memory_bytes`` its resident set.  Values are calibrated
    per component to the paper's Figure 4 and are *charged to the host*
    when the exporter serves scrapes, so monitoring overhead is a real
    effect in the workload experiments, not an assumed constant.
    """

    cpu_fraction: float
    memory_bytes: int


class Exporter:
    """Base exporter: registry + HTTP endpoint + host process."""

    #: Default modelled footprint; subclasses override.
    FOOTPRINT = ExporterFootprint(cpu_fraction=0.005, memory_bytes=100 * MIB)
    #: Default port; subclasses override (node-exporter convention: 9100+).
    PORT = 9099
    #: Metrics path.
    PATH = "/metrics"
    #: Process/command name on the host.
    PROCESS_NAME = "exporter"

    def __init__(self, kernel: Kernel, container_id: Optional[str] = None) -> None:
        self.kernel = kernel
        self.registry = CollectorRegistry()
        self.process = kernel.spawn_process(
            self.PROCESS_NAME, container_id=container_id
        )
        self.process.rss_bytes = self.FOOTPRINT.memory_bytes
        self._thread = next(iter(self.process.threads.values()))
        self._endpoint: Optional[HttpEndpoint] = None
        self._last_serve_ns = kernel.clock.now_ns
        self.scrapes_served = 0

    @property
    def url(self) -> str:
        """Endpoint URL once exposed."""
        if self._endpoint is None:
            raise RuntimeError(f"{self.PROCESS_NAME} endpoint not exposed yet")
        return self._endpoint.url

    def expose(self, network: HttpNetwork) -> HttpEndpoint:
        """Publish the /metrics endpoint on the simulated network."""
        self._endpoint = network.register(
            self.kernel.hostname, self.PORT, self.PATH, self._serve
        )
        return self._endpoint

    def footprint(self) -> ExporterFootprint:
        """The exporter's modelled footprint."""
        return self.FOOTPRINT

    def _serve(self) -> str:
        """Render the exposition, charging CPU time since the last serve."""
        now = self.kernel.clock.now_ns
        elapsed = now - self._last_serve_ns
        if elapsed > 0:
            busy_ns = int(elapsed * self.FOOTPRINT.cpu_fraction)
            self.kernel.scheduler.account_cpu_time(self._thread, busy_ns)
        self._last_serve_ns = now
        self.scrapes_served += 1
        return encode_registry(self.registry)

    def shutdown(self) -> None:
        """Stop the exporter's host process."""
        if not self.process.exited:
            self.kernel.exit_process(self.process)
