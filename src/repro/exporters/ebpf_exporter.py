"""The eBPF exporter (System Metrics Exporter core).

Modelled on Cloudflare's ebpf_exporter (§5.1): a configuration declares
which program groups to load; each group is real bytecode from
:mod:`repro.ebpf.stdlib` attached to the Table-2 hooks, counting into BPF
maps; at scrape time the exporter reads the maps and renders OpenMetrics
families.

Program groups and their metrics:

* ``syscalls`` — ``raw_syscalls:sys_enter`` → ``ebpf_syscalls_total{name}``
* ``context_switches`` — perf event + ``sched:sched_switches`` →
  ``ebpf_context_switches_total`` (host-wide) and
  ``ebpf_context_switches_pid_total{pid}``
* ``page_faults`` — exception tracepoints + perf event →
  ``ebpf_page_faults_user_total{kind}``, ``ebpf_page_faults_user_pid_total{pid}``,
  ``ebpf_page_faults_kernel_total``, ``ebpf_page_faults_total``
* ``cache`` — HW perf events + page-cache kprobes →
  ``ebpf_llc_references_total``, ``ebpf_llc_misses_total``,
  ``ebpf_llc_misses_pid_total{pid}``, ``ebpf_page_cache_ops_total{op}``

The paper notes overhead knobs: a PID-filter macro and per-group disable
flags; both are in :class:`EbpfExporterConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ebpf.attach import EbpfRuntime
from repro.ebpf.maps import HashMap
from repro.ebpf.stdlib import (
    counter_program,
    log2_histogram_program,
    pid_attributed_counter_program,
)
from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.simkernel.kernel import Kernel
from repro.simkernel.memory import FAULT_KIND_BY_CODE
from repro.simkernel.syscalls import SYSCALL_NAMES

PAGE_CACHE_HOOKS = (
    "add_to_page_cache_lru",
    "mark_page_accessed",
    "account_page_dirtied",
    "mark_buffer_dirty",
)


@dataclass(frozen=True)
class EbpfExporterConfig:
    """Which program groups to load, and the PID-filter macro."""

    syscalls: bool = True
    context_switches: bool = True
    page_faults: bool = True
    cache: bool = True
    #: When set, syscall and context-switch programs only count this PID
    #: (the paper's overhead-reduction macro, §6.3).
    pid_filter: Optional[int] = None

    def enabled_groups(self) -> List[str]:
        """Names of the enabled program groups."""
        names = []
        for group in ("syscalls", "context_switches", "page_faults", "cache"):
            if getattr(self, group):
                names.append(group)
        return names

    @staticmethod
    def parse(text: str) -> "EbpfExporterConfig":
        """Parse the exporter's configuration-file format.

        The paper: "we provide a macro for some of the programs which can
        be set in the eBPF configuration file" (§6.3).  The format is a
        flat key/value file::

            # teemon ebpf-exporter configuration
            programs.syscalls = on
            programs.context_switches = on
            programs.page_faults = on
            programs.cache = off
            filter.pid = 4242
        """
        values: Dict[str, str] = {}
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#")[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"line {line_no}: expected key = value")
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()

        def flag(key: str, default: bool) -> bool:
            text_value = values.get(key)
            if text_value is None:
                return default
            if text_value.lower() in ("on", "true", "yes", "1"):
                return True
            if text_value.lower() in ("off", "false", "no", "0"):
                return False
            raise ValueError(f"{key}: expected on/off, got {text_value!r}")

        pid_filter: Optional[int] = None
        if "filter.pid" in values:
            try:
                pid_filter = int(values["filter.pid"])
            except ValueError:
                raise ValueError(
                    f"filter.pid: expected an integer, got {values['filter.pid']!r}"
                ) from None
        return EbpfExporterConfig(
            syscalls=flag("programs.syscalls", True),
            context_switches=flag("programs.context_switches", True),
            page_faults=flag("programs.page_faults", True),
            cache=flag("programs.cache", True),
            pid_filter=pid_filter,
        )

    def render(self) -> str:
        """Serialise to the configuration-file format."""
        lines = ["# teemon ebpf-exporter configuration"]
        for group in ("syscalls", "context_switches", "page_faults", "cache"):
            state = "on" if getattr(self, group) else "off"
            lines.append(f"programs.{group} = {state}")
        if self.pid_filter is not None:
            lines.append(f"filter.pid = {self.pid_filter}")
        return "\n".join(lines) + "\n"


class EbpfExporter(Exporter):
    """Loads eBPF programs and exports their maps."""

    FOOTPRINT = ExporterFootprint(cpu_fraction=0.008, memory_bytes=45 * MIB)
    PORT = 9102
    PROCESS_NAME = "ebpf-exporter"

    def __init__(
        self,
        kernel: Kernel,
        config: Optional[EbpfExporterConfig] = None,
        container_id: Optional[str] = None,
    ) -> None:
        super().__init__(kernel, container_id=container_id)
        self.config = config or EbpfExporterConfig()
        self.runtime = EbpfRuntime(kernel)
        self._map_fds: Dict[str, int] = {}
        self._install_programs()
        self._build_families()
        self.registry.on_collect(self._refresh)

    # ------------------------------------------------------------------
    def _new_map(self, name: str, max_entries: int = 4096) -> int:
        fd = self.runtime.create_map(HashMap(name, max_entries=max_entries))
        self._map_fds[name] = fd
        return fd

    def _install_programs(self) -> None:
        cfg = self.config
        if cfg.syscalls:
            fd = self._new_map("syscall_counts")
            self.runtime.load_and_attach(
                counter_program(
                    "count_syscalls", fd, key_field="syscall_nr",
                    pid_filter=cfg.pid_filter,
                ),
                "raw_syscalls:sys_enter",
            )
            exit_fd = self._new_map("syscall_exits")
            self.runtime.load_and_attach(
                counter_program(
                    "count_syscall_exits", exit_fd, key_field="syscall_nr",
                    pid_filter=cfg.pid_filter,
                ),
                "raw_syscalls:sys_exit",
            )
            hist_fd = self._new_map("syscall_latency_hist", max_entries=64)
            self.runtime.load_and_attach(
                log2_histogram_program(
                    "syscall_latency_hist", hist_fd, "latency_us"
                ),
                "raw_syscalls:sys_exit",
            )
        if cfg.context_switches:
            total_fd = self._new_map("ctx_total")
            self.runtime.load_and_attach(
                counter_program(
                    "count_ctx_switches", total_fd, fixed_key=0,
                ),
                "PERF_COUNT_SW_CONTEXT_SWITCHES",
            )
            pid_fd = self._new_map("ctx_by_pid")
            self.runtime.load_and_attach(
                pid_attributed_counter_program("ctx_by_pid", pid_fd),
                "sched:sched_switches",
            )
        if cfg.page_faults:
            kind_fd = self._new_map("faults_by_kind", max_entries=8)
            self.runtime.load_and_attach(
                counter_program("faults_by_kind", kind_fd, key_field="fault_kind_code"),
                "exceptions:page_fault_user",
            )
            user_pid_fd = self._new_map("user_faults_by_pid")
            self.runtime.load_and_attach(
                pid_attributed_counter_program("user_faults_by_pid", user_pid_fd),
                "exceptions:page_fault_user",
            )
            kernel_fd = self._new_map("kernel_faults", max_entries=2)
            self.runtime.load_and_attach(
                counter_program("kernel_faults", kernel_fd, fixed_key=0),
                "exceptions:page_fault_kernel",
            )
            total_fd = self._new_map("faults_total", max_entries=2)
            self.runtime.load_and_attach(
                counter_program("faults_total", total_fd, fixed_key=0),
                "PERF_COUNT_SW_PAGE_FAULTS",
            )
        if cfg.cache:
            refs_fd = self._new_map("llc_refs", max_entries=2)
            self.runtime.load_and_attach(
                counter_program("llc_refs", refs_fd, fixed_key=0),
                "PERF_COUNT_HW_CACHE_REFERENCES",
            )
            miss_fd = self._new_map("llc_misses", max_entries=2)
            self.runtime.load_and_attach(
                counter_program("llc_misses", miss_fd, fixed_key=0),
                "PERF_COUNT_HW_CACHE_MISSES",
            )
            miss_pid_fd = self._new_map("llc_misses_by_pid")
            self.runtime.load_and_attach(
                pid_attributed_counter_program("llc_misses_by_pid", miss_pid_fd),
                "PERF_COUNT_HW_CACHE_MISSES",
            )
            for hook in PAGE_CACHE_HOOKS:
                fd = self._new_map(f"pagecache_{hook}", max_entries=2)
                self.runtime.load_and_attach(
                    counter_program(f"pagecache_{hook}", fd, fixed_key=0), hook
                )

    # ------------------------------------------------------------------
    def _build_families(self) -> None:
        reg = self.registry
        cfg = self.config
        if cfg.syscalls:
            self._syscalls_family = reg.counter(
                "ebpf_syscalls_total", "System calls by name", ["name"]
            )
            self._latency_family = reg.counter(
                "ebpf_syscall_latency_us_bucket",
                "Syscall service latency, log2 buckets (cumulative, "
                "histogram_quantile-compatible)",
                ["le"],
            )
        if cfg.context_switches:
            self._ctx_total_family = reg.counter(
                "ebpf_context_switches_total", "Host-wide context switches"
            )
            self._ctx_pid_family = reg.counter(
                "ebpf_context_switches_pid_total", "Context switches by PID", ["pid"]
            )
        if cfg.page_faults:
            self._faults_kind_family = reg.counter(
                "ebpf_page_faults_user_total", "User page faults by kind", ["kind"]
            )
            self._faults_pid_family = reg.counter(
                "ebpf_page_faults_user_pid_total", "User page faults by PID", ["pid"]
            )
            self._faults_kernel_family = reg.counter(
                "ebpf_page_faults_kernel_total", "Kernel page faults"
            )
            self._faults_total_family = reg.counter(
                "ebpf_page_faults_total", "All page faults (SW perf event)"
            )
        if cfg.cache:
            self._llc_refs_family = reg.counter(
                "ebpf_llc_references_total", "LLC references"
            )
            self._llc_miss_family = reg.counter(
                "ebpf_llc_misses_total", "LLC misses"
            )
            self._llc_miss_pid_family = reg.counter(
                "ebpf_llc_misses_pid_total", "LLC misses by PID", ["pid"]
            )
            self._pagecache_family = reg.counter(
                "ebpf_page_cache_ops_total", "Page-cache kprobe hits", ["op"]
            )

    def _map_items(self, name: str) -> List[Tuple[int, int]]:
        return list(self.runtime.maps.get(self._map_fds[name]).items())

    def _single_value(self, name: str) -> int:
        value = self.runtime.maps.get(self._map_fds[name]).lookup(0)
        return 0 if value is None else value

    def _refresh(self) -> None:
        """Copy map contents into the metric families (scrape time)."""
        cfg = self.config
        if cfg.syscalls:
            for nr, count in self._map_items("syscall_counts"):
                name = SYSCALL_NAMES.get(nr, f"nr_{nr}")
                self._syscalls_family.labels(name).set_to(count)
            # Log2 buckets -> cumulative `le` buckets for histogram_quantile.
            buckets = dict(self._map_items("syscall_latency_hist"))
            cumulative = 0
            for bucket in sorted(buckets):
                cumulative += buckets[bucket]
                upper = 2 ** (bucket + 1)  # bucket b holds values [2^b, 2^(b+1))
                self._latency_family.labels(str(upper)).set_to(cumulative)
            self._latency_family.labels("+Inf").set_to(cumulative)
        if cfg.context_switches:
            self._ctx_total_family.labels().set_to(self._single_value("ctx_total"))
            for pid, count in self._map_items("ctx_by_pid"):
                self._ctx_pid_family.labels(str(pid)).set_to(count)
        if cfg.page_faults:
            for code, count in self._map_items("faults_by_kind"):
                kind = FAULT_KIND_BY_CODE.get(code)
                label = kind.value if kind is not None else f"code_{code}"
                self._faults_kind_family.labels(label).set_to(count)
            for pid, count in self._map_items("user_faults_by_pid"):
                self._faults_pid_family.labels(str(pid)).set_to(count)
            self._faults_kernel_family.labels().set_to(self._single_value("kernel_faults"))
            self._faults_total_family.labels().set_to(self._single_value("faults_total"))
        if cfg.cache:
            self._llc_refs_family.labels().set_to(self._single_value("llc_refs"))
            self._llc_miss_family.labels().set_to(self._single_value("llc_misses"))
            for pid, count in self._map_items("llc_misses_by_pid"):
                self._llc_miss_pid_family.labels(str(pid)).set_to(count)
            for hook in PAGE_CACHE_HOOKS:
                self._pagecache_family.labels(hook).set_to(
                    self._single_value(f"pagecache_{hook}")
                )

    def shutdown(self) -> None:
        """Detach all programs and stop the process (monitoring OFF)."""
        self.runtime.detach_all()
        super().shutdown()
