"""The TEE Metrics Exporter (SGX exporter).

Mirrors the paper's §5.1 implementation: a small Python/Flask service that
reads the instrumented driver's module parameters from
``/sys/module/isgx/parameters/<metric>`` and re-exposes them in the
OpenMetrics format.  The exporter is deliberately dumb — all intelligence
lives in the driver counters — which is what lets it work unchanged across
SGX frameworks.

Metric classes follow §4: *enclave metrics* (initialized, active, removed)
and *EPC metrics* (total pages, free pages, marked old, evicted, added,
reclaimed).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeploymentError
from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.simkernel.kernel import Kernel

PARAMS_DIR = "/sys/module/isgx/parameters"

#: (metric name, module parameter, help text, is_counter)
_METRIC_MAP = (
    ("sgx_enclaves_active", "sgx_nr_enclaves", "Enclaves currently active", False),
    ("sgx_enclaves_initialized_total", "sgx_init_enclaves", "Enclaves initialized since driver load", True),
    ("sgx_enclaves_removed_total", "sgx_nr_removed_enclaves", "Enclaves removed since driver load", True),
    ("sgx_epc_total_pages", "sgx_nr_total_epc_pages", "Usable EPC pages", False),
    ("sgx_epc_free_pages", "sgx_nr_free_pages", "Free EPC pages", False),
    ("sgx_epc_pages_marked_old_total", "sgx_nr_marked_old", "EPC pages marked old (aging)", True),
    ("sgx_epc_pages_evicted_total", "sgx_nr_evicted", "EPC pages evicted to main memory (EWB)", True),
    ("sgx_epc_pages_added_total", "sgx_nr_added_pages", "Pages added to enclaves (EADD/EAUG)", True),
    ("sgx_epc_pages_reclaimed_total", "sgx_nr_reclaimed", "Pages reclaimed from main memory (ELD)", True),
    ("sgx_aexs_total", "sgx_nr_aexs", "Asynchronous enclave exits since driver load", True),
)


class TeeMetricsExporter(Exporter):
    """Per-host SGX metrics exporter (one instance per machine, §4)."""

    FOOTPRINT = ExporterFootprint(cpu_fraction=0.002, memory_bytes=20 * MIB)
    PORT = 9101
    PROCESS_NAME = "sgx-exporter"

    def __init__(self, kernel: Kernel, container_id: Optional[str] = None) -> None:
        if not kernel.has_module("isgx"):
            raise DeploymentError(
                "TEE metrics exporter requires the isgx driver to be loaded"
            )
        super().__init__(kernel, container_id=container_id)
        self._gauges = {}
        self._counters = {}
        for metric_name, param, help_text, is_counter in _METRIC_MAP:
            if is_counter:
                self._counters[metric_name] = (
                    self.registry.counter(metric_name, help_text), param
                )
            else:
                self._gauges[metric_name] = (
                    self.registry.gauge(metric_name, help_text), param
                )
        self.registry.on_collect(self._refresh)

    def _read_param(self, param: str) -> float:
        return float(self.kernel.vfs.read(f"{PARAMS_DIR}/{param}"))

    def _refresh(self) -> None:
        """Re-read every module parameter (runs at scrape time)."""
        for gauge, param in self._gauges.values():
            gauge.set_to(self._read_param(param))
        for counter, param in self._counters.values():
            counter.labels().set_to(self._read_param(param))
