"""cAdvisor: per-container utilisation metrics.

The paper integrates Google's cAdvisor to provide Docker-container
metrics (§5.1) and notes in §6.2 that it is the most CPU-hungry TEEMon
component (~3% of a CPU on average) — which the footprint below encodes,
and which the Figure-4 experiment then measures.

The exporter walks the host's containers (any process carrying a
``container_id``) and exports CPU time, memory and thread counts per
container.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.simkernel.kernel import Kernel

NANOS_PER_SEC = 1_000_000_000


class CadvisorExporter(Exporter):
    """Per-container metrics from host process state."""

    FOOTPRINT = ExporterFootprint(cpu_fraction=0.03, memory_bytes=95 * MIB)
    PORT = 8080
    PATH = "/metrics"
    PROCESS_NAME = "cadvisor"

    def __init__(self, kernel: Kernel, container_id: Optional[str] = None) -> None:
        super().__init__(kernel, container_id=container_id)
        reg = self.registry
        self._cpu = reg.counter(
            "container_cpu_usage_seconds_total", "Container CPU time", ["container"]
        )
        self._memory = reg.gauge(
            "container_memory_usage_bytes", "Container resident memory", ["container"]
        )
        self._threads = reg.gauge(
            "container_threads", "Container live threads", ["container"]
        )
        self._count = reg.gauge("container_count", "Containers on this host")
        reg.on_collect(self._refresh)

    def _refresh(self) -> None:
        per_container: Dict[str, Dict[str, float]] = {}
        for process in self.kernel.processes():
            if process.container_id is None:
                continue
            entry = per_container.setdefault(
                process.container_id,
                {"cpu_ns": 0.0, "rss": 0.0, "threads": 0.0},
            )
            entry["cpu_ns"] += process.cpu_time_ns
            entry["rss"] += process.rss_bytes
            entry["threads"] += len(process.live_threads())
        for container, entry in per_container.items():
            self._cpu.labels(container).set_to(entry["cpu_ns"] / NANOS_PER_SEC)
            self._memory.labels(container).set_to(entry["rss"])
            self._threads.labels(container).set_to(entry["threads"])
        self._count.set_to(len(per_container))
