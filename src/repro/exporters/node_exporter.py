"""The node exporter: machine metrics from ``/proc`` and ``/sys``.

The paper integrates the Prometheus node_exporter, reduced to *CPU,
memory, filesystem and network statistics* (§5.1).  This model reads the
simulated kernel's ``/proc/stat`` and ``/proc/meminfo`` pseudo-files —
parsing text, as the real exporter does — plus kernel state for
filesystem/network counters.
"""

from __future__ import annotations

from typing import Optional

from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.simkernel.kernel import Kernel

USER_HZ = 100


class NodeExporter(Exporter):
    """Per-host machine metrics."""

    FOOTPRINT = ExporterFootprint(cpu_fraction=0.003, memory_bytes=25 * MIB)
    PORT = 9100
    PROCESS_NAME = "node-exporter"

    def __init__(self, kernel: Kernel, container_id: Optional[str] = None) -> None:
        super().__init__(kernel, container_id=container_id)
        reg = self.registry
        self._cpu_seconds = reg.counter(
            "node_cpu_seconds_total", "CPU time by mode", ["cpu", "mode"]
        )
        self._ctx = reg.counter(
            "node_context_switches_total", "Context switches (/proc/stat ctxt)"
        )
        self._mem_total = reg.gauge("node_memory_MemTotal_bytes", "Total memory")
        self._mem_free = reg.gauge("node_memory_MemFree_bytes", "Free memory")
        self._mem_cached = reg.gauge("node_memory_Cached_bytes", "Page-cache memory")
        self._fs_reads = reg.counter(
            "node_filesystem_page_cache_hits_total", "Page-cache hits"
        )
        self._fs_misses = reg.counter(
            "node_filesystem_page_cache_misses_total", "Page-cache misses"
        )
        self._net_served = reg.counter(
            "node_network_http_requests_total", "HTTP requests served on this host"
        )
        self._uptime = reg.gauge("node_uptime_seconds", "Host uptime")
        reg.on_collect(self._refresh)

    def _refresh(self) -> None:
        kernel = self.kernel
        for line in kernel.vfs.read("/proc/stat").splitlines():
            fields = line.split()
            if not fields:
                continue
            if fields[0].startswith("cpu") and fields[0] != "cpu":
                cpu_id = fields[0][3:]
                busy_ticks = int(fields[1])
                idle_ticks = int(fields[4])
                self._cpu_seconds.labels(cpu_id, "busy").set_to(busy_ticks / USER_HZ)
                self._cpu_seconds.labels(cpu_id, "idle").set_to(idle_ticks / USER_HZ)
            elif fields[0] == "ctxt":
                self._ctx.labels().set_to(int(fields[1]))
        for line in kernel.vfs.read("/proc/meminfo").splitlines():
            name, _, rest = line.partition(":")
            value_kb = int(rest.split()[0])
            if name == "MemTotal":
                self._mem_total.set_to(value_kb * 1024)
            elif name == "MemFree":
                self._mem_free.set_to(value_kb * 1024)
            elif name == "Cached":
                self._mem_cached.set_to(value_kb * 1024)
        self._fs_reads.labels().set_to(kernel.page_cache.stats.hits)
        self._fs_misses.labels().set_to(kernel.page_cache.stats.misses)
        self._uptime.set_to(kernel.clock.now_seconds)
