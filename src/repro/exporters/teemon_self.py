"""The ``teemon_self`` target: the monitoring stack as its own exporter.

TEEMon's aggregator scrapes exporters; this module closes the loop by
making the monitoring pipeline itself scrapable.  One endpoint (port
9901) serves, in OpenMetrics format:

* the scrape manager's own counters (``teemon_scrape_*_total``,
  ``teemon_target_flaps_total``) — the *same* family objects registered
  in :attr:`ScrapeManager.self_registry`, so the exposition is always a
  live view and ``rate(teemon_scrape_retries_total[1m])`` is a real
  PromQL query over real scraped series;
* tracer counters (``teemon_trace_spans_started_total`` …), refreshed at
  collect time from the live tracer;
* durability telemetry (``teemon_wal_*``) — live views over the
  write-ahead-log writer: records written through, flushes, checkpoints,
  segments, and the unflushed-record loss window;
* recovery telemetry (``teemon_recovery_*``) — cumulative crash-recovery
  statistics of the deployment: recoveries, records replayed, records
  and segments quarantined for corruption, and the *exact* samples lost
  to crashes as measured against the simulated medium's loss report;
* storage-engine telemetry (``teemon_storage_*``) — shard count,
  per-shard series/sample counts (``{shard="N"}``), compaction passes,
  samples folded into downsampled buckets, bytes saved by downsampling,
  and range evaluations served from rollups;
* ``teemon_span_duration_seconds`` — a histogram of span durations
  (virtual time), labelled by span name, fed from the tracer's span-end
  callback.  Each observation carries an OpenMetrics **exemplar**
  ``{trace_id=…,span_id=…}``, so a slow bucket on a dashboard resolves
  back to a concrete stored trace via ``TraceStore.get``.

Unlike the paper's four per-host exporters this one is *not* an
:class:`~repro.exporters.base.Exporter`: it has no host process and no
modelled footprint (the pipeline's cost is already charged to the
aggregator), it is purely an endpoint over state that exists anyway.
"""

from __future__ import annotations

from typing import Optional

from repro.net.http import HttpEndpoint, HttpNetwork
from repro.openmetrics.encoder import encode_registry
from repro.openmetrics.registry import CollectorRegistry
from repro.openmetrics.types import Exemplar
from repro.simkernel.clock import NANOS_PER_SEC

#: Port convention: one past the paper's exporter range (9100+); the
#: self-telemetry endpoint is infrastructure, not a workload exporter.
SELF_EXPORTER_PORT = 9901
SELF_EXPORTER_PATH = "/metrics"
SELF_JOB = "teemon_self"

#: Span durations are virtual-time and mostly sub-millisecond; the
#: default 5ms-and-up buckets would collapse them into one bucket.
SPAN_DURATION_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0,
)


class TeemonSelfExporter:
    """Serves the pipeline's self-telemetry as an OpenMetrics endpoint."""

    def __init__(self, hostname: str, scrape_manager=None, tracer=None,
                 wal=None, recovery_stats=None, storage=None,
                 rules=None, alerting=None, span_metrics: bool = True) -> None:
        self.hostname = hostname
        self.registry = CollectorRegistry()
        self._tracer = tracer
        self._wal = wal
        self._recovery_stats = recovery_stats
        self._storage = storage
        self._rules = rules
        self._alerting = alerting
        self._endpoint: Optional[HttpEndpoint] = None
        self.scrapes_served = 0
        if scrape_manager is not None:
            # Re-register the scrape manager's family objects: both
            # registries share them, so this exposition is a live view.
            for family in scrape_manager.self_registry.families():
                self.registry.register(family)
        if tracer is not None:
            self._spans_started = self.registry.counter(
                "teemon_trace_spans_started_total",
                "Spans started by the pipeline tracer",
            )
            self._spans_ended = self.registry.counter(
                "teemon_trace_spans_ended_total",
                "Spans ended by the pipeline tracer",
            )
            self._traces_started = self.registry.counter(
                "teemon_trace_traces_total",
                "Traces started by the pipeline tracer",
            )
            self._traces_sampled_out = self.registry.counter(
                "teemon_trace_traces_sampled_out_total",
                "Traces dropped at the root by the head sampler",
            )
            self._spans_unsampled = self.registry.counter(
                "teemon_trace_spans_unsampled_total",
                "Span requests served by the unsampled fast path",
            )
            self._trace_spans_stored = self.registry.counter(
                "teemon_trace_spans_stored_total",
                "Spans accepted into the trace store",
            )
            self._traces_evicted = self.registry.counter(
                "teemon_trace_traces_evicted_total",
                "Whole traces FIFO-evicted past the store's capacity",
            )
            self._traces_kept = self.registry.counter(
                "teemon_trace_traces_kept_total",
                "Completed traces the tail keep rules promoted",
            )
            self._traces_dropped = self.registry.counter(
                "teemon_trace_traces_dropped_total",
                "Completed traces the tail keep rules discarded",
            )
            self._trace_spans_dropped = self.registry.counter(
                "teemon_trace_spans_dropped_total",
                "Spans discarded with tail-dropped traces",
            )
            self._trace_pending = self.registry.gauge(
                "teemon_trace_pending_traces",
                "Traces buffered awaiting a tail-sampling verdict",
            )
            self._span_duration = None
            if span_metrics:
                # The per-span-name duration histogram is the expensive
                # part of trace self-telemetry: ~10 bucket series per
                # span name, encoded, scraped, parsed, and ingested every
                # cycle.  Deployments that head-sample leave it off by
                # default — a 10% sample skews duration quantiles anyway.
                self._span_duration = self.registry.histogram(
                    "teemon_span_duration_seconds",
                    "Span durations in virtual time, by span name",
                    label_names=("span",),
                    buckets=SPAN_DURATION_BUCKETS,
                )
                tracer.on_span_end(self._observe_span)
            self.registry.on_collect(self._sync_tracer_counters)
        if wal is not None:
            # Durability telemetry: live views over the WAL writer.  The
            # counters reset on a restart (a fresh writer per process
            # incarnation, as with a real daemon's in-process counters);
            # ``rate()`` handles counter resets.
            self._wal_records = self.registry.counter(
                "teemon_wal_records_total",
                "Samples written through to the write-ahead log",
            )
            self._wal_flushes = self.registry.counter(
                "teemon_wal_flushes_total",
                "WAL segment fsyncs performed",
            )
            self._wal_checkpoints = self.registry.counter(
                "teemon_wal_checkpoints_total",
                "Checkpoints written (snapshot + segment truncation)",
            )
            self._wal_segments = self.registry.counter(
                "teemon_wal_segments_total",
                "WAL segments opened",
            )
            self._wal_unflushed = self.registry.gauge(
                "teemon_wal_unflushed_records",
                "Records appended since the last flush (the loss window)",
            )
            self.registry.on_collect(self._sync_wal_counters)
        if recovery_stats is not None:
            # Recovery telemetry: cumulative across every resurrection of
            # the deployment (the deployment object outlives the monitor
            # process, so these never reset).
            self._recoveries = self.registry.counter(
                "teemon_recovery_total",
                "Crash recoveries performed by this deployment",
            )
            self._recovery_replayed = self.registry.counter(
                "teemon_recovery_records_replayed_total",
                "WAL records replayed into the database across recoveries",
            )
            self._recovery_quarantined = self.registry.counter(
                "teemon_recovery_records_quarantined_total",
                "Corrupt WAL records skipped (CRC mismatch or bad payload)",
            )
            self._recovery_segments_quarantined = self.registry.counter(
                "teemon_recovery_segments_quarantined_total",
                "WAL segments abandoned for unwalkable corruption",
            )
            self._recovery_samples_lost = self.registry.gauge(
                "teemon_recovery_samples_lost",
                "Exact samples destroyed by crashes, as measured against "
                "the medium's own loss report",
            )
            self.registry.on_collect(self._sync_recovery_counters)
        if storage is not None:
            # Storage-engine telemetry: shard layout and the block
            # lifecycle's compaction counters, refreshed at collect time
            # from the engine's ``storage_stats()``.
            self._storage_shards = self.registry.gauge(
                "teemon_storage_shards",
                "Shards behind the storage engine",
            )
            self._storage_series = self.registry.gauge(
                "teemon_storage_series",
                "Distinct series held, per shard",
                label_names=("shard",),
            )
            self._storage_samples = self.registry.gauge(
                "teemon_storage_samples",
                "Raw (not yet downsampled) samples held, per shard",
                label_names=("shard",),
            )
            self._storage_rollup_samples = self.registry.gauge(
                "teemon_storage_rollup_samples",
                "Samples folded into downsampled buckets, per shard",
                label_names=("shard",),
            )
            self._storage_compactions = self.registry.counter(
                "teemon_storage_compactions_total",
                "Block-compaction passes run",
            )
            self._storage_compacted = self.registry.counter(
                "teemon_storage_samples_compacted_total",
                "Raw samples folded into downsampled rollup buckets",
            )
            self._storage_bytes_saved = self.registry.gauge(
                "teemon_storage_downsample_bytes_saved",
                "Approximate bytes released by replacing raw chunks with "
                "rollup buckets",
            )
            self._storage_downsampled_reads = self.registry.counter(
                "teemon_storage_downsampled_reads_total",
                "Range-function evaluations served from downsampled buckets",
            )
            self._storage_pushdown_reads = self.registry.counter(
                "teemon_storage_pushdown_reads_total",
                "Range queries answered from per-shard aggregate partials "
                "instead of a full cross-shard series merge",
            )
            self._storage_batch_appends = self.registry.counter(
                "teemon_storage_batch_appends_total",
                "Batched ingest calls absorbed, per shard",
                label_names=("shard",),
            )
            self.registry.on_collect(self._sync_storage_counters)
        if rules is not None:
            # Rule-evaluation telemetry: the modelled evaluation time of
            # the recording/alerting rule engine, materialization
            # backfill activity, and static-label conflicts surfaced by
            # the collision detector.
            self._rule_eval_seconds = self.registry.gauge(
                "teemon_rule_eval_seconds",
                "Cumulative modelled rule-evaluation time (virtual)",
            )
            self._rule_conflicts = self.registry.counter(
                "teemon_rule_conflicts_total",
                "Recording-rule label collisions (static labels stomping "
                "series labels, or output label sets collapsing)",
            )
            self._rule_backfilled = self.registry.counter(
                "teemon_rule_backfilled_steps_total",
                "Missed rule intervals recovered by incremental backfill",
            )
            self._rule_gap_fallbacks = self.registry.counter(
                "teemon_rule_gap_fallbacks_total",
                "Evaluation gaps too wide to backfill (full re-evaluation)",
            )
            self.registry.on_collect(self._sync_rule_counters)
        if alerting is not None:
            # Alerting telemetry: live alert-state gauges plus the
            # notification router's per-receiver delivery outcomes.
            self._alerts_firing = self.registry.gauge(
                "teemon_alerts_firing",
                "Alert instances currently in the firing state",
            )
            self._alerts_pending = self.registry.gauge(
                "teemon_alerts_pending",
                "Alert instances currently in the pending state",
            )
            self._notifications = self.registry.counter(
                "teemon_notifications_total",
                "Notification deliveries by receiver and outcome",
                label_names=("receiver", "outcome"),
            )
            self.registry.on_collect(self._sync_alerting_counters)

    def _sync_rule_counters(self) -> None:
        stats = self._rules()
        self._rule_eval_seconds.labels().set_to(float(stats["eval_seconds"]))
        self._rule_conflicts.labels().set_to(float(stats["conflicts_total"]))
        self._rule_backfilled.labels().set_to(
            float(stats["backfilled_steps_total"])
        )
        self._rule_gap_fallbacks.labels().set_to(
            float(stats["gap_fallbacks_total"])
        )

    def _sync_alerting_counters(self) -> None:
        stats = self._alerting()
        self._alerts_firing.labels().set_to(float(stats["firing"]))
        self._alerts_pending.labels().set_to(float(stats["pending"]))
        for (receiver, outcome), count in sorted(
            stats["notifications"].items()
        ):
            self._notifications.labels(receiver, outcome).set_to(float(count))

    def _sync_storage_counters(self) -> None:
        stats = self._storage()
        self._storage_shards.labels().set_to(float(stats["shards"]))
        for index, shard in enumerate(stats["per_shard"]):
            label = str(index)
            self._storage_series.labels(label).set_to(float(shard["series"]))
            self._storage_samples.labels(label).set_to(float(shard["samples"]))
            self._storage_rollup_samples.labels(label).set_to(
                float(shard["rollup_samples"])
            )
            self._storage_batch_appends.labels(label).set_to(
                float(shard.get("batch_appends", 0))
            )
        self._storage_compactions.labels().set_to(
            float(stats["compactions_total"])
        )
        self._storage_compacted.labels().set_to(
            float(stats["samples_compacted_total"])
        )
        self._storage_bytes_saved.labels().set_to(
            float(stats["bytes_saved_total"])
        )
        self._storage_downsampled_reads.labels().set_to(
            float(stats["downsampled_reads_total"])
        )
        self._storage_pushdown_reads.labels().set_to(
            float(stats.get("pushdown_reads_total", 0))
        )

    def _sync_wal_counters(self) -> None:
        self._wal_records.labels().set_to(float(self._wal.records_total))
        self._wal_flushes.labels().set_to(float(self._wal.flushes_total))
        self._wal_checkpoints.labels().set_to(float(self._wal.checkpoints_total))
        self._wal_segments.labels().set_to(float(self._wal.segments_total))
        self._wal_unflushed.labels().set_to(float(self._wal.unflushed_records))

    def _sync_recovery_counters(self) -> None:
        stats = self._recovery_stats()
        self._recoveries.labels().set_to(float(stats["recoveries"]))
        self._recovery_replayed.labels().set_to(float(stats["records_replayed"]))
        self._recovery_quarantined.labels().set_to(
            float(stats["records_quarantined"])
        )
        self._recovery_segments_quarantined.labels().set_to(
            float(stats["segments_quarantined"])
        )
        self._recovery_samples_lost.labels().set_to(float(stats["samples_lost"]))

    def _sync_tracer_counters(self) -> None:
        tracer = self._tracer
        self._spans_started.labels().set_to(float(tracer.spans_started))
        self._spans_ended.labels().set_to(float(tracer.spans_ended))
        self._traces_started.labels().set_to(float(tracer.traces_started))
        self._traces_sampled_out.labels().set_to(
            float(getattr(tracer, "traces_sampled_out", 0))
        )
        self._spans_unsampled.labels().set_to(
            float(getattr(tracer, "spans_unsampled", 0))
        )
        store = getattr(tracer, "store", None)
        if store is None:
            return
        self._trace_spans_stored.labels().set_to(float(store.spans_stored))
        self._traces_evicted.labels().set_to(float(store.traces_evicted))
        self._traces_kept.labels().set_to(float(store.traces_kept))
        self._traces_dropped.labels().set_to(float(store.traces_dropped))
        self._trace_spans_dropped.labels().set_to(float(store.spans_dropped))
        self._trace_pending.labels().set_to(float(store.pending_count()))

    def _observe_span(self, span) -> None:
        duration_s = span.duration_ns / NANOS_PER_SEC
        self._span_duration.labels(span.name).observe(
            duration_s,
            exemplar=Exemplar.of(
                duration_s,
                timestamp_s=span.end_ns / NANOS_PER_SEC,
                trace_id=span.trace_id,
                span_id=span.span_id,
            ),
        )

    @property
    def url(self) -> str:
        """Endpoint URL once exposed."""
        if self._endpoint is None:
            raise RuntimeError("teemon_self endpoint not exposed yet")
        return self._endpoint.url

    def expose(self, network: HttpNetwork) -> HttpEndpoint:
        """Publish the self-telemetry endpoint on the simulated network."""
        self._endpoint = network.register(
            self.hostname, SELF_EXPORTER_PORT, SELF_EXPORTER_PATH, self._serve
        )
        return self._endpoint

    def _serve(self) -> str:
        self.scrapes_served += 1
        return encode_registry(self.registry)
