"""Exception hierarchy shared across the repro packages.

Every package raises subclasses of :class:`ReproError` so callers can catch
a single base class at API boundaries while still being able to discriminate
failure domains (kernel, eBPF, SGX, query language, orchestration).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulated kernel was driven into an invalid state."""


class HookError(SimulationError):
    """Unknown hook name or invalid hook attachment."""


class SchedulerError(SimulationError):
    """Invalid scheduler operation (e.g. running an exited thread)."""


class MemoryError_(SimulationError):
    """Virtual-memory model violation (bad address, double map, ...)."""


class SyscallError(SimulationError):
    """Unknown syscall number or malformed syscall invocation."""


class EbpfError(ReproError):
    """Base class for eBPF subsystem failures."""


class VerifierError(EbpfError):
    """The static verifier rejected a program."""


class VmFault(EbpfError):
    """The eBPF VM faulted at runtime (division by zero, bad map fd...)."""


class MapError(EbpfError):
    """Invalid BPF map operation."""


class SgxError(ReproError):
    """Base class for SGX-model failures."""


class EpcExhaustedError(SgxError):
    """No EPC page could be allocated and eviction is disabled."""


class EnclaveError(SgxError):
    """Invalid enclave lifecycle operation."""


class FrameworkError(ReproError):
    """An SGX framework model rejected an operation."""


class ManifestError(FrameworkError):
    """A Graphene-style manifest failed validation."""


class NetworkError(ReproError):
    """Simulated network failure (unreachable endpoint, ...)."""


class StorageError(ReproError):
    """Simulated durable-medium misuse (unknown file, bad offset, ...)."""


class OpenMetricsError(ReproError):
    """Malformed OpenMetrics exposition text or invalid metric usage."""


class TsdbError(ReproError):
    """Time-series database misuse (out-of-order append, bad labels...)."""


class QueryError(TsdbError):
    """The query engine could not parse or evaluate an expression."""


class WalError(TsdbError):
    """Write-ahead-log misuse (bad segment name, oversized record, ...)."""


class AnalysisError(ReproError):
    """PMAN analysis failure (bad rule, empty window where one is needed)."""


class OrchestrationError(ReproError):
    """Container/Kubernetes model misuse."""


class DeploymentError(ReproError):
    """TEEMon deployment failure."""
