"""The paper's reported numbers, verbatim.

Used by EXPERIMENTS.md generation and by the shape-checking tests: the
reproduction's measured values are compared against these for *shape*
(ordering, ratios, crossover locations), not absolute equality.
"""

from __future__ import annotations

MIB = 1024 * 1024

#: §6.2 / Fig. 4 — component footprints.
FIG4_CADVISOR_CPU_FRACTION = 0.03       # "at most 3% on average"
FIG4_TOTAL_MEMORY_BYTES = 700 * MIB     # "overall memory footprint ~700 MB"
FIG4_PROMETHEUS_MEMORY_FACTOR = 4.0     # "Prometheus allocates 4x as much"
FIG4_OTHER_COMPONENT_MEMORY = 100 * MIB

#: §6.3 / Fig. 5 — normalized throughput under monitoring (SCONE apps).
FIG5_NORMALIZED_THROUGHPUT = {
    "nginx": 0.87,     # worst case: 87% of baseline
    "redis": 0.90,
    "mongodb": 0.95,   # best case
}
FIG5_EBPF_SHARE_OF_OVERHEAD = 0.5  # "eBPF programs contribute half"
OVERHEAD_RANGE = (0.05, 0.17)      # abstract: "5% to 17%"

#: §6.4 / Fig. 6 — syscall rates for the two SCONE commits (per second).
FIG6_COMMITS = ("572bd1a5", "09fea91")
FIG6_CLOCK_GETTIME_BEFORE = 370_000.0   # "peaked at over 370000/sec"
FIG6_CLOCK_GETTIME_AFTER = 100.0        # "at most 100 ... per second"
FIG6_READ_WRITE_BEFORE = 23_000.0       # read/write "at a tenth" of clock
FIG6_READ_WRITE_AFTER = 32_000.0        # "increased from 23 to 32"

#: §6.4 / Fig. 7 — Redis throughput across the commits (IOP/s).
FIG7_THROUGHPUT_BEFORE = 267_952.22
FIG7_THROUGHPUT_AFTER = 621_504.0

#: §6.5 / Figs. 8-10 — head-to-head (memtier, GETs, pipeline 8).
FIG8_CONNECTIONS = (8, 80, 160, 240, 320, 400, 480, 560, 640, 720)
FIG8_DB_SIZES_BYTES = (78 * MIB, 105 * MIB, 127 * MIB)
FIG8_VALUE_SIZES = {78 * MIB: 32, 105 * MIB: 64, 127 * MIB: 96}
FIG8_PREPOPULATED_KEYS = 720_000

FIG8_NATIVE_PEAK_RANGE = (1_010_000.0, 1_200_000.0)
FIG8_NATIVE_PEAK_CONNECTIONS = 320
FIG8_SCONE_PEAK = 278_000.0
FIG8_SCONE_PEAK_CONNECTIONS = 560
FIG8_SCONE_105MB_PEAK_DROP = 32_000.0
FIG8_SGXLKL_PEAK = 121_000.0
FIG8_SGXLKL_PEAK_CONNECTIONS = 320
FIG8_SGXLKL_DIP_CONNECTIONS = 560
FIG8_GRAPHENE_PEAK = 20_000.0
FIG8_GRAPHENE_PEAK_CONNECTIONS = 8
FIG8_GRAPHENE_105MB_SINGLE_CLIENT = 12_000.0

#: Fig. 9 — latency at 320 connections, milliseconds.
FIG9_LATENCY_AT_320_MS = {
    "native": 2.0,
    "scone": 9.0,
    "sgx-lkl": 20.0,
    "graphene-sgx": 249.0,
}

#: Fig. 11 — selected per-100-GET statistics called out in the text.
FIG11_CONFIGS = ("8C-S", "8C-L", "320C-S", "320C-L", "580C-S", "580C-L")
FIG11_SCONE_USER_FAULTS_320C_L = 0.069
FIG11_SCONE_USER_FAULTS_580C_L = 0.064
FIG11_NATIVE_TOTAL_FAULTS_8C = 607.0
FIG11_GRAPHENE_TOTAL_FAULTS_580C_L = 8_996.0
FIG11_NATIVE_LLC_RANGE = (1.8, 23.0)
FIG11_SCONE_SGXLKL_LLC_RANGE = (29.0, 103.0)
FIG11_GRAPHENE_LLC_MAX = 161.0
FIG11_SCONE_EVICTIONS_580C_L = 137.0
FIG11_SGXLKL_EVICTIONS_MAX = 1.7
FIG11_GRAPHENE_EVICTIONS_MAX = 0.03
FIG11_NATIVE_CTX_PROC_8C = 0.14
FIG11_GRAPHENE_CTX_HOST_580C_L = 304.0
FIG11_NATIVE_CTX_HOST_580C = 37.0
FIG11_OTHERS_CTX_HOST_MAX = 125.0
