"""Per-framework calibration constants.

Every number here is anchored to a statement in the paper's evaluation
(§6.5, Figures 8–11) or to the SGX-framework literature it cites.  The
framework models consume these; nothing else in the library hard-codes
performance numbers.

Event-rate tables are *per 100 GET requests* at the six configurations of
Figure 11 — connections in ``CONN_POINTS`` crossed with a small (fits EPC)
or large (exceeds EPC) database — and are linearly interpolated in the
connection dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FrameworkError

#: Connection counts at which Figure 11 reports rates.
CONN_POINTS: Tuple[int, int, int] = (8, 320, 580)

#: Usable EPC in bytes; databases above this are "large" (the paper's
#: 105/127 MB configurations).
EPC_USABLE_BYTES = 94 * 1024 * 1024

RateTriple = Tuple[float, float, float]


def interpolate_rate(points: RateTriple, connections: int) -> float:
    """Piecewise-linear interpolation over CONN_POINTS, clamped outside."""
    xs = CONN_POINTS
    if connections <= xs[0]:
        return points[0]
    if connections >= xs[2]:
        return points[2]
    if connections <= xs[1]:
        left, right, lo, hi = xs[0], xs[1], points[0], points[1]
    else:
        left, right, lo, hi = xs[1], xs[2], points[1], points[2]
    fraction = (connections - left) / (right - left)
    return lo + fraction * (hi - lo)


@dataclass(frozen=True)
class EventRates:
    """Event rates per 100 GET requests at the CONN_POINTS."""

    user_faults: RateTriple
    total_faults: RateTriple        # host-wide (Figure 11(b))
    llc_misses: RateTriple
    epc_evictions: RateTriple
    ctx_switches_process: RateTriple
    ctx_switches_host: RateTriple

    def at(self, field_name: str, connections: int) -> float:
        """Interpolated rate for one event class."""
        return interpolate_rate(getattr(self, field_name), connections)


@dataclass(frozen=True)
class FrameworkCalibration:
    """All calibrated constants of one runtime."""

    name: str
    #: Per-request service cost of the Redis GET path under this runtime
    #: (memtier workload, pipeline 8), nanoseconds. 1/cost = CPU-bound peak.
    request_cost_ns: float
    #: Additional per-request cost per client connection (Graphene's
    #: in-libOS polling scan; ~0 elsewhere), nanoseconds per connection.
    per_connection_cost_ns: float
    #: In-flight requests at which the pipeline reaches half of capacity
    #: (throughput ramp: inflight / (inflight + half_saturation)).
    half_saturation_inflight: float
    #: Throughput decline when offered load exceeds capacity (native's
    #: post-320-connection network squeeze; SCONE's futex contention).
    oversubscription_decay: float
    #: Multiplicative throughput penalty by database size (bytes-keyed
    #: breakpoints; interpolated on the DB-size axis).
    db_penalty: Tuple[Tuple[int, float], ...]
    #: Optional throughput dip (center_connections, width, depth 0..1) —
    #: SGX-LKL's anomaly at 560 connections in Figure 8(c).
    dip: Optional[Tuple[float, float, float]]
    #: Event rates for small (<= EPC) and large (> EPC) databases.
    rates_small_db: EventRates
    rates_large_db: EventRates
    #: Syscall mix per request (name -> calls per GET) for the Redis
    #: workload; drives both Figure 6-style breakdowns and eBPF overhead.
    syscalls_per_request: Tuple[Tuple[str, float], ...]
    #: LLC miss ratio used to derive references from the miss rates.
    llc_miss_ratio: float
    #: Whether the runtime executes inside an enclave at all.
    uses_enclave: bool = True
    #: Enclave heap configured in the paper's head-to-head (1 GB).
    enclave_heap_bytes: int = 1 << 30
    #: Connection count beyond which contention erodes throughput (0 = no
    #: knee).  Native's post-320 decline; SCONE's post-560 futex contention.
    contention_knee_connections: float = 0.0
    #: Strength of the post-knee decline.
    contention_decay: float = 0.0

    def rates(self, db_bytes: int) -> EventRates:
        """Rate table for a database size."""
        return (
            self.rates_large_db if db_bytes > EPC_USABLE_BYTES else self.rates_small_db
        )

    def db_penalty_for(self, db_bytes: int) -> float:
        """Interpolated throughput penalty for a database size."""
        points = self.db_penalty
        if db_bytes <= points[0][0]:
            return points[0][1]
        for (left_size, left_val), (right_size, right_val) in zip(points, points[1:]):
            if db_bytes <= right_size:
                fraction = (db_bytes - left_size) / (right_size - left_size)
                return left_val + fraction * (right_val - left_val)
        return points[-1][1]

    def events_per_request(self) -> float:
        """Total instrumented syscall events per request (overhead model)."""
        return sum(rate for _, rate in self.syscalls_per_request)


MIB = 1024 * 1024

# ---------------------------------------------------------------------------
# Native (vanilla Redis, no SGX): Fig. 8(a) — 1.01–1.2 M IOP/s peaking at
# 320 connections, then a slight decline as the 1 GbE link saturates;
# latency ~2 ms at 320 connections (= Little's law on 2560 in-flight).
# ---------------------------------------------------------------------------
NATIVE_CALIBRATION = FrameworkCalibration(
    name="native",
    request_cost_ns=760.0,
    per_connection_cost_ns=0.0,
    half_saturation_inflight=230.0,
    oversubscription_decay=2.0,
    db_penalty=((78 * MIB, 1.0), (105 * MIB, 0.92), (127 * MIB, 0.86)),
    dip=None,
    rates_small_db=EventRates(
        user_faults=(0.0, 0.0, 0.0),
        total_faults=(607.0, 170.0, 120.0),
        llc_misses=(1.8, 10.0, 23.0),
        epc_evictions=(0.0, 0.0, 0.0),
        ctx_switches_process=(0.14, 0.05, 0.04),
        ctx_switches_host=(45.0, 40.0, 37.0),
    ),
    rates_large_db=EventRates(
        user_faults=(0.0, 0.0, 0.0),
        total_faults=(607.0, 170.0, 120.0),
        llc_misses=(2.0, 12.0, 23.0),
        epc_evictions=(0.0, 0.0, 0.0),
        ctx_switches_process=(0.14, 0.05, 0.04),
        ctx_switches_host=(45.0, 40.0, 37.0),
    ),
    syscalls_per_request=(
        ("read", 0.125), ("write", 0.125), ("epoll_wait", 0.125),
        ("clock_gettime", 0.30),
    ),
    llc_miss_ratio=0.02,
    uses_enclave=False,
    contention_knee_connections=320.0,
    contention_decay=0.30,
)

# ---------------------------------------------------------------------------
# SCONE: Fig. 8(b) — peak 278 K IOP/s at 560 connections (~23 % of native);
# -12 % at 105 MB, a further drop at 127 MB; Fig. 11(d) — up to 137 evicted
# EPC pages / 100 GETs at 580 C / 105 MB.  Asynchronous syscalls mean few
# kernel syscalls per request but futex traffic for the queue wakeups.
# ---------------------------------------------------------------------------
SCONE_CALIBRATION = FrameworkCalibration(
    name="scone",
    request_cost_ns=3_050.0,
    per_connection_cost_ns=0.0,
    half_saturation_inflight=900.0,
    oversubscription_decay=0.25,
    db_penalty=((78 * MIB, 1.0), (105 * MIB, 0.885), (127 * MIB, 0.78)),
    dip=None,
    rates_small_db=EventRates(
        user_faults=(0.0, 0.001, 0.001),
        total_faults=(500.0, 900.0, 1400.0),
        llc_misses=(29.0, 55.0, 80.0),
        epc_evictions=(0.5, 1.0, 2.0),
        ctx_switches_process=(0.5, 0.3, 0.3),
        ctx_switches_host=(60.0, 90.0, 110.0),
    ),
    rates_large_db=EventRates(
        user_faults=(0.03, 0.069, 0.064),
        total_faults=(700.0, 1500.0, 2200.0),
        llc_misses=(35.0, 70.0, 103.0),
        epc_evictions=(20.0, 90.0, 137.0),
        ctx_switches_process=(0.55, 0.33, 0.33),
        ctx_switches_host=(70.0, 100.0, 125.0),
    ),
    syscalls_per_request=(
        ("read", 0.125), ("write", 0.125), ("epoll_wait", 0.125),
        ("futex", 0.9), ("clock_gettime", 0.05),
    ),
    llc_miss_ratio=0.06,
    contention_knee_connections=560.0,
    contention_decay=0.30,
)

# ---------------------------------------------------------------------------
# SGX-LKL: Fig. 8(c) — peak 121 K IOP/s at 320 connections, a steep dip at
# 560 with recovery after; Fig. 11(e) — the most per-process context
# switches (in-enclave LKL scheduler).
# ---------------------------------------------------------------------------
SGXLKL_CALIBRATION = FrameworkCalibration(
    name="sgx-lkl",
    request_cost_ns=6_900.0,
    per_connection_cost_ns=0.0,
    half_saturation_inflight=550.0,
    oversubscription_decay=0.05,
    db_penalty=((78 * MIB, 1.0), (105 * MIB, 0.93), (127 * MIB, 0.88)),
    dip=(560.0, 110.0, 0.45),
    rates_small_db=EventRates(
        user_faults=(0.0, 0.004, 0.005),
        total_faults=(500.0, 1000.0, 1500.0),
        llc_misses=(30.0, 60.0, 85.0),
        epc_evictions=(1.0, 1.4, 1.6),
        ctx_switches_process=(1.5, 2.0, 2.5),
        ctx_switches_host=(65.0, 95.0, 115.0),
    ),
    rates_large_db=EventRates(
        user_faults=(0.025, 0.03, 0.03),
        total_faults=(650.0, 1400.0, 2100.0),
        llc_misses=(40.0, 75.0, 100.0),
        epc_evictions=(1.2, 1.5, 1.7),
        ctx_switches_process=(1.6, 2.1, 2.6),
        ctx_switches_host=(75.0, 105.0, 125.0),
    ),
    syscalls_per_request=(
        ("read", 0.125), ("write", 0.125), ("futex", 0.4),
        ("clock_gettime", 0.1),
    ),
    llc_miss_ratio=0.06,
)

# ---------------------------------------------------------------------------
# Graphene-SGX: Fig. 8(d) — best at 8 connections (~20 K IOP/s, 1.6 % of
# native) and *declining* with more connections (in-enclave polling over
# all handles); 20 K -> 12 K when the DB grows to 105 MB; ~249 ms latency
# at 320 connections; Fig. 11(f) — host context switches up to 12x others.
# ---------------------------------------------------------------------------
GRAPHENE_CALIBRATION = FrameworkCalibration(
    name="graphene-sgx",
    request_cost_ns=46_000.0,
    per_connection_cost_ns=147.0,
    half_saturation_inflight=4.0,
    oversubscription_decay=0.0,
    db_penalty=((78 * MIB, 1.0), (105 * MIB, 0.60), (127 * MIB, 0.50)),
    dip=None,
    rates_small_db=EventRates(
        user_faults=(0.02, 0.02, 0.02),
        total_faults=(900.0, 2500.0, 4000.0),
        llc_misses=(91.0, 120.0, 140.0),
        epc_evictions=(0.005, 0.01, 0.02),
        ctx_switches_process=(0.9, 1.2, 1.5),
        ctx_switches_host=(100.0, 180.0, 250.0),
    ),
    rates_large_db=EventRates(
        user_faults=(0.03, 0.03, 0.03),
        total_faults=(1200.0, 5000.0, 8996.0),
        llc_misses=(100.0, 140.0, 161.0),
        epc_evictions=(0.01, 0.02, 0.03),
        ctx_switches_process=(1.0, 1.3, 1.6),
        ctx_switches_host=(120.0, 220.0, 304.0),
    ),
    syscalls_per_request=(
        ("read", 1.0), ("write", 1.0), ("epoll_wait", 1.0),
        ("futex", 1.5), ("clock_gettime", 0.5),
    ),
    llc_miss_ratio=0.08,
)

_BY_NAME: Dict[str, FrameworkCalibration] = {
    c.name: c
    for c in (
        NATIVE_CALIBRATION, SCONE_CALIBRATION,
        SGXLKL_CALIBRATION, GRAPHENE_CALIBRATION,
    )
}


def calibration_for(name: str) -> FrameworkCalibration:
    """Look up a calibration by framework name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise FrameworkError(
            f"no calibration for framework {name!r}; "
            f"known: {sorted(_BY_NAME)}"
        ) from None
