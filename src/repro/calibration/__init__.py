"""Calibration: framework cost profiles and the paper's reported numbers.

The simulated substrate reproduces *mechanisms* (async syscall queues,
OCALL exits, EPC paging); this package holds the *numbers* that anchor
those mechanisms to the paper's measurements — per-framework request
costs, concurrency responses, and the Figure-11 event-rate tables — plus
:mod:`repro.calibration.paper`, the paper's own reported values used by
EXPERIMENTS.md and the shape-checking tests.
"""

from repro.calibration.profiles import (
    FrameworkCalibration,
    GRAPHENE_CALIBRATION,
    NATIVE_CALIBRATION,
    SCONE_CALIBRATION,
    SGXLKL_CALIBRATION,
    calibration_for,
)

__all__ = [
    "FrameworkCalibration",
    "NATIVE_CALIBRATION",
    "SCONE_CALIBRATION",
    "SGXLKL_CALIBRATION",
    "GRAPHENE_CALIBRATION",
    "calibration_for",
]
