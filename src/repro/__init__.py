"""TEEMon reproduction.

A production-quality reproduction of "TEEMon: A continuous performance
monitoring framework for TEEs" (Krahn et al., MIDDLEWARE 2020), built on a
deterministic simulated substrate: a Linux-like kernel with tracepoints and
kprobes, an eBPF virtual machine, an Intel SGX model (EPC, enclaves,
transitions, driver counters), the SCONE / Graphene-SGX / SGX-LKL framework
models, and the full TEEMon pipeline (exporters, a Prometheus-like TSDB,
threshold analysis, and dashboards).
"""

from repro._version import __version__

__all__ = ["__version__"]
