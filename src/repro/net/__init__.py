"""Simulated networking: links with finite bandwidth and a tiny HTTP layer.

Two things in the paper need a network model:

* the evaluation testbed is two machines on **switched 1 GbE** (§6.1), and
  native Redis tops out when "the host's network is squeezed at its
  capacity of 1 GBps" — so the benchmark harness needs a bandwidth-capped
  link to reproduce the native plateau in Figure 8(a);
* Prometheus scrapes exporters over HTTP — so exporters publish
  :class:`~repro.net.http.HttpEndpoint` objects on a
  :class:`~repro.net.http.HttpNetwork` and the aggregator pulls them.
"""

from repro.net.http import HttpEndpoint, HttpNetwork, HttpResponse
from repro.net.network import Link

__all__ = ["Link", "HttpNetwork", "HttpEndpoint", "HttpResponse"]
