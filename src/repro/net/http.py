"""A minimal simulated HTTP layer for metric scraping.

Exporters register endpoints (host, port, path) whose bodies are produced
by a callable at request time — the same shape as a Flask route returning
the OpenMetrics text (§5.1 of the paper describes the SGX exporter doing
exactly this).  The aggregator issues GETs through
:class:`HttpNetwork.get`, which also serves as the health-check transport:
a missing endpoint yields a 404-ish failure the scrape manager records as
a down target.

Requests and responses carry a headers mapping.  The transport itself is
header-agnostic except for one rule: a request's ``traceparent`` header
(W3C trace context, see :mod:`repro.trace.context`) is echoed onto every
response — including 404/500/503 failures — so the client's trace context
survives any server-side outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import NetworkError
from repro.trace.context import TRACEPARENT_HEADER

_NO_HEADERS: Mapping[str, str] = {}


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request: method, target, headers, body.

    The positional :meth:`HttpNetwork.get`/:meth:`HttpNetwork.post`
    signatures build these internally; callers that need headers (trace
    propagation) pass a ``headers`` mapping or dispatch a request object
    through :meth:`HttpNetwork.request`.
    """

    method: str
    host: str
    port: int
    path: str
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def url(self) -> str:
        """Canonical URL of the request target."""
        return f"http://{self.host}:{self.port}{self.path}"


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response (status + body + headers).

    ``latency_s`` is the modelled wall time the request took.  The base
    :class:`HttpNetwork` always reports 0.0 (an ideal transport); the fault
    layer (:mod:`repro.faults`) wraps responses with injected delays, and
    consumers with a timeout budget (the scrape manager, the push client)
    compare against it instead of blocking — virtual time only moves
    through the clock.
    """

    status: int
    body: str
    latency_s: float = 0.0
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status is a success."""
        return 200 <= self.status < 300


@dataclass
class HttpEndpoint:
    """A registered HTTP route.

    ``handler`` serves GETs (no body); ``post_handler``, when present,
    serves POSTs (body in, body out).
    """

    host: str
    port: int
    path: str
    handler: Callable[[], str]
    post_handler: Optional[Callable[[str], str]] = None
    healthy: bool = True

    @property
    def url(self) -> str:
        """Canonical URL of the endpoint."""
        return f"http://{self.host}:{self.port}{self.path}"


def _echo_headers(request_headers: Mapping[str, str]) -> Mapping[str, str]:
    """Response headers the transport always carries back: trace context."""
    traceparent = request_headers.get(TRACEPARENT_HEADER)
    if traceparent is None:
        return _NO_HEADERS
    return {TRACEPARENT_HEADER: traceparent}


class HttpNetwork:
    """Routes simulated HTTP requests to registered endpoints."""

    def __init__(self) -> None:
        self._routes: Dict[Tuple[str, int, str], HttpEndpoint] = {}
        self.requests_served = 0
        self.requests_failed = 0

    def register(
        self, host: str, port: int, path: str, handler: Callable[[], str]
    ) -> HttpEndpoint:
        """Expose a route; replaces nothing — double registration is an error."""
        key = (host, port, path)
        if key in self._routes:
            raise NetworkError(f"endpoint already registered: {host}:{port}{path}")
        endpoint = HttpEndpoint(host=host, port=port, path=path, handler=handler)
        self._routes[key] = endpoint
        return endpoint

    def unregister(self, host: str, port: int, path: str) -> None:
        """Remove a route (service gone)."""
        key = (host, port, path)
        if key not in self._routes:
            raise NetworkError(f"no such endpoint: {host}:{port}{path}")
        del self._routes[key]

    def endpoints(self) -> List[HttpEndpoint]:
        """All registered endpoints."""
        return list(self._routes.values())

    def lookup(self, host: str, port: int, path: str) -> Optional[HttpEndpoint]:
        """Find an endpoint without issuing a request."""
        return self._routes.get((host, port, path))

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def request(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request.

        Unknown routes return 404 and unhealthy endpoints 503 — both are
        *responses*, not exceptions, because scrape targets going away is a
        normal condition the scrape manager must observe and report.
        Handler exceptions become 500s for the same reason.  Every outcome,
        including failures, echoes the request's trace context back.
        """
        echo = _echo_headers(request.headers)
        endpoint = self._routes.get((request.host, request.port, request.path))
        if endpoint is None:
            self.requests_failed += 1
            return HttpResponse(status=404, body="not found", headers=echo)
        if not endpoint.healthy:
            self.requests_failed += 1
            return HttpResponse(status=503, body="service unavailable", headers=echo)
        if request.method == "GET":
            serve: Callable[[], str] = endpoint.handler
        elif request.method == "POST":
            if endpoint.post_handler is None:
                self.requests_failed += 1
                return HttpResponse(status=405, body="method not allowed",
                                    headers=echo)
            serve = lambda: endpoint.post_handler(request.body)  # noqa: E731
        else:
            self.requests_failed += 1
            return HttpResponse(status=405, body="method not allowed", headers=echo)
        try:
            body = serve()
        except Exception as exc:  # noqa: BLE001 - fault barrier by design
            self.requests_failed += 1
            return HttpResponse(status=500, body=f"internal error: {exc}",
                                headers=echo)
        self.requests_served += 1
        return HttpResponse(status=200, body=body, headers=echo)

    def get(self, host: str, port: int, path: str,
            headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """Issue a GET (optionally with headers, e.g. ``traceparent``)."""
        return self.request(HttpRequest(
            method="GET", host=host, port=port, path=path,
            headers=headers if headers is not None else _NO_HEADERS,
        ))

    def get_url(self, url: str,
                headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """GET by URL string (http://host:port/path)."""
        host, port, path = parse_url(url)
        return self.get(host, port, path, headers=headers)

    def post(self, host: str, port: int, path: str, body: str,
             headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """Issue a POST; requires the endpoint to accept POSTs."""
        return self.request(HttpRequest(
            method="POST", host=host, port=port, path=path, body=body,
            headers=headers if headers is not None else _NO_HEADERS,
        ))

    def post_url(self, url: str, body: str,
                 headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """POST by URL string."""
        host, port, path = parse_url(url)
        return self.post(host, port, path, body, headers=headers)


def parse_url(url: str) -> Tuple[str, int, str]:
    """Split an http:// URL into (host, port, path)."""
    prefix = "http://"
    if not url.startswith(prefix):
        raise NetworkError(f"only http:// URLs are supported: {url}")
    rest = url[len(prefix):]
    if "/" in rest:
        authority, _, path = rest.partition("/")
        path = "/" + path
    else:
        authority, path = rest, "/"
    if ":" in authority:
        host, _, port_text = authority.partition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise NetworkError(f"bad port in URL: {url}") from None
    else:
        host, port = authority, 80
    if not host:
        raise NetworkError(f"missing host in URL: {url}")
    return host, port, path
