"""Bandwidth-capped network links.

A :class:`Link` models a full-duplex pipe with a fixed capacity and a base
propagation latency.  The benchmark harness uses it in *rate* terms: given
an offered load in bytes/second, :meth:`Link.admissible_rate` returns how
much the link actually carries, and :meth:`Link.queueing_delay_s` gives the
M/M/1-style queueing delay at a utilisation level — enough to reproduce
both the native-Redis throughput plateau and the latency growth as client
connections push the link toward saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError

GBIT = 1_000_000_000


@dataclass
class Link:
    """A full-duplex link with finite capacity."""

    bandwidth_bits_per_s: float = 1 * GBIT
    base_latency_s: float = 0.000_1  # one switched hop
    #: Fraction of raw bandwidth usable by payload (Ethernet + IP + TCP
    #: framing overhead).
    protocol_efficiency: float = 0.94

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_s <= 0:
            raise NetworkError("link bandwidth must be positive")
        if self.base_latency_s < 0:
            raise NetworkError("link latency cannot be negative")
        if not 0 < self.protocol_efficiency <= 1:
            raise NetworkError("protocol efficiency must be in (0, 1]")

    @property
    def payload_bytes_per_s(self) -> float:
        """Usable payload bandwidth in bytes/second."""
        return self.bandwidth_bits_per_s / 8.0 * self.protocol_efficiency

    def admissible_rate(self, offered_bytes_per_s: float) -> float:
        """Carried payload rate for an offered load (cap at capacity)."""
        if offered_bytes_per_s < 0:
            raise NetworkError(f"negative offered load: {offered_bytes_per_s}")
        return min(offered_bytes_per_s, self.payload_bytes_per_s)

    def utilisation(self, offered_bytes_per_s: float) -> float:
        """Offered load as a fraction of capacity (may exceed 1)."""
        if offered_bytes_per_s < 0:
            raise NetworkError(f"negative offered load: {offered_bytes_per_s}")
        return offered_bytes_per_s / self.payload_bytes_per_s

    def queueing_delay_s(self, offered_bytes_per_s: float, packet_bytes: float = 1500.0) -> float:
        """M/M/1 queueing delay at the given offered load.

        Saturated links return a large-but-finite delay (clamped at 100 ms)
        rather than infinity so latency plots stay plottable, matching how a
        real benchmark observes a saturated switch: losses and retransmits
        bound the measured latency.
        """
        if packet_bytes <= 0:
            raise NetworkError(f"packet size must be positive: {packet_bytes}")
        rho = self.utilisation(offered_bytes_per_s)
        service_s = packet_bytes / self.payload_bytes_per_s
        if rho >= 0.999:
            return 0.1
        return min(0.1, service_s * rho / (1.0 - rho))

    def transfer_time_s(self, payload_bytes: float, offered_bytes_per_s: float = 0.0) -> float:
        """End-to-end time to move ``payload_bytes`` at current load."""
        if payload_bytes < 0:
            raise NetworkError(f"negative payload: {payload_bytes}")
        return (
            self.base_latency_s
            + payload_bytes / self.payload_bytes_per_s
            + self.queueing_delay_s(offered_bytes_per_s)
        )
