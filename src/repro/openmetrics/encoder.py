"""Render a collector registry to OpenMetrics exposition text."""

from __future__ import annotations

import math
from typing import List, Mapping, Tuple

from typing import Optional

from repro.openmetrics.registry import CollectorRegistry
from repro.openmetrics.types import (
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricFamily,
    MetricKind,
    Summary,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_labels(names: Tuple[str, ...], values: Tuple[str, ...],
                  extra: Mapping[str, str] = ()) -> str:
    """Format a label set as ``{a="x",b="y"}`` (empty string when none)."""
    pairs = list(zip(names, values))
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _exemplar_suffix(exemplar: Optional[Exemplar]) -> str:
    """The ``# {labels} value ts`` tail, empty when there is no exemplar.

    Exemplar-less lines stay byte-identical to the wire format without
    exemplar support — the suffix is strictly additive.
    """
    if exemplar is None:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in exemplar.labels
    )
    suffix = f" # {{{inner}}} {_format_value(exemplar.value)}"
    if exemplar.timestamp_s is not None:
        suffix += f" {_format_value(exemplar.timestamp_s)}"
    return suffix


def encode_family(family: MetricFamily) -> str:
    """Encode one family, with # HELP and # TYPE headers."""
    lines: List[str] = [
        f"# HELP {family.name} {family.help_text}",
        f"# TYPE {family.name} {family.kind.value}",
    ]
    for values, child in family.children():
        labels = format_labels(family.label_names, values)
        if family.kind in (MetricKind.COUNTER, MetricKind.GAUGE):
            exemplar = _exemplar_suffix(getattr(child, "exemplar", None))
            lines.append(
                f"{family.name}{labels} {_format_value(child.value)}{exemplar}"
            )
        elif family.kind is MetricKind.HISTOGRAM:
            for index, (bound, cumulative) in enumerate(child.cumulative_buckets()):
                bucket_labels = format_labels(
                    family.label_names + ("le",),
                    values + (_format_value(bound),),
                )
                exemplar = _exemplar_suffix(child.exemplars.get(index))
                lines.append(
                    f"{family.name}_bucket{bucket_labels} {cumulative}{exemplar}"
                )
            lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
            lines.append(f"{family.name}_count{labels} {child.count}")
        elif family.kind is MetricKind.SUMMARY:
            for quantile, estimate in child.quantile_values():
                if math.isnan(estimate):
                    continue
                quantile_labels = format_labels(
                    family.label_names + ("quantile",),
                    values + (_format_value(quantile),),
                )
                lines.append(f"{family.name}{quantile_labels} {_format_value(estimate)}")
            lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
            lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines)


def encode_registry(registry: CollectorRegistry) -> str:
    """Encode a whole registry; ends with the OpenMetrics EOF marker."""
    sections = [encode_family(family) for family in registry.collect()]
    sections.append("# EOF")
    return "\n".join(sections) + "\n"
