"""Metric primitives with OpenMetrics semantics.

Each metric family has a name, help text and a label schema; concrete
children (one per label-value combination) hold the actual numbers.
Semantics follow the spec:

* **Counter** — monotonically non-decreasing; decrements raise;
* **Gauge** — arbitrary up/down;
* **Histogram** — cumulative buckets plus ``_sum`` and ``_count``;
* **Summary** — ``_sum`` / ``_count`` plus pre-computed quantiles.

Metric and label names are validated against the OpenMetrics grammar so a
bad exporter fails at construction, not at scrape time.
"""

from __future__ import annotations

import bisect
import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import OpenMetricsError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[str, ...]


@dataclass(frozen=True)
class Exemplar:
    """An OpenMetrics exemplar: one traced observation behind a sample.

    Rendered on the wire as ``# {trace_id="…",span_id="…"} value ts``
    after the sample value.  Counters keep the most recent exemplar;
    histograms keep one per bucket (the bucket the observation fell in),
    per the OpenMetrics spec.
    """

    labels: Tuple[Tuple[str, str], ...]
    value: float
    timestamp_s: Optional[float] = None

    @classmethod
    def of(cls, value: float, timestamp_s: Optional[float] = None,
           **labels: str) -> "Exemplar":
        """Build an exemplar from keyword labels (insertion order kept)."""
        return cls(labels=tuple(labels.items()), value=value,
                   timestamp_s=timestamp_s)

    def labels_dict(self) -> Dict[str, str]:
        """Labels as a dict."""
        return dict(self.labels)


class MetricKind(enum.Enum):
    """OpenMetrics metric families."""

    COUNTER = "counter"
    GAUGE = "gauge"
    HISTOGRAM = "histogram"
    SUMMARY = "summary"


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise OpenMetricsError(f"invalid metric name: {name!r}")
    return name


def _validate_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    for label in label_names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise OpenMetricsError(f"invalid label name: {label!r}")
    if len(set(label_names)) != len(label_names):
        raise OpenMetricsError(f"duplicate label names: {label_names}")
    return tuple(label_names)


class MetricFamily:
    """Base class: a named family of labelled children."""

    kind: MetricKind

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help_text = help_text
        self.label_names = _validate_labels(label_names)
        self._children: Dict[LabelValues, object] = {}
        # Label-less families expose their single child immediately (at its
        # zero value), as standard client libraries do — a counter that has
        # not yet been incremented still appears in the exposition.
        if not self.label_names:
            self.labels()

    def labels(self, *values: str, **kwvalues: str):
        """Get or create the child for a label-value combination."""
        if values and kwvalues:
            raise OpenMetricsError("pass labels positionally or by name, not both")
        if kwvalues:
            try:
                values = tuple(kwvalues[name] for name in self.label_names)
            except KeyError as exc:
                raise OpenMetricsError(f"missing label: {exc}") from None
            if set(kwvalues) != set(self.label_names):
                raise OpenMetricsError(
                    f"labels {sorted(kwvalues)} do not match schema {self.label_names}"
                )
        if len(values) != len(self.label_names):
            raise OpenMetricsError(
                f"{self.name}: expected {len(self.label_names)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):
        raise NotImplementedError

    def children(self) -> Iterable[Tuple[LabelValues, object]]:
        """All (label values, child) pairs, in insertion order."""
        return self._children.items()

    def clear(self) -> None:
        """Drop all children (exporter restart)."""
        self._children.clear()


class _CounterChild:
    """One counter time series."""

    def __init__(self) -> None:
        self.value = 0.0
        self.exemplar: Optional[Exemplar] = None

    def inc(self, amount: float = 1.0,
            exemplar: Optional[Exemplar] = None) -> None:
        """Increase; negative amounts violate counter semantics."""
        if amount < 0:
            raise OpenMetricsError(f"counter cannot decrease (inc by {amount})")
        self.value += amount
        if exemplar is not None:
            self.exemplar = exemplar

    def set_to(self, value: float) -> None:
        """Set to an absolute value; must not go backwards.

        Exporters mirroring an external cumulative counter (e.g. a driver's
        ``sgx_nr_evicted``) use this instead of tracking deltas themselves.
        """
        if value < self.value:
            raise OpenMetricsError(
                f"counter cannot decrease ({self.value} -> {value})"
            )
        self.value = value


class Counter(MetricFamily):
    """Monotonically non-decreasing metric family."""

    kind = MetricKind.COUNTER

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0,
            exemplar: Optional[Exemplar] = None) -> None:
        """Increment the unlabelled child."""
        self.labels().inc(amount, exemplar=exemplar)

    @property
    def value(self) -> float:
        """Value of the unlabelled child."""
        return self.labels().value


class _GaugeChild:
    """One gauge time series."""

    def __init__(self) -> None:
        self.value = 0.0

    def set_to(self, value: float) -> None:
        """Set the gauge."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract from the gauge."""
        self.value -= amount


class Gauge(MetricFamily):
    """Arbitrary up/down metric family."""

    kind = MetricKind.GAUGE

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set_to(self, value: float) -> None:
        """Set the unlabelled child."""
        self.labels().set_to(value)

    @property
    def value(self) -> float:
        """Value of the unlabelled child."""
        return self.labels().value


DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _HistogramChild:
    """One histogram time series: cumulative buckets + sum + count."""

    def __init__(self, upper_bounds: Sequence[float]) -> None:
        self.upper_bounds = list(upper_bounds)
        self.bucket_counts = [0] * (len(self.upper_bounds) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        #: Most recent exemplar per bucket index (+Inf bucket included).
        self.exemplars: Dict[int, Exemplar] = {}

    def observe(self, value: float,
                exemplar: Optional[Exemplar] = None) -> None:
        """Record one observation (optionally carrying an exemplar)."""
        index = bisect.bisect_left(self.upper_bounds, value)
        self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            self.exemplars[index] = exemplar

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        result = []
        running = 0
        for bound, count in zip(self.upper_bounds, self.bucket_counts):
            running += count
            result.append((bound, running))
        running += self.bucket_counts[-1]
        result.append((float("inf"), running))
        return result


class Histogram(MetricFamily):
    """Bucketed distribution family."""

    kind = MetricKind.HISTOGRAM

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        ordered = list(buckets)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise OpenMetricsError(f"histogram buckets must be strictly increasing: {buckets}")
        # Set before super().__init__: the base may eagerly create a child.
        self._buckets = tuple(ordered)
        super().__init__(name, help_text, label_names)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._buckets)

    def observe(self, value: float,
                exemplar: Optional[Exemplar] = None) -> None:
        """Observe into the unlabelled child."""
        self.labels().observe(value, exemplar=exemplar)


class _SummaryChild:
    """One summary time series with streaming quantile estimates.

    Keeps a bounded reservoir; exact for small streams, sampled beyond,
    which is the usual client-library trade-off.
    """

    RESERVOIR = 4096

    def __init__(self, quantiles: Sequence[float]) -> None:
        self.quantiles = list(quantiles)
        self.sum = 0.0
        self.count = 0
        self._window: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        if len(self._window) < self.RESERVOIR:
            self._window.append(value)
        else:
            # Deterministic decimation keeps the library seed-free here.
            index = self.count % self.RESERVOIR
            self._window[index] = value

    def quantile_values(self) -> List[Tuple[float, float]]:
        """(quantile, estimate) pairs for the configured quantiles."""
        if not self._window:
            return [(q, float("nan")) for q in self.quantiles]
        ordered = sorted(self._window)
        result = []
        for quantile in self.quantiles:
            position = min(len(ordered) - 1, int(quantile * len(ordered)))
            result.append((quantile, ordered[position]))
        return result


class Summary(MetricFamily):
    """Sum/count/quantiles family."""

    kind = MetricKind.SUMMARY
    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        for quantile in quantiles:
            if not 0.0 <= quantile <= 1.0:
                raise OpenMetricsError(f"quantile out of range: {quantile}")
        # Set before super().__init__: the base may eagerly create a child.
        self._quantiles = tuple(quantiles)
        super().__init__(name, help_text, label_names)

    def _new_child(self) -> _SummaryChild:
        return _SummaryChild(self._quantiles)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled child."""
        self.labels().observe(value)
