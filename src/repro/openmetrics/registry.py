"""Collector registry: the set of metric families an exporter exposes."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import OpenMetricsError
from repro.openmetrics.types import Counter, Gauge, Histogram, MetricFamily, Summary


class CollectorRegistry:
    """Holds metric families and optional collect-time callbacks.

    Callbacks registered with :meth:`on_collect` run before every encode,
    which is how exporters that mirror external state (driver counters,
    ``/proc`` files) refresh their gauges at scrape time — the pull model
    of the paper.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collect_callbacks: List[Callable[[], None]] = []

    def register(self, family: MetricFamily) -> MetricFamily:
        """Add a family; duplicate names are an error."""
        if family.name in self._families:
            raise OpenMetricsError(f"metric already registered: {family.name}")
        self._families[family.name] = family
        return family

    def unregister(self, name: str) -> None:
        """Remove a family."""
        if name not in self._families:
            raise OpenMetricsError(f"metric not registered: {name}")
        del self._families[name]

    def get(self, name: str) -> MetricFamily:
        """Look up a family by name."""
        try:
            return self._families[name]
        except KeyError:
            raise OpenMetricsError(f"metric not registered: {name}") from None

    def families(self) -> Iterable[MetricFamily]:
        """All families in registration order."""
        return list(self._families.values())

    def names(self) -> List[str]:
        """Registered family names."""
        return list(self._families)

    def on_collect(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` before every collection."""
        self._collect_callbacks.append(callback)

    def collect(self) -> Iterable[MetricFamily]:
        """Refresh via callbacks, then yield families."""
        for callback in self._collect_callbacks:
            callback()
        return self.families()

    # Convenience constructors -----------------------------------------
    def counter(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Counter:
        """Create and register a Counter."""
        return self.register(Counter(name, help_text, label_names))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Gauge:
        """Create and register a Gauge."""
        return self.register(Gauge(name, help_text, label_names))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Create and register a Histogram."""
        if buckets is None:
            return self.register(Histogram(name, help_text, label_names))  # type: ignore[return-value]
        return self.register(Histogram(name, help_text, label_names, buckets))  # type: ignore[return-value]

    def summary(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Summary:
        """Create and register a Summary."""
        return self.register(Summary(name, help_text, label_names))  # type: ignore[return-value]
