"""OpenMetrics: metric types, a registry, and the text exposition format.

TEEMon's exporters publish metrics "in the standard text-based format as
specified by the OpenMetrics project" (§4), which the aggregation
component scrapes and parses.  This package implements both directions:

* :mod:`repro.openmetrics.types` — Counter, Gauge, Histogram and Summary
  with label support and the usual semantic rules (counters only go up);
* :mod:`repro.openmetrics.registry` — a collector registry exporters
  expose;
* :mod:`repro.openmetrics.encoder` — render a registry to exposition text;
* :mod:`repro.openmetrics.parser` — parse exposition text back into
  samples (the aggregator's ingest path).
"""

from repro.openmetrics.encoder import encode_registry
from repro.openmetrics.parser import ParsedSample, parse_exposition
from repro.openmetrics.registry import CollectorRegistry
from repro.openmetrics.types import (
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricKind,
    Summary,
)

__all__ = [
    "MetricKind",
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "Exemplar",
    "CollectorRegistry",
    "encode_registry",
    "parse_exposition",
    "ParsedSample",
]
