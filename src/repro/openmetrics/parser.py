"""Parse OpenMetrics exposition text into samples.

This is the aggregator's ingest path: the scrape manager GETs an
exporter's endpoint and feeds the body through :func:`parse_exposition`,
getting back flat :class:`ParsedSample` records (name, labels, value,
optional exemplar) that the TSDB appends with the scrape timestamp.

Exemplars follow the OpenMetrics ``# {trace_id="…",span_id="…"} value ts``
syntax after the sample value; samples without one parse exactly as
before (``exemplar`` is None).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import OpenMetricsError
from repro.openmetrics.types import Exemplar


@dataclass(frozen=True)
class ParsedSample:
    """One sample line from an exposition."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    exemplar: Optional[Exemplar] = None

    def labels_dict(self) -> Dict[str, str]:
        """Labels as a dict."""
        return dict(self.labels)


def _parse_value(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text.lower() == "nan":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        raise OpenMetricsError(f"bad sample value: {text!r}") from None


def _parse_labels(text: str, line_no: int) -> Tuple[Tuple[str, str], ...]:
    labels: List[Tuple[str, str]] = []
    index = 0
    length = len(text)
    while index < length:
        eq = text.find("=", index)
        if eq < 0:
            raise OpenMetricsError(f"line {line_no}: malformed labels near {text[index:]!r}")
        name = text[index:eq].strip().strip(",").strip()
        if not name:
            raise OpenMetricsError(f"line {line_no}: empty label name")
        if eq + 1 >= length or text[eq + 1] != '"':
            raise OpenMetricsError(f"line {line_no}: label value must be quoted")
        # Scan the quoted value honouring escapes.
        value_chars: List[str] = []
        cursor = eq + 2
        while cursor < length:
            char = text[cursor]
            if char == "\\" and cursor + 1 < length:
                escape = text[cursor + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(escape, escape))
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        else:
            raise OpenMetricsError(f"line {line_no}: unterminated label value")
        labels.append((name, "".join(value_chars)))
        index = cursor + 1
        while index < length and text[index] in ", ":
            index += 1
    return tuple(labels)


def _find_closing_brace(text: str, line_no: int) -> int:
    """Index of the label set's closing brace, honouring quoted values."""
    in_quotes = False
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\\" and in_quotes:
            index += 2
            continue
        if char == '"':
            in_quotes = not in_quotes
        elif char == "}" and not in_quotes:
            return index
        index += 1
    raise OpenMetricsError(f"line {line_no}: unterminated label set")


def _parse_exemplar(text: str, line_no: int) -> Exemplar:
    """Parse the part after the exemplar's ``#``: ``{labels} value [ts]``."""
    text = text.strip()
    if not text.startswith("{"):
        raise OpenMetricsError(
            f"line {line_no}: exemplar must start with a label set"
        )
    rest = text[1:]
    close = _find_closing_brace(rest, line_no)
    labels = _parse_labels(rest[:close], line_no)
    pieces = rest[close + 1:].split()
    if not pieces:
        raise OpenMetricsError(f"line {line_no}: exemplar missing a value")
    value = _parse_value(pieces[0])
    timestamp_s = _parse_value(pieces[1]) if len(pieces) > 1 else None
    return Exemplar(labels=labels, value=value, timestamp_s=timestamp_s)


def _split_exemplar(value_part: str, line_no: int):
    """Split a sample's value field from an optional exemplar tail."""
    value_text, hash_mark, exemplar_text = value_part.partition("#")
    if not hash_mark:
        return value_part, None
    return value_text, _parse_exemplar(exemplar_text, line_no)


def parse_exposition(body: str) -> List[ParsedSample]:
    """Parse exposition text; comments and the EOF marker are skipped."""
    samples: List[ParsedSample] = []
    # Split on "\n" only: splitlines() would also split on exotic Unicode
    # line breaks (\\x1e, \\u2028, ...) that may appear inside label values.
    for line_no, raw_line in enumerate(body.split("\n"), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        # A label set starts immediately after the metric name (before any
        # space); a "{" later in the line belongs to an exemplar.
        brace = line.find("{")
        space = line.find(" ")
        if brace >= 0 and (space < 0 or brace < space):
            name_part, _, rest = line.partition("{")
            close = _find_closing_brace(rest, line_no)
            label_part, value_part = rest[:close], rest[close + 1:]
            name = name_part.strip()
            labels = _parse_labels(label_part, line_no)
            value_text, exemplar = _split_exemplar(value_part, line_no)
            value = _parse_value(value_text)
        else:
            value_text, exemplar = _split_exemplar(line, line_no)
            pieces = value_text.split()
            if len(pieces) < 2:
                raise OpenMetricsError(f"line {line_no}: malformed sample: {line!r}")
            name = pieces[0]
            labels = ()
            value = _parse_value(pieces[1])
        if not name:
            raise OpenMetricsError(f"line {line_no}: empty metric name")
        samples.append(ParsedSample(
            name=name, labels=labels, value=value, exemplar=exemplar,
        ))
    return samples
