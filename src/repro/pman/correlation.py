"""Correlation analysis and performance prediction.

§4: "PMAN can be further extended to perform more advanced analytics,
such as the correlation between SGX metrics and configuration parameters
of applications, or performance prediction."  Both extensions are
implemented here:

* :func:`correlate` — Pearson correlation between two query expressions
  over a shared time window (aligned on evaluation steps), answering
  questions like *does throughput drop when EPC evictions rise?*;
* :class:`CorrelationMatrix` — pairwise correlations over a metric set,
  the screening step before a deeper investigation;
* :class:`LinearPredictor` — ordinary least squares over windowed query
  series: fit throughput against the metrics PMAN already collects, then
  predict it for hypothetical metric values (the "what would eviction rate
  X cost us" question).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.pmag.query.engine import QueryEngine
from repro.simkernel.clock import NANOS_PER_SEC


def _aligned_series(
    engine: QueryEngine,
    queries: Sequence[str],
    start_ns: int,
    end_ns: int,
    step_ns: int,
) -> List[List[float]]:
    """Evaluate queries on a shared step grid; one value list per query.

    Each query must resolve to exactly one series over the window (use
    aggregations to collapse label sets first).
    """
    columns: List[List[float]] = []
    for query in queries:
        series_list = engine.range_query(query, start_ns, end_ns, step_ns)
        if len(series_list) != 1:
            raise AnalysisError(
                f"correlation query must yield one series, got "
                f"{len(series_list)}: {query!r}"
            )
        columns.append([s.value for s in series_list[0].samples])
    lengths = {len(c) for c in columns}
    if len(lengths) != 1:
        raise AnalysisError(f"queries produced unequal sample counts: {lengths}")
    return columns


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    if len(xs) != len(ys):
        raise AnalysisError("correlation needs equal-length sequences")
    n = len(xs)
    if n < 3:
        raise AnalysisError("correlation needs at least 3 points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise AnalysisError("correlation undefined for a constant series")
    return cov / math.sqrt(var_x * var_y)


def correlate(
    engine: QueryEngine,
    query_a: str,
    query_b: str,
    end_ns: int,
    window_ns: int = 5 * 60 * NANOS_PER_SEC,
    step_ns: int = 15 * NANOS_PER_SEC,
) -> float:
    """Pearson correlation of two queries over the trailing window."""
    start_ns = max(0, end_ns - window_ns)
    a, b = _aligned_series(engine, (query_a, query_b), start_ns, end_ns, step_ns)
    return pearson(a, b)


@dataclass
class CorrelationMatrix:
    """Pairwise correlations over a set of named queries."""

    names: Tuple[str, ...]
    values: Dict[Tuple[str, str], float]

    def get(self, a: str, b: str) -> float:
        """Correlation between two named queries (order-insensitive)."""
        if (a, b) in self.values:
            return self.values[(a, b)]
        if (b, a) in self.values:
            return self.values[(b, a)]
        raise AnalysisError(f"no correlation for pair ({a!r}, {b!r})")

    def strongest_pairs(self, limit: int = 5) -> List[Tuple[str, str, float]]:
        """Pairs ranked by |r| descending."""
        ranked = sorted(
            ((a, b, r) for (a, b), r in self.values.items()),
            key=lambda t: -abs(t[2]),
        )
        return ranked[:limit]

    @staticmethod
    def compute(
        engine: QueryEngine,
        queries: Dict[str, str],
        end_ns: int,
        window_ns: int = 5 * 60 * NANOS_PER_SEC,
        step_ns: int = 15 * NANOS_PER_SEC,
    ) -> "CorrelationMatrix":
        """All pairwise correlations over the window."""
        names = tuple(queries)
        start_ns = max(0, end_ns - window_ns)
        columns = _aligned_series(
            engine, [queries[n] for n in names], start_ns, end_ns, step_ns
        )
        values: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(names):
            for j in range(i + 1, len(names)):
                values[(a, names[j])] = pearson(columns[i], columns[j])
        return CorrelationMatrix(names=names, values=values)


@dataclass
class LinearPredictor:
    """OLS model: target ~ intercept + sum(coef_i * feature_i)."""

    feature_names: Tuple[str, ...]
    coefficients: Tuple[float, ...]
    intercept: float
    r_squared: float

    def predict(self, features: Dict[str, float]) -> float:
        """Predict the target for given feature values."""
        missing = set(self.feature_names) - set(features)
        if missing:
            raise AnalysisError(f"missing features: {sorted(missing)}")
        return self.intercept + sum(
            coef * features[name]
            for name, coef in zip(self.feature_names, self.coefficients)
        )

    @staticmethod
    def fit(
        engine: QueryEngine,
        target_query: str,
        feature_queries: Dict[str, str],
        end_ns: int,
        window_ns: int = 5 * 60 * NANOS_PER_SEC,
        step_ns: int = 15 * NANOS_PER_SEC,
    ) -> "LinearPredictor":
        """Fit from windowed query series (normal equations, pure Python)."""
        if not feature_queries:
            raise AnalysisError("predictor needs at least one feature")
        names = tuple(feature_queries)
        start_ns = max(0, end_ns - window_ns)
        columns = _aligned_series(
            engine,
            [target_query] + [feature_queries[n] for n in names],
            start_ns, end_ns, step_ns,
        )
        y = columns[0]
        xs = columns[1:]
        n = len(y)
        k = len(xs) + 1  # + intercept
        if n <= k:
            raise AnalysisError(
                f"need more samples ({n}) than parameters ({k})"
            )
        # Build X^T X and X^T y with an intercept column of ones.
        design = [[1.0] + [col[row] for col in xs] for row in range(n)]
        xtx = [[sum(design[r][i] * design[r][j] for r in range(n))
                for j in range(k)] for i in range(k)]
        xty = [sum(design[r][i] * y[r] for r in range(n)) for i in range(k)]
        beta = _solve(xtx, xty)
        predictions = [
            sum(b * design[r][i] for i, b in enumerate(beta)) for r in range(n)
        ]
        mean_y = sum(y) / n
        ss_total = sum((v - mean_y) ** 2 for v in y)
        ss_resid = sum((v - p) ** 2 for v, p in zip(y, predictions))
        r_squared = 1.0 - (ss_resid / ss_total if ss_total > 0 else 0.0)
        return LinearPredictor(
            feature_names=names,
            coefficients=tuple(beta[1:]),
            intercept=beta[0],
            r_squared=r_squared,
        )


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting."""
    n = len(matrix)
    augmented = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(augmented[r][col]))
        if abs(augmented[pivot_row][col]) < 1e-12:
            raise AnalysisError(
                "singular design matrix (collinear or constant features)"
            )
        augmented[col], augmented[pivot_row] = augmented[pivot_row], augmented[col]
        pivot = augmented[col][col]
        for r in range(n):
            if r == col:
                continue
            factor = augmented[r][col] / pivot
            for c in range(col, n + 1):
                augmented[r][c] -= factor * augmented[col][c]
    return [augmented[i][n] / augmented[i][i] for i in range(n)]
