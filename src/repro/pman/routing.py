"""Alert routing and silences (Alertmanager-style).

The base :class:`~repro.pman.alerts.AlertManager` fans out every event to
every sink.  Production deployments need more: route critical alerts to a
pager, warnings to a log, silence a noisy rule during maintenance.  This
module layers both on top without changing the manager:

* a :class:`Route` matches alerts (by severity and/or label matchers) and
  owns its sinks; a :class:`Router` is an AlertSink that dispatches events
  down the first matching route (with an optional catch-all);
* a :class:`Silence` suppresses matching alerts for a time window; the
  router consults its :class:`SilenceRegistry` before delivering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.pmag.model import Matcher
from repro.pman.alerts import Alert, AlertSeverity, AlertSink


@dataclass
class Silence:
    """Suppression window for matching alerts."""

    matchers: Sequence[Matcher]
    starts_at_ns: int
    ends_at_ns: int
    created_by: str = ""
    comment: str = ""

    def __post_init__(self) -> None:
        if self.ends_at_ns <= self.starts_at_ns:
            raise AnalysisError("silence must end after it starts")
        if not self.matchers:
            raise AnalysisError("silence needs at least one matcher")

    def active_at(self, time_ns: int) -> bool:
        """Whether the window covers ``time_ns``."""
        return self.starts_at_ns <= time_ns < self.ends_at_ns

    def matches(self, alert: Alert) -> bool:
        """Whether the alert's labels satisfy every matcher."""
        return all(m.matches(alert.labels) for m in self.matchers)


class SilenceRegistry:
    """Active silences, consulted at delivery time."""

    def __init__(self) -> None:
        self._silences: List[Silence] = []
        self.suppressed_count = 0

    def add(self, silence: Silence) -> Silence:
        """Register a silence."""
        self._silences.append(silence)
        return silence

    def expire(self, silence: Silence, now_ns: int) -> None:
        """End a silence early."""
        if silence not in self._silences:
            raise AnalysisError("unknown silence")
        silence.ends_at_ns = min(silence.ends_at_ns, max(now_ns, silence.starts_at_ns + 1))

    def silenced(self, alert: Alert, now_ns: int) -> bool:
        """Whether any active silence suppresses this alert."""
        for silence in self._silences:
            if silence.active_at(now_ns) and silence.matches(alert):
                self.suppressed_count += 1
                return True
        return False

    def active(self, now_ns: int) -> List[Silence]:
        """Silences covering ``now_ns``."""
        return [s for s in self._silences if s.active_at(now_ns)]


@dataclass
class Route:
    """One routing rule: match conditions + sinks."""

    name: str
    sinks: List[AlertSink] = field(default_factory=list)
    min_severity: Optional[AlertSeverity] = None
    matchers: Sequence[Matcher] = ()
    #: Continue evaluating later routes after a match (Alertmanager's
    #: `continue: true`).
    continue_matching: bool = False
    delivered: int = 0

    _SEVERITY_ORDER = {
        AlertSeverity.INFO: 0,
        AlertSeverity.WARNING: 1,
        AlertSeverity.CRITICAL: 2,
    }

    def matches(self, alert: Alert) -> bool:
        """Whether this route accepts the alert."""
        if self.min_severity is not None:
            if (self._SEVERITY_ORDER[alert.severity]
                    < self._SEVERITY_ORDER[self.min_severity]):
                return False
        return all(m.matches(alert.labels) for m in self.matchers)

    def deliver(self, alert: Alert, event: str) -> None:
        """Send to every sink of this route."""
        self.delivered += 1
        for sink in self.sinks:
            sink(alert, event)


class Router:
    """An AlertSink that routes events and honours silences.

    Attach it to an :class:`~repro.pman.alerts.AlertManager` with
    ``manager.add_sink(router.sink(clock))``.
    """

    def __init__(self, silences: Optional[SilenceRegistry] = None) -> None:
        self._routes: List[Route] = []
        self.silences = silences if silences is not None else SilenceRegistry()
        self.unrouted: List[Alert] = []

    def add_route(self, route: Route) -> Route:
        """Append a route (evaluated in order)."""
        if any(r.name == route.name for r in self._routes):
            raise AnalysisError(f"route name in use: {route.name}")
        self._routes.append(route)
        return route

    def routes(self) -> List[Route]:
        """Registered routes, in evaluation order."""
        return list(self._routes)

    def dispatch(self, alert: Alert, event: str, now_ns: int) -> List[str]:
        """Route one event; returns the names of routes that delivered.

        Resolve events bypass silences — operators always hear the
        all-clear, even during a maintenance window.
        """
        if event == "fire" and self.silences.silenced(alert, now_ns):
            return []
        delivered: List[str] = []
        for route in self._routes:
            if not route.matches(alert):
                continue
            route.deliver(alert, event)
            delivered.append(route.name)
            if not route.continue_matching:
                break
        if not delivered and event == "fire":
            self.unrouted.append(alert)
        return delivered

    def sink(self, clock) -> AlertSink:
        """Adapt to the AlertManager sink signature."""
        def _sink(alert: Alert, event: str) -> None:
            self.dispatch(alert, event, clock.now_ns)
        return _sink


def webhook_sink(network, url: str) -> AlertSink:
    """An AlertSink delivering events as JSON webhooks over POST.

    Receivers (a chat bridge, an incident tracker) register a POST handler
    on the simulated network.  Delivery failures are swallowed — alerting
    must never take the analyzer down — but counted on the returned
    function (``delivered`` / ``failed`` attributes) for observability.
    """
    import json

    def _sink(alert: Alert, event: str) -> None:
        payload = json.dumps({
            "event": event,
            "alert": alert.name,
            "severity": alert.severity.value,
            "message": alert.message,
            "labels": dict(alert.labels.items()),
            "fired_at_ns": alert.fired_at_ns,
            "resolved_at_ns": alert.resolved_at_ns,
        })
        response = network.post_url(url, payload)
        if response.ok:
            _sink.delivered += 1  # type: ignore[attr-defined]
        else:
            _sink.failed += 1  # type: ignore[attr-defined]

    _sink.delivered = 0  # type: ignore[attr-defined]
    _sink.failed = 0  # type: ignore[attr-defined]
    return _sink
