"""User-defined threshold rules.

"We make use of threshold-based approaches to detect anomalies in
monitoring data.  We identified these thresholds using benchmarking with
real-world SGX-based applications." (§4)

A rule is a query plus a comparison; evaluating it against a window yields
one :class:`Violation` per label set whose *latest* value breaks the
threshold (optionally required to hold for a minimum duration, like
Prometheus alert ``for:`` clauses).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import AnalysisError
from repro.pmag.model import Labels
from repro.pman.window import WindowResult

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class Violation:
    """One label set breaking a rule."""

    rule_name: str
    labels: Labels
    value: float
    threshold: float
    message: str


@dataclass(frozen=True)
class ThresholdRule:
    """A named threshold over a query."""

    name: str
    query: str
    op: str
    threshold: float
    severity: str = "warning"
    description: str = ""
    #: Fraction of window points that must break the threshold (0 = only
    #: the latest point matters; 1.0 = the whole window must break it).
    sustained_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise AnalysisError(f"rule {self.name!r}: unknown operator {self.op!r}")
        if not 0.0 <= self.sustained_fraction <= 1.0:
            raise AnalysisError(
                f"rule {self.name!r}: sustained_fraction out of range"
            )

    def check(self, window: WindowResult) -> List[Violation]:
        """Violations of this rule in an evaluated window."""
        compare = _OPS[self.op]
        violations: List[Violation] = []
        for labels, values in window.values_by_labels().items():
            if not values:
                continue
            latest = values[-1]
            if not compare(latest, self.threshold):
                continue
            if self.sustained_fraction > 0.0:
                breaking = sum(1 for v in values if compare(v, self.threshold))
                if breaking / len(values) < self.sustained_fraction:
                    continue
            violations.append(
                Violation(
                    rule_name=self.name,
                    labels=labels,
                    value=latest,
                    threshold=self.threshold,
                    message=(
                        f"{self.name}: {labels!r} = {latest:g} {self.op} "
                        f"{self.threshold:g}"
                        + (f" ({self.description})" if self.description else "")
                    ),
                )
            )
        return violations
