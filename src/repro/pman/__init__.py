"""Performance Metrics Analysis (the paper's PMAN component).

"PMAN analyzes the time-series monitoring data using slide window
computations, e.g., it processes every minute for the last five minutes of
the monitoring data.  In each time window, PMAN not only compares the
monitoring data with user-defined thresholds to detect anomalies but also
provides a box plot for SGX metrics.  PMAN supports handling anomalies in
several ways including alerting, dashboard updating, and logging." (§4)

Modules:

* :mod:`repro.pman.window` — sliding-window evaluation over the query engine;
* :mod:`repro.pman.thresholds` — user-defined threshold rules;
* :mod:`repro.pman.anomaly` — threshold + statistical (z-score/MAD) detectors;
* :mod:`repro.pman.boxplot` — five-number summaries with outliers;
* :mod:`repro.pman.alerts` — alert lifecycle (fire, dedup, resolve) and sinks;
* :mod:`repro.pman.analyzer` — the periodic analysis loop tying it together,
  including the default SGX bottleneck rules derived from the paper's
  findings (syscall-dominance, EPC pressure, context-switch storms).
"""

from repro.pman.alerts import Alert, AlertManager, AlertSeverity
from repro.pman.analyzer import PmanAnalyzer, default_sgx_rules
from repro.pman.boxplot import BoxPlot
from repro.pman.thresholds import ThresholdRule
from repro.pman.window import SlidingWindow

__all__ = [
    "SlidingWindow",
    "ThresholdRule",
    "BoxPlot",
    "Alert",
    "AlertSeverity",
    "AlertManager",
    "PmanAnalyzer",
    "default_sgx_rules",
]
