"""Statistical anomaly detectors.

The paper's PMAN is threshold-based but "can be further extended to
perform more advanced analytics" (§4).  Two standard extensions are
implemented, both window-local and parameter-free beyond a sensitivity:

* :class:`ZScoreDetector` — flags points more than k standard deviations
  from the window mean;
* :class:`MadDetector` — the robust variant using the median absolute
  deviation, resilient to the very outliers it hunts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import AnalysisError
from repro.pmag.model import Labels
from repro.pman.window import WindowResult


@dataclass(frozen=True)
class AnomalousPoint:
    """One flagged (labels, value) pair with its deviation score."""

    labels: Labels
    value: float
    score: float


class ZScoreDetector:
    """Flags values with |z| above a sensitivity threshold."""

    def __init__(self, sensitivity: float = 3.0) -> None:
        if sensitivity <= 0:
            raise AnalysisError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = sensitivity

    @staticmethod
    def _scores(values: Sequence[float]) -> List[float]:
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        stddev = math.sqrt(variance)
        if stddev == 0:
            return [0.0] * n
        return [(v - mean) / stddev for v in values]

    def detect(self, window: WindowResult) -> List[AnomalousPoint]:
        """Anomalous points across all series in the window."""
        flagged: List[AnomalousPoint] = []
        for labels, values in window.values_by_labels().items():
            if len(values) < 3:
                continue
            for value, score in zip(values, self._scores(values)):
                if abs(score) >= self.sensitivity:
                    flagged.append(AnomalousPoint(labels, value, score))
        return flagged


class MadDetector:
    """Median-absolute-deviation detector (robust z-score)."""

    #: Consistency constant making MAD comparable to a standard deviation.
    SCALE = 1.4826

    def __init__(self, sensitivity: float = 3.5) -> None:
        if sensitivity <= 0:
            raise AnalysisError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = sensitivity

    @staticmethod
    def _median(values: Sequence[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def detect(self, window: WindowResult) -> List[AnomalousPoint]:
        """Anomalous points using robust deviation scores."""
        flagged: List[AnomalousPoint] = []
        for labels, values in window.values_by_labels().items():
            if len(values) < 3:
                continue
            median = self._median(values)
            mad = self._median([abs(v - median) for v in values])
            if mad == 0:
                continue
            for value in values:
                score = (value - median) / (self.SCALE * mad)
                if abs(score) >= self.sensitivity:
                    flagged.append(AnomalousPoint(labels, value, score))
        return flagged
