"""Alert lifecycle and delivery.

"PMAN supports handling anomalies in several ways including alerting,
dashboard updating, and logging." (§4)  The :class:`AlertManager` owns the
lifecycle — firing, deduplication while active, resolution when the
condition clears — and fans out to pluggable sinks.  Two sinks ship: an
in-memory log (the "logging" path; also what tests assert against) and a
callback sink the PMV dashboards use for annotations (the "dashboard
updating" path).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.pmag.model import Labels


class AlertSeverity(enum.Enum):
    """Severity levels."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    @staticmethod
    def parse(text: str) -> "AlertSeverity":
        """Parse a severity string (rule files use lowercase names)."""
        return AlertSeverity(text.lower())


@dataclass
class Alert:
    """One alert instance."""

    name: str
    labels: Labels
    severity: AlertSeverity
    message: str
    fired_at_ns: int
    value: float = 0.0
    resolved_at_ns: Optional[int] = None

    @property
    def active(self) -> bool:
        """Whether the alert has not yet resolved."""
        return self.resolved_at_ns is None

    def key(self) -> Tuple[str, Labels]:
        """Deduplication identity."""
        return (self.name, self.labels)


AlertSink = Callable[[Alert, str], None]  # (alert, event) where event is fire|resolve


class AlertManager:
    """Fires, deduplicates and resolves alerts; fans out to sinks."""

    def __init__(self) -> None:
        self._active: Dict[Tuple[str, Labels], Alert] = {}
        self._history: List[Alert] = []
        self._sinks: List[AlertSink] = []
        self.log: List[str] = []
        self.add_sink(self._log_sink)

    def add_sink(self, sink: AlertSink) -> None:
        """Register a delivery sink."""
        self._sinks.append(sink)

    def _log_sink(self, alert: Alert, event: str) -> None:
        self.log.append(
            f"[{event.upper()}] {alert.severity.value}: {alert.message}"
        )

    def fire(
        self,
        name: str,
        labels: Labels,
        severity: AlertSeverity,
        message: str,
        now_ns: int,
        value: float = 0.0,
    ) -> Alert:
        """Fire (or refresh) an alert; active duplicates are not re-sent."""
        key = (name, labels)
        existing = self._active.get(key)
        if existing is not None:
            existing.value = value  # refresh the observed value
            return existing
        alert = Alert(
            name=name, labels=labels, severity=severity,
            message=message, fired_at_ns=now_ns, value=value,
        )
        self._active[key] = alert
        self._history.append(alert)
        for sink in self._sinks:
            sink(alert, "fire")
        return alert

    def resolve(self, name: str, labels: Labels, now_ns: int) -> Optional[Alert]:
        """Resolve an active alert; returns it, or None if not active."""
        alert = self._active.pop((name, labels), None)
        if alert is None:
            return None
        alert.resolved_at_ns = now_ns
        for sink in self._sinks:
            sink(alert, "resolve")
        return alert

    def resolve_absent(
        self, name: str, still_firing: List[Labels], now_ns: int
    ) -> List[Alert]:
        """Resolve every active alert of ``name`` not in ``still_firing``."""
        current = set(still_firing)
        resolved = []
        for key in list(self._active):
            rule_name, labels = key
            if rule_name == name and labels not in current:
                resolved.append(self.resolve(rule_name, labels, now_ns))
        return [a for a in resolved if a is not None]

    def active_alerts(self) -> List[Alert]:
        """Currently firing alerts."""
        return list(self._active.values())

    def history(self) -> List[Alert]:
        """All alerts ever fired, in firing order."""
        return list(self._history)
