"""The periodic PMAN analysis loop.

Every minute (configurable), the analyzer evaluates each rule's query over
the trailing five-minute window, fires/resolves alerts through the
:class:`~repro.pman.alerts.AlertManager`, and refreshes box-plot summaries
for the configured SGX metrics — exactly the behaviour §4 describes.

:func:`default_sgx_rules` encodes the bottleneck signatures the paper's
evaluation surfaces:

* **syscall dominance** — ``clock_gettime``/``futex`` rates dwarfing
  ``read``/``write`` indicate an enclave-exit bottleneck (§6.4 found
  clock_gettime peaking at 370 k/s, 10× the I/O syscalls);
* **EPC pressure** — sustained eviction rates mean the working set has
  outgrown the ~94 MB EPC (§6.5, Figure 11(d));
* **context-switch storms** — host-wide switch rates far above the
  process's own indicate framework-induced churn (Graphene in Fig. 11(f));
* **scrape health** — any ``up == 0`` target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.pmag.query.engine import QueryEngine
from repro.pman.alerts import AlertManager, AlertSeverity
from repro.pman.boxplot import BoxPlot
from repro.pman.thresholds import ThresholdRule, Violation
from repro.pman.window import DEFAULT_EVERY_NS, DEFAULT_WINDOW_NS, SlidingWindow
from repro.simkernel.clock import VirtualClock


def default_sgx_rules() -> List[ThresholdRule]:
    """The built-in bottleneck rules derived from the paper's findings."""
    return [
        ThresholdRule(
            name="ClockGettimeDominance",
            query='rate(ebpf_syscalls_total{name="clock_gettime"}[5m])',
            op=">",
            threshold=50_000.0,
            severity="warning",
            description="clock_gettime storm: every call exits the enclave",
        ),
        ThresholdRule(
            name="FutexDominance",
            query='rate(ebpf_syscalls_total{name="futex"}[5m])',
            op=">",
            threshold=50_000.0,
            severity="warning",
            description="futex storm: thread synchronisation crosses the enclave boundary",
        ),
        ThresholdRule(
            name="EpcEvictionPressure",
            query="rate(sgx_epc_pages_evicted_total[5m])",
            op=">",
            threshold=1_000.0,
            severity="critical",
            description="working set exceeds the usable EPC (~94 MB); paging is expensive",
        ),
        ThresholdRule(
            name="EpcNearlyFull",
            query="sgx_epc_free_pages",
            op="<",
            threshold=512.0,
            severity="warning",
            description="free EPC pages below 2 MB",
        ),
        ThresholdRule(
            name="ContextSwitchStorm",
            query="rate(ebpf_context_switches_total[5m])",
            op=">",
            threshold=100_000.0,
            severity="warning",
            description="host-wide context-switch storm (check ksgxswapd and enclave exits)",
        ),
        ThresholdRule(
            name="TargetDown",
            query="1 - up",
            op=">",
            threshold=0.5,
            severity="critical",
            description="scrape target unreachable",
            sustained_fraction=0.0,
        ),
    ]


#: SGX metrics summarised as box plots each window (§4).
DEFAULT_BOXPLOT_METRICS = (
    "sgx_epc_free_pages",
    "rate(sgx_epc_pages_evicted_total[5m])",
    "rate(ebpf_page_faults_total[5m])",
)


@dataclass
class AnalysisReport:
    """Output of one analysis cycle."""

    time_ns: int
    violations: List[Violation]
    boxplots: Dict[str, BoxPlot]

    def render(self, width: int = 60) -> str:
        """Human-readable report: violations first, then the box plots."""
        lines = [f"── PMAN analysis @ {self.time_ns / 1e9:.0f}s ──"]
        if self.violations:
            lines.append(f"violations ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"  ! {violation.message}")
        else:
            lines.append("violations: none")
        for query, box in self.boxplots.items():
            lines.append(f"boxplot {query}:")
            lines.append("  " + box.render(width))
        return "\n".join(lines)


class PmanAnalyzer:
    """Periodic rule evaluation + box-plot refresh."""

    def __init__(
        self,
        clock: VirtualClock,
        engine: QueryEngine,
        rules: Optional[Sequence[ThresholdRule]] = None,
        boxplot_queries: Sequence[str] = DEFAULT_BOXPLOT_METRICS,
        window_ns: int = DEFAULT_WINDOW_NS,
        every_ns: int = DEFAULT_EVERY_NS,
    ) -> None:
        if every_ns <= 0:
            raise AnalysisError("analysis cadence must be positive")
        self._clock = clock
        self._engine = engine
        self.rules = list(rules) if rules is not None else default_sgx_rules()
        self.boxplot_queries = list(boxplot_queries)
        self.window_ns = window_ns
        self.every_ns = every_ns
        self.alerts = AlertManager()
        self.reports: List[AnalysisReport] = []
        self._timer = None
        self._running = False

    # ------------------------------------------------------------------
    def analyze_once(self) -> AnalysisReport:
        """Run one analysis cycle now."""
        now = self._clock.now_ns
        violations: List[Violation] = []
        for rule in self.rules:
            window = SlidingWindow(
                self._engine, rule.query, window_ns=self.window_ns
            ).evaluate(now)
            rule_violations = rule.check(window)
            violations.extend(rule_violations)
            firing_labels = [v.labels for v in rule_violations]
            for violation in rule_violations:
                self.alerts.fire(
                    name=rule.name,
                    labels=violation.labels,
                    severity=AlertSeverity.parse(rule.severity),
                    message=violation.message,
                    now_ns=now,
                    value=violation.value,
                )
            self.alerts.resolve_absent(rule.name, firing_labels, now)

        boxplots: Dict[str, BoxPlot] = {}
        for query in self.boxplot_queries:
            window = SlidingWindow(
                self._engine, query, window_ns=self.window_ns
            ).evaluate(now)
            values = window.all_values()
            if values:
                boxplots[query] = BoxPlot.from_values(values)

        report = AnalysisReport(time_ns=now, violations=violations, boxplots=boxplots)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic analysis on the virtual clock."""
        if self._running:
            raise AnalysisError("analyzer already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop periodic analysis."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._timer = self._clock.call_later(self.every_ns, self._on_tick)

    def _on_tick(self) -> None:
        self.analyze_once()
        self._schedule_next()
