"""Sliding-window evaluation over the TSDB."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.pmag.model import Labels, Series
from repro.pmag.query.engine import QueryEngine
from repro.simkernel.clock import NANOS_PER_SEC

DEFAULT_WINDOW_NS = 5 * 60 * NANOS_PER_SEC   # "the last five minutes"
DEFAULT_EVERY_NS = 60 * NANOS_PER_SEC        # "every minute"


@dataclass
class WindowResult:
    """One evaluation of a window: per-label-set sample series."""

    query: str
    start_ns: int
    end_ns: int
    series: List[Series]

    def values_by_labels(self) -> Dict[Labels, List[float]]:
        """Flatten to label-set -> list of values."""
        return {s.labels: [p.value for p in s.samples] for s in self.series}

    def all_values(self) -> List[float]:
        """Every value across all series."""
        return [p.value for s in self.series for p in s.samples]


class SlidingWindow:
    """Evaluates a query over the trailing window at a fixed cadence."""

    def __init__(
        self,
        engine: QueryEngine,
        query: str,
        window_ns: int = DEFAULT_WINDOW_NS,
        step_ns: int = 15 * NANOS_PER_SEC,
    ) -> None:
        if window_ns <= 0 or step_ns <= 0:
            raise AnalysisError("window and step must be positive")
        if step_ns > window_ns:
            raise AnalysisError(
                f"step ({step_ns}) larger than window ({window_ns})"
            )
        self._engine = engine
        self.query = query
        self.window_ns = window_ns
        self.step_ns = step_ns

    def evaluate(self, now_ns: int) -> WindowResult:
        """Evaluate the query over [now - window, now]."""
        start_ns = max(0, now_ns - self.window_ns)
        series = self._engine.range_query(self.query, start_ns, now_ns, self.step_ns)
        return WindowResult(
            query=self.query, start_ns=start_ns, end_ns=now_ns, series=series
        )
