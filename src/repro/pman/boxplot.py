"""Box-plot summaries.

PMAN "provides a box plot for SGX metrics" in each analysis window (§4).
A :class:`BoxPlot` is the standard five-number summary with 1.5×IQR
whiskers and explicit outliers, plus an ASCII rendering for terminal
output (the PMV component renders the graphical version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import AnalysisError
from repro.pmag.query.functions import quantile_of


@dataclass(frozen=True)
class BoxPlot:
    """Five-number summary with outliers."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple
    count: int

    @staticmethod
    def from_values(values: Sequence[float]) -> "BoxPlot":
        """Summarise a non-empty value list."""
        if not values:
            raise AnalysisError("box plot of an empty value list")
        data = sorted(values)
        q1 = quantile_of(list(data), 0.25)
        median = quantile_of(list(data), 0.5)
        q3 = quantile_of(list(data), 0.75)
        iqr = q3 - q1
        low_fence = q1 - 1.5 * iqr
        high_fence = q3 + 1.5 * iqr
        inliers = [v for v in data if low_fence <= v <= high_fence]
        outliers = tuple(v for v in data if v < low_fence or v > high_fence)
        whisker_low = min(inliers) if inliers else data[0]
        whisker_high = max(inliers) if inliers else data[-1]
        return BoxPlot(
            minimum=data[0],
            q1=q1,
            median=median,
            q3=q3,
            maximum=data[-1],
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            outliers=outliers,
            count=len(data),
        )

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def render(self, width: int = 60) -> str:
        """One-line ASCII box plot."""
        span = self.maximum - self.minimum
        if span <= 0:
            return "|" + "=" * 3 + f"| (constant at {self.median:g}, n={self.count})"

        def pos(value: float) -> int:
            return int((value - self.minimum) / span * (width - 1))

        line = [" "] * width
        for index in range(pos(self.whisker_low), pos(self.whisker_high) + 1):
            line[index] = "-"
        for index in range(pos(self.q1), pos(self.q3) + 1):
            line[index] = "="
        line[pos(self.median)] = "#"
        line[pos(self.whisker_low)] = "|"
        line[pos(self.whisker_high)] = "|"
        for outlier in self.outliers:
            line[pos(outlier)] = "o"
        return (
            "".join(line)
            + f"  [min={self.minimum:g} q1={self.q1:g} med={self.median:g} "
            + f"q3={self.q3:g} max={self.maximum:g} n={self.count}]"
        )
