"""Kernel instrumentation hooks: tracepoints, kprobes and perf events.

TEEMon's System Metrics Exporter attaches small eBPF programs to a fixed
set of kernel hooks (Table 2 of the paper).  This module models those
attachment points.  Kernel subsystems *fire* hooks as a side effect of their
work (the syscall dispatcher fires ``raw_syscalls:sys_enter``, the scheduler
fires ``sched:sched_switches``, ...), and observers — the eBPF VM, tests —
*attach* callbacks.

Hook firings carry a ``count`` multiplicity so workloads can be simulated in
aggregate batches without losing anything the monitoring pipeline could
observe: TEEMon's programs only ever count events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.errors import HookError


class HookKind(enum.Enum):
    """The three instrumentation mechanisms used in Table 2."""

    TRACEPOINT = "tracepoint"
    KPROBE = "kprobe"
    PERF_EVENT = "perf_event"


# The hook catalogue: exactly the instrumentation points TEEMon uses
# (paper, Table 2), plus the scheduler/driver internals they hang off.
TABLE2_HOOKS: Dict[str, HookKind] = {
    # System-call metrics
    "raw_syscalls:sys_enter": HookKind.TRACEPOINT,
    "raw_syscalls:sys_exit": HookKind.TRACEPOINT,
    # Page-cache metrics
    "add_to_page_cache_lru": HookKind.KPROBE,
    "mark_page_accessed": HookKind.KPROBE,
    "account_page_dirtied": HookKind.KPROBE,
    "mark_buffer_dirty": HookKind.KPROBE,
    # Hardware cache counters
    "PERF_COUNT_HW_CACHE_MISSES": HookKind.PERF_EVENT,
    "PERF_COUNT_HW_CACHE_REFERENCES": HookKind.PERF_EVENT,
    # Context switches
    "PERF_COUNT_SW_CONTEXT_SWITCHES": HookKind.PERF_EVENT,
    "sched:sched_switches": HookKind.TRACEPOINT,
    # Page faults
    "PERF_COUNT_SW_PAGE_FAULTS": HookKind.PERF_EVENT,
    "exceptions:page_fault_user": HookKind.TRACEPOINT,
    "exceptions:page_fault_kernel": HookKind.TRACEPOINT,
}


@dataclass(frozen=True)
class HookContext:
    """Payload delivered to hook observers.

    ``fields`` carries hook-specific data (``pid``, ``syscall_nr``,
    ``fault_kind``, ...).  ``count`` is the event multiplicity of this
    firing; observers that count events must add ``count``, not 1.
    """

    hook: str
    time_ns: int
    count: int = 1
    fields: Mapping[str, object] = field(default_factory=dict)

    def get(self, key: str, default: object = None) -> object:
        """Convenience accessor into :attr:`fields`."""
        return self.fields.get(key, default)


@dataclass(frozen=True)
class AttachmentHandle:
    """Returned by :meth:`HookRegistry.attach`; detaches the observer."""

    hook: str
    index: int
    _registry: "HookRegistry" = field(repr=False, compare=False)

    def detach(self) -> None:
        """Remove the observer; it will not see subsequent firings."""
        self._registry._detach(self)


class HookRegistry:
    """Registry of hook points and their attached observers."""

    def __init__(self, catalogue: Optional[Mapping[str, HookKind]] = None) -> None:
        self._kinds: Dict[str, HookKind] = dict(
            TABLE2_HOOKS if catalogue is None else catalogue
        )
        self._observers: Dict[str, Dict[int, Callable[[HookContext], None]]] = {
            name: {} for name in self._kinds
        }
        self._next_index = 0
        self._fire_counts: Dict[str, int] = {name: 0 for name in self._kinds}

    def register(self, name: str, kind: HookKind) -> None:
        """Add a new hook point (e.g. an SGX-driver internal function)."""
        if name in self._kinds:
            raise HookError(f"hook already registered: {name}")
        self._kinds[name] = kind
        self._observers[name] = {}
        self._fire_counts[name] = 0

    def kind_of(self, name: str) -> HookKind:
        """Return the mechanism backing a hook."""
        try:
            return self._kinds[name]
        except KeyError:
            raise HookError(f"unknown hook: {name}") from None

    def names(self, kind: Optional[HookKind] = None) -> List[str]:
        """All hook names, optionally filtered by mechanism."""
        if kind is None:
            return sorted(self._kinds)
        return sorted(n for n, k in self._kinds.items() if k is kind)

    def attach(self, name: str, observer: Callable[[HookContext], None]) -> AttachmentHandle:
        """Attach ``observer`` to the hook ``name``."""
        if name not in self._kinds:
            raise HookError(f"unknown hook: {name}")
        index = self._next_index
        self._next_index += 1
        self._observers[name][index] = observer
        return AttachmentHandle(name, index, self)

    def _detach(self, handle: AttachmentHandle) -> None:
        self._observers.get(handle.hook, {}).pop(handle.index, None)

    def observer_count(self, name: str) -> int:
        """Number of observers currently attached to a hook."""
        if name not in self._kinds:
            raise HookError(f"unknown hook: {name}")
        return len(self._observers[name])

    def fire(
        self,
        name: str,
        time_ns: int,
        count: int = 1,
        **fields: object,
    ) -> None:
        """Fire a hook with multiplicity ``count``.

        Firing an unregistered hook is an error: it means a kernel subsystem
        and the hook catalogue disagree, which would silently lose metrics.

        Zero and one attached observers are fast-pathed: most of the Table-2
        hooks have nothing attached during app simulation, and the attached
        ones almost always have exactly the eBPF VM — neither case needs the
        defensive snapshot of the observer dict (taken only when several
        observers could detach each other mid-dispatch), and the zero case
        allocates no :class:`HookContext` at all.
        """
        if count <= 0:
            return
        try:
            observers = self._observers[name]
        except KeyError:
            raise HookError(f"fired unknown hook: {name}") from None
        self._fire_counts[name] += count
        remaining = len(observers)
        if remaining == 0:
            return
        ctx = HookContext(hook=name, time_ns=time_ns, count=count, fields=fields)
        if remaining == 1:
            next(iter(observers.values()))(ctx)
            return
        for observer in list(observers.values()):
            observer(ctx)

    def fire_count(self, name: str) -> int:
        """Total event multiplicity fired on a hook since construction."""
        if name not in self._kinds:
            raise HookError(f"unknown hook: {name}")
        return self._fire_counts[name]

    def catalogue(self) -> Mapping[str, HookKind]:
        """The full hook catalogue (name -> mechanism)."""
        return dict(self._kinds)

    @staticmethod
    def table2_names() -> Iterable[str]:
        """The exact hook set from Table 2 of the paper."""
        return sorted(TABLE2_HOOKS)
