"""Processes and threads of the simulated host.

A :class:`Process` owns an address space (managed by
:class:`~repro.simkernel.memory.VirtualMemory`) and one or more
:class:`Thread` objects scheduled by
:class:`~repro.simkernel.scheduler.Scheduler`.  Processes carry the
metadata TEEMon's exporters care about: a command name (for process
filtering in the dashboard, e.g. ``redis-server``), an optional container
id (for the cAdvisor exporter), and accumulated CPU time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


@dataclass
class Thread:
    """A schedulable entity belonging to a process."""

    tid: int
    process: "Process"
    name: str = ""
    state: ThreadState = ThreadState.RUNNABLE
    cpu_time_ns: int = 0
    voluntary_switches: int = 0
    involuntary_switches: int = 0

    @property
    def pid(self) -> int:
        """The owning process id."""
        return self.process.pid

    def total_switches(self) -> int:
        """Context switches this thread has been part of."""
        return self.voluntary_switches + self.involuntary_switches


@dataclass
class Process:
    """A simulated OS process."""

    pid: int
    name: str
    container_id: Optional[str] = None
    threads: Dict[int, Thread] = field(default_factory=dict)
    cpu_time_ns: int = 0
    rss_bytes: int = 0
    started_at_ns: int = 0
    exited: bool = False
    exit_code: Optional[int] = None

    def live_threads(self) -> List[Thread]:
        """Threads that have not exited."""
        return [t for t in self.threads.values() if t.state is not ThreadState.EXITED]

    def total_switches(self) -> int:
        """Context switches across all of this process's threads."""
        return sum(t.total_switches() for t in self.threads.values())
