"""The :class:`Kernel` facade: one simulated host.

A ``Kernel`` wires the clock, RNG, hook registry, scheduler, virtual
memory, page cache, LLC model, syscall table and the ``/proc``/``/sys``
filesystem into a single host.  It also manages process lifecycle and
publishes the ``/proc/stat`` and ``/proc/meminfo`` pseudo-files the
node-exporter reads.

Loadable modules (the simulated SGX driver is one) register themselves via
:meth:`Kernel.load_module`, which is how the TEE Metrics Exporter finds the
driver's ``/sys/module/<name>/parameters`` files.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.simkernel.clock import VirtualClock
from repro.simkernel.cpu import LlcModel
from repro.simkernel.hooks import HookRegistry
from repro.simkernel.memory import VirtualMemory
from repro.simkernel.pagecache import PageCache
from repro.simkernel.process import Process, Thread, ThreadState
from repro.simkernel.procfs import VirtualFs
from repro.simkernel.rng import DeterministicRng
from repro.simkernel.scheduler import Scheduler
from repro.simkernel.syscalls import SyscallTable

GIB = 1024 * 1024 * 1024


class KernelModule:
    """Base class for loadable kernel modules (e.g. the SGX driver)."""

    #: Module name, as it appears under ``/sys/module/<name>``.
    name: str = "module"

    def on_load(self, kernel: "Kernel") -> None:
        """Called when the module is inserted into the kernel."""

    def on_unload(self, kernel: "Kernel") -> None:
        """Called when the module is removed."""


class Kernel:
    """One simulated host: hardware model + OS services."""

    def __init__(
        self,
        seed: int = 0,
        hostname: str = "node-0",
        num_cpus: int = 8,
        memory_bytes: int = 32 * GIB,
        llc_bytes: int = 8 * 1024 * 1024,
        page_cache_pages: int = 262_144,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.hostname = hostname
        # Multi-host simulations (Kubernetes clusters) share one clock so
        # all nodes live on the same timeline.
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = DeterministicRng(seed, path=f"kernel/{hostname}")
        self.hooks = HookRegistry()
        self.scheduler = Scheduler(self.clock, self.hooks, num_cpus=num_cpus)
        self.memory = VirtualMemory(self.clock, self.hooks, total_bytes=memory_bytes)
        self.page_cache = PageCache(self.clock, self.hooks, capacity_pages=page_cache_pages)
        self.llc = LlcModel(self.clock, self.hooks, capacity_bytes=llc_bytes)
        self.syscalls = SyscallTable(self.clock, self.hooks)
        self.vfs = VirtualFs()
        self.memory_bytes = memory_bytes
        self._pid_counter = itertools.count(start=100)
        self._tid_counter = itertools.count(start=100)
        self._processes: Dict[int, Process] = {}
        self._modules: Dict[str, KernelModule] = {}
        self._publish_procfs()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn_process(
        self,
        name: str,
        container_id: Optional[str] = None,
        threads: int = 1,
    ) -> Process:
        """Create a process with ``threads`` initial threads."""
        if threads < 1:
            raise SimulationError(f"process needs at least one thread, got {threads}")
        pid = next(self._pid_counter)
        process = Process(
            pid=pid,
            name=name,
            container_id=container_id,
            started_at_ns=self.clock.now_ns,
        )
        self.memory.create_space(pid)
        for _ in range(threads):
            self.spawn_thread(process)
        self._processes[pid] = process
        return process

    def spawn_thread(self, process: Process, name: str = "") -> Thread:
        """Add a thread to an existing process."""
        if process.exited:
            raise SimulationError(f"process {process.pid} has exited")
        tid = next(self._tid_counter)
        thread = Thread(tid=tid, process=process, name=name or f"{process.name}/{tid}")
        process.threads[tid] = thread
        return thread

    def exit_process(self, process: Process, code: int = 0) -> None:
        """Terminate a process, tearing down its address space."""
        if process.exited:
            raise SimulationError(f"process {process.pid} already exited")
        for thread in process.threads.values():
            thread.state = ThreadState.EXITED
        self.memory.destroy_space(process.pid)
        process.exited = True
        process.exit_code = code
        del self._processes[process.pid]

    def process(self, pid: int) -> Process:
        """Look up a live process by pid."""
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"no such process: {pid}") from None

    def processes(self) -> List[Process]:
        """All live processes."""
        return list(self._processes.values())

    def find_processes(self, name: str) -> List[Process]:
        """Live processes whose command name matches exactly."""
        return [p for p in self._processes.values() if p.name == name]

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------
    def load_module(self, module: KernelModule) -> None:
        """Insert a loadable module (e.g. the SGX driver)."""
        if module.name in self._modules:
            raise SimulationError(f"module already loaded: {module.name}")
        self._modules[module.name] = module
        module.on_load(self)

    def unload_module(self, name: str) -> None:
        """Remove a loadable module."""
        try:
            module = self._modules.pop(name)
        except KeyError:
            raise SimulationError(f"module not loaded: {name}") from None
        module.on_unload(self)

    def module(self, name: str) -> KernelModule:
        """Look up a loaded module."""
        try:
            return self._modules[name]
        except KeyError:
            raise SimulationError(f"module not loaded: {name}") from None

    def has_module(self, name: str) -> bool:
        """Whether a module is loaded."""
        return name in self._modules

    # ------------------------------------------------------------------
    # procfs content
    # ------------------------------------------------------------------
    def _publish_procfs(self) -> None:
        self.vfs.publish("/proc/stat", self._render_proc_stat)
        self.vfs.publish("/proc/meminfo", self._render_meminfo)
        self.vfs.publish("/proc/uptime", lambda: f"{self.clock.now_seconds:.2f}")

    def _render_proc_stat(self) -> str:
        lines = []
        total_busy = total_idle = 0
        for cpu in (self.scheduler.cpu(i) for i in range(self.scheduler.num_cpus)):
            total_busy += cpu.busy_ns
            total_idle += cpu.idle_ns
        # /proc/stat counts in USER_HZ (100 Hz) ticks.
        lines.append(f"cpu {total_busy // 10_000_000} 0 0 {total_idle // 10_000_000}")
        for cpu in (self.scheduler.cpu(i) for i in range(self.scheduler.num_cpus)):
            lines.append(
                f"cpu{cpu.cpu_id} {cpu.busy_ns // 10_000_000} 0 0 {cpu.idle_ns // 10_000_000}"
            )
        lines.append(f"ctxt {self.scheduler.total_switches}")
        return "\n".join(lines) + "\n"

    def _render_meminfo(self) -> str:
        total_kb = self.memory_bytes // 1024
        used_kb = self.memory.physical.allocated * 4
        free_kb = total_kb - used_kb
        cached_kb = self.page_cache.resident_pages * 4
        return (
            f"MemTotal: {total_kb} kB\n"
            f"MemFree: {free_kb} kB\n"
            f"Cached: {cached_kb} kB\n"
        )
