"""Virtual-memory model: address spaces, frames and page faults.

The model is page-granular (4 KiB).  Each process owns a sparse page table
mapping virtual page numbers to physical frames; touching an unmapped page
raises a page fault, which fires the instruments TEEMon watches
(``exceptions:page_fault_user`` / ``page_fault_kernel`` tracepoints and the
``PERF_COUNT_SW_PAGE_FAULTS`` perf event).

The fault tracepoint carries a ``fault_kind`` field with the four user-space
fault classes the paper's Figure 11(a) breaks out: ``no_page_found``,
``write_prot_fault``, ``write_fault`` and ``instr_fetch_fault``.

Like the scheduler, the memory model supports both per-event driving
(:meth:`VirtualMemory.touch`) and aggregate driving
(:meth:`VirtualMemory.account_faults`), and both flow through the same
hooks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import MemoryError_
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class FaultKind(enum.Enum):
    """User-space page-fault classes reported in Figure 11(a)."""

    NO_PAGE_FOUND = "no_page_found"
    WRITE_PROT_FAULT = "write_prot_fault"
    WRITE_FAULT = "write_fault"
    INSTR_FETCH_FAULT = "instr_fetch_fault"

    @property
    def code(self) -> int:
        """Stable integer code (eBPF map key)."""
        return _FAULT_KIND_CODES[self]


_FAULT_KIND_CODES = {
    FaultKind.NO_PAGE_FOUND: 0,
    FaultKind.WRITE_PROT_FAULT: 1,
    FaultKind.WRITE_FAULT: 2,
    FaultKind.INSTR_FETCH_FAULT: 3,
}

FAULT_KIND_BY_CODE = {kind.code: kind for kind in FaultKind}


def pages_for_bytes(size_bytes: int) -> int:
    """Number of 4 KiB pages needed to hold ``size_bytes``."""
    if size_bytes < 0:
        raise MemoryError_(f"negative size: {size_bytes}")
    return (size_bytes + PAGE_SIZE - 1) >> PAGE_SHIFT


@dataclass
class PhysicalMemory:
    """A pool of physical frames."""

    total_frames: int
    allocated: int = 0

    @property
    def free_frames(self) -> int:
        """Frames not currently handed out."""
        return self.total_frames - self.allocated

    def allocate(self, count: int = 1) -> None:
        """Take ``count`` frames from the pool."""
        if count < 0:
            raise MemoryError_(f"negative frame count: {count}")
        if self.allocated + count > self.total_frames:
            raise MemoryError_(
                f"out of physical memory: want {count}, free {self.free_frames}"
            )
        self.allocated += count

    def release(self, count: int = 1) -> None:
        """Return ``count`` frames to the pool."""
        if count < 0 or count > self.allocated:
            raise MemoryError_(f"bad release of {count} frames ({self.allocated} allocated)")
        self.allocated -= count


@dataclass
class AddressSpace:
    """Sparse page table for one process."""

    pid: int
    mapped_pages: Set[int] = field(default_factory=set)
    writable_pages: Set[int] = field(default_factory=set)

    @property
    def rss_pages(self) -> int:
        """Resident pages."""
        return len(self.mapped_pages)


@dataclass
class FaultCounters:
    """Per-process fault accounting, broken down by class."""

    by_kind: Dict[FaultKind, int] = field(default_factory=dict)

    def add(self, kind: FaultKind, count: int = 1) -> None:
        """Accumulate faults of a class."""
        self.by_kind[kind] = self.by_kind.get(kind, 0) + count

    def total(self) -> int:
        """All user faults for the process."""
        return sum(self.by_kind.values())


class VirtualMemory:
    """Host-wide virtual memory manager."""

    def __init__(
        self,
        clock: VirtualClock,
        hooks: HookRegistry,
        total_bytes: int,
    ) -> None:
        self._clock = clock
        self._hooks = hooks
        self.physical = PhysicalMemory(total_frames=pages_for_bytes(total_bytes))
        self._spaces: Dict[int, AddressSpace] = {}
        self._user_faults = 0
        self._kernel_faults = 0

    @property
    def user_faults(self) -> int:
        """Host-wide user-space faults since boot."""
        return self._user_faults

    @property
    def kernel_faults(self) -> int:
        """Host-wide kernel-space faults since boot."""
        return self._kernel_faults

    @property
    def total_faults(self) -> int:
        """All page faults (user + kernel) since boot."""
        return self._user_faults + self._kernel_faults

    def create_space(self, pid: int) -> AddressSpace:
        """Create the address space for a new process."""
        if pid in self._spaces:
            raise MemoryError_(f"address space already exists for pid {pid}")
        space = AddressSpace(pid=pid)
        self._spaces[pid] = space
        return space

    def destroy_space(self, pid: int) -> None:
        """Tear down a process's address space, freeing its frames."""
        space = self.space(pid)
        self.physical.release(len(space.mapped_pages))
        del self._spaces[pid]

    def space(self, pid: int) -> AddressSpace:
        """Look up the address space of ``pid``."""
        try:
            return self._spaces[pid]
        except KeyError:
            raise MemoryError_(f"no address space for pid {pid}") from None

    # ------------------------------------------------------------------
    # Per-event driving
    # ------------------------------------------------------------------
    def touch(self, pid: int, page: int, write: bool = False) -> bool:
        """Access one page; returns True when the access faulted.

        A fault on an unmapped page demand-allocates a frame (as an
        anonymous mapping would); a write to a read-only page is upgraded
        and reported as a write-protection fault (copy-on-write style).
        """
        space = self.space(pid)
        if page in space.mapped_pages:
            if write and page not in space.writable_pages:
                space.writable_pages.add(page)
                self._fire_user_fault(pid, FaultKind.WRITE_PROT_FAULT, 1)
                return True
            return False
        self.physical.allocate(1)
        space.mapped_pages.add(page)
        if write:
            space.writable_pages.add(page)
        kind = FaultKind.WRITE_FAULT if write else FaultKind.NO_PAGE_FOUND
        self._fire_user_fault(pid, kind, 1)
        return True

    def map_range(self, pid: int, start_page: int, num_pages: int, writable: bool = True) -> None:
        """Eagerly map a contiguous range (mmap with MAP_POPULATE)."""
        if num_pages < 0:
            raise MemoryError_(f"negative page count: {num_pages}")
        space = self.space(pid)
        new_pages = [
            p for p in range(start_page, start_page + num_pages)
            if p not in space.mapped_pages
        ]
        self.physical.allocate(len(new_pages))
        space.mapped_pages.update(new_pages)
        if writable:
            space.writable_pages.update(new_pages)

    def unmap_range(self, pid: int, start_page: int, num_pages: int) -> None:
        """Unmap a contiguous range, releasing frames."""
        space = self.space(pid)
        victims = {
            p for p in range(start_page, start_page + num_pages)
            if p in space.mapped_pages
        }
        space.mapped_pages -= victims
        space.writable_pages -= victims
        self.physical.release(len(victims))

    # ------------------------------------------------------------------
    # Aggregate driving
    # ------------------------------------------------------------------
    def account_faults(
        self,
        pid: int,
        count: int,
        kind: FaultKind = FaultKind.NO_PAGE_FOUND,
        kernel: bool = False,
    ) -> None:
        """Record a batch of ``count`` faults attributed to ``pid``."""
        if count <= 0:
            return
        if kernel:
            self._fire_kernel_fault(pid, count)
        else:
            self._fire_user_fault(pid, kind, count)

    # ------------------------------------------------------------------
    def _fire_user_fault(self, pid: int, kind: FaultKind, count: int) -> None:
        self._user_faults += count
        now = self._clock.now_ns
        self._hooks.fire(
            "exceptions:page_fault_user",
            now,
            count=count,
            pid=pid,
            fault_kind=kind.value,
            fault_kind_code=kind.code,
        )
        self._hooks.fire("PERF_COUNT_SW_PAGE_FAULTS", now, count=count, pid=pid)

    def _fire_kernel_fault(self, pid: int, count: int) -> None:
        self._kernel_faults += count
        now = self._clock.now_ns
        self._hooks.fire(
            "exceptions:page_fault_kernel", now, count=count, pid=pid
        )
        self._hooks.fire("PERF_COUNT_SW_PAGE_FAULTS", now, count=count, pid=pid)
