"""Page-cache model exposing the Table-2 kprobe sites.

TEEMon's cache metrics come from four kprobes on the Linux page cache:
``add_to_page_cache_lru``, ``mark_page_accessed``,
``account_page_dirtied`` and ``mark_buffer_dirty``.  This module models an
LRU page cache for file-backed pages and fires those kprobes from the same
causes the kernel would: inserting a page on read miss, touching a page on
read hit, dirtying a page on write, and dirtying its buffer head on
writeback marking.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.errors import MemoryError_
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry


@dataclass
class PageCacheStats:
    """Cumulative page-cache activity counters."""

    insertions: int = 0
    hits: int = 0
    misses: int = 0
    dirtied: int = 0
    evictions: int = 0

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class PageCache:
    """LRU cache of file-backed pages, keyed by (inode, page index)."""

    def __init__(
        self,
        clock: VirtualClock,
        hooks: HookRegistry,
        capacity_pages: int,
    ) -> None:
        if capacity_pages <= 0:
            raise MemoryError_(f"page cache needs capacity, got {capacity_pages}")
        self._clock = clock
        self._hooks = hooks
        self._capacity = capacity_pages
        self._lru: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.stats = PageCacheStats()

    @property
    def capacity_pages(self) -> int:
        """Maximum resident pages."""
        return self._capacity

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._lru)

    def read(self, inode: int, page_index: int, pid: int = 0) -> bool:
        """Read one file page; returns True on cache hit."""
        key = (inode, page_index)
        now = self._clock.now_ns
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            self._hooks.fire("mark_page_accessed", now, count=1, pid=pid)
            return True
        self.stats.misses += 1
        self._insert(key, dirty=False, pid=pid)
        return False

    def write(self, inode: int, page_index: int, pid: int = 0) -> None:
        """Write one file page, dirtying it."""
        key = (inode, page_index)
        now = self._clock.now_ns
        if key not in self._lru:
            self._insert(key, dirty=True, pid=pid)
        else:
            self._lru.move_to_end(key)
            self._hooks.fire("mark_page_accessed", now, count=1, pid=pid)
        if not self._lru[key]:
            self._lru[key] = True
        self.stats.dirtied += 1
        self._hooks.fire("account_page_dirtied", now, count=1, pid=pid)
        self._hooks.fire("mark_buffer_dirty", now, count=1, pid=pid)

    def account_activity(
        self,
        pid: int,
        reads: int = 0,
        writes: int = 0,
        hit_ratio: float = 0.95,
    ) -> None:
        """Aggregate driving: record a batch of reads/writes.

        ``hit_ratio`` models how much of the read traffic the cache absorbs;
        misses produce insertions (``add_to_page_cache_lru``), hits produce
        ``mark_page_accessed``.
        """
        if not 0.0 <= hit_ratio <= 1.0:
            raise MemoryError_(f"hit ratio out of range: {hit_ratio}")
        now = self._clock.now_ns
        if reads > 0:
            hits = int(reads * hit_ratio)
            misses = reads - hits
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.insertions += misses
            if hits:
                self._hooks.fire("mark_page_accessed", now, count=hits, pid=pid)
            if misses:
                self._hooks.fire("add_to_page_cache_lru", now, count=misses, pid=pid)
        if writes > 0:
            self.stats.dirtied += writes
            self._hooks.fire("account_page_dirtied", now, count=writes, pid=pid)
            self._hooks.fire("mark_buffer_dirty", now, count=writes, pid=pid)

    def _insert(self, key: Tuple[int, int], dirty: bool, pid: int) -> None:
        while len(self._lru) >= self._capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
        self._lru[key] = dirty
        self.stats.insertions += 1
        self._hooks.fire("add_to_page_cache_lru", self._clock.now_ns, count=1, pid=pid)
