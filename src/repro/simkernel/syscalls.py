"""System-call table and dispatcher.

The dispatcher fires the two ``raw_syscalls`` tracepoints TEEMon attaches
to, carrying the syscall number and caller pid, exactly like the kernel's
raw tracepoints do.  The table covers the syscalls the paper's workloads
exercise — notably ``clock_gettime`` and ``futex``, whose dominance over
``read``/``write`` is the Figure 6 finding — plus the usual socket and
memory-management calls.

Costs are per-syscall kernel service times on the modelled hardware; the
SGX frameworks then multiply in their own transition costs (a SCONE async
syscall does not pay an enclave exit; a Graphene one pays a full
OCALL round trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import SyscallError
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry

# Syscall numbers follow x86-64 Linux for recognisability.
SYSCALL_NUMBERS: Dict[str, int] = {
    "read": 0,
    "write": 1,
    "open": 2,
    "close": 3,
    "mmap": 9,
    "mprotect": 10,
    "munmap": 11,
    "brk": 12,
    "ioctl": 16,
    "sched_yield": 24,
    "nanosleep": 35,
    "sendto": 44,
    "recvfrom": 45,
    "accept": 43,
    "bind": 49,
    "listen": 50,
    "socket": 41,
    "epoll_wait": 232,
    "epoll_ctl": 233,
    "fork": 57,
    "execve": 59,
    "exit": 60,
    "futex": 202,
    "clock_gettime": 228,
    "epoll_create1": 291,
    "accept4": 288,
    "getpid": 39,
    "fsync": 74,
    "writev": 20,
    "readv": 19,
}

SYSCALL_NAMES: Dict[int, str] = {nr: name for name, nr in SYSCALL_NUMBERS.items()}

#: Kernel service time of each syscall in nanoseconds (no SGX costs).
#: Values are in line with published microbenchmarks for Skylake-era Linux.
DEFAULT_COSTS_NS: Dict[str, int] = {
    "read": 500,
    "write": 550,
    "open": 1_400,
    "close": 450,
    "mmap": 1_600,
    "mprotect": 900,
    "munmap": 1_200,
    "brk": 500,
    "ioctl": 600,
    "sched_yield": 300,
    "nanosleep": 1_000,
    "sendto": 1_800,
    "recvfrom": 1_700,
    "accept": 2_500,
    "bind": 900,
    "listen": 700,
    "socket": 1_800,
    "epoll_wait": 800,
    "epoll_ctl": 600,
    "fork": 55_000,
    "execve": 200_000,
    "exit": 5_000,
    "futex": 700,
    "clock_gettime": 25,  # vDSO fast path natively
    "epoll_create1": 1_000,
    "accept4": 2_500,
    "getpid": 40,
    "fsync": 80_000,
    "writev": 700,
    "readv": 650,
}


@dataclass
class SyscallRecord:
    """One dispatched syscall batch (for per-event inspection in tests)."""

    name: str
    nr: int
    pid: int
    count: int
    time_ns: int


class SyscallTable:
    """Dispatches syscalls, firing the raw_syscalls tracepoints."""

    def __init__(self, clock: VirtualClock, hooks: HookRegistry) -> None:
        self._clock = clock
        self._hooks = hooks
        self._counts: Dict[str, int] = {}
        self._handlers: Dict[str, Callable[[SyscallRecord], None]] = {}
        self._total = 0

    @property
    def total_dispatched(self) -> int:
        """Total syscall events dispatched since boot."""
        return self._total

    @staticmethod
    def number_of(name: str) -> int:
        """Resolve a syscall name to its number."""
        try:
            return SYSCALL_NUMBERS[name]
        except KeyError:
            raise SyscallError(f"unknown syscall: {name}") from None

    @staticmethod
    def name_of(nr: int) -> str:
        """Resolve a syscall number to its name."""
        try:
            return SYSCALL_NAMES[nr]
        except KeyError:
            raise SyscallError(f"unknown syscall number: {nr}") from None

    @staticmethod
    def cost_ns(name: str) -> int:
        """Kernel service time of one invocation."""
        try:
            return DEFAULT_COSTS_NS[name]
        except KeyError:
            raise SyscallError(f"no cost model for syscall: {name}") from None

    def count_of(self, name: str) -> int:
        """Events dispatched for one syscall since boot."""
        if name not in SYSCALL_NUMBERS:
            raise SyscallError(f"unknown syscall: {name}")
        return self._counts.get(name, 0)

    def set_handler(self, name: str, handler: Callable[[SyscallRecord], None]) -> None:
        """Install a side-effect handler run on each dispatch of ``name``."""
        if name not in SYSCALL_NUMBERS:
            raise SyscallError(f"unknown syscall: {name}")
        self._handlers[name] = handler

    def dispatch(self, name: str, pid: int, count: int = 1) -> int:
        """Dispatch ``count`` invocations of syscall ``name`` from ``pid``.

        Fires ``raw_syscalls:sys_enter`` and ``raw_syscalls:sys_exit`` with
        the batch multiplicity and returns the total kernel service time in
        nanoseconds (the caller decides whether and how to charge it).
        """
        if count <= 0:
            return 0
        nr = self.number_of(name)
        now = self._clock.now_ns
        self._counts[name] = self._counts.get(name, 0) + count
        self._total += count
        self._hooks.fire(
            "raw_syscalls:sys_enter", now, count=count, pid=pid, syscall_nr=nr,
            syscall_name=name,
        )
        handler = self._handlers.get(name)
        if handler is not None:
            handler(SyscallRecord(name=name, nr=nr, pid=pid, count=count, time_ns=now))
        cost = self.cost_ns(name)
        # sys_exit carries the service latency (what a tracepoint-based
        # latency histogram measures: exit time minus enter time).
        self._hooks.fire(
            "raw_syscalls:sys_exit", now, count=count, pid=pid, syscall_nr=nr,
            syscall_name=name, latency_us=max(1, cost // 1_000),
        )
        return cost * count

    def counts_snapshot(self) -> Dict[str, int]:
        """Copy of the per-syscall dispatch counters."""
        return dict(self._counts)
