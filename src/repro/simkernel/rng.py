"""Deterministic, forkable randomness.

Every stochastic decision in the simulation draws from a
:class:`DeterministicRng`.  Components never share a raw stream; instead
they :meth:`~DeterministicRng.fork` a named substream, so adding a new
consumer of randomness in one component cannot perturb another component's
sequence.  This is what makes the reproduction's metric streams
bit-reproducible across runs and refactorings.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream that can derive independent named substreams."""

    def __init__(self, seed: int, path: str = "root") -> None:
        self._seed = seed
        self._path = path
        digest = hashlib.sha256(f"{seed}:{path}".encode("utf-8")).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    @property
    def path(self) -> str:
        """Derivation path of this stream (for debugging)."""
        return self._path

    def fork(self, name: str) -> "DeterministicRng":
        """Derive an independent substream identified by ``name``."""
        return DeterministicRng(self._seed, f"{self._path}/{name}")

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits.

        Much cheaper than :meth:`randint` for wide ranges (no rejection
        loop) — the tracer draws 128-bit ids on its hot path through this.
        """
        return self._random.getrandbits(bits)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal sample."""
        return self._random.lognormvariate(mu, sigma)

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean."""
        return self._random.expovariate(1.0 / mean) if mean > 0 else 0.0

    def choice(self, items: Sequence[T]) -> T:
        """Pick one item uniformly."""
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def binomial(self, n: int, p: float) -> int:
        """Binomial sample; exact for small n, normal approximation for large n.

        The approximation keeps batch-level event sampling cheap: workloads
        fire hooks with multiplicities in the millions, and an exact
        Bernoulli loop would dominate runtime without changing any result
        that the monitoring pipeline can observe.
        """
        if n <= 0 or p <= 0.0:
            return 0
        if p >= 1.0:
            return n
        if n <= 64:
            return sum(1 for _ in range(n) if self._random.random() < p)
        mean = n * p
        stddev = (n * p * (1.0 - p)) ** 0.5
        sample = int(round(self._random.gauss(mean, stddev)))
        return max(0, min(n, sample))

    def poisson(self, mean: float) -> int:
        """Poisson sample; exact (Knuth) for small means, normal approx above."""
        if mean <= 0:
            return 0
        if mean < 30.0:
            limit = 2.718281828459045 ** (-mean)
            count = 0
            product = self._random.random()
            while product > limit:
                count += 1
                product *= self._random.random()
            return count
        return max(0, int(round(self._random.gauss(mean, mean ** 0.5))))
