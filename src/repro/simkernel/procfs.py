"""A tiny ``/proc`` + ``/sys`` virtual filesystem.

Two TEEMon exporters read pseudo-files rather than hooks: the node-exporter
consumes ``/proc/stat`` and ``/proc/meminfo``-style data, and the SGX
exporter reads the driver's module parameters from
``/sys/module/isgx/parameters/<metric>``.  This module provides the
in-simulation equivalent: a path-keyed store whose entries can be plain
values or callables evaluated at read time (like real procfs, where reads
materialise current kernel state).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.errors import SimulationError

Content = Union[str, Callable[[], str]]


class VirtualFs:
    """Path-keyed pseudo-filesystem with lazy (callable) entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, Content] = {}

    @staticmethod
    def _normalise(path: str) -> str:
        if not path.startswith("/"):
            raise SimulationError(f"paths must be absolute: {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") if len(path) > 1 else path

    def publish(self, path: str, content: Content) -> None:
        """Create or replace a pseudo-file.

        ``content`` may be a string or a zero-argument callable returning a
        string; callables are evaluated on every read.
        """
        self._entries[self._normalise(path)] = content

    def remove(self, path: str) -> None:
        """Delete a pseudo-file."""
        path = self._normalise(path)
        if path not in self._entries:
            raise SimulationError(f"no such file: {path}")
        del self._entries[path]

    def exists(self, path: str) -> bool:
        """Whether a pseudo-file exists at ``path``."""
        return self._normalise(path) in self._entries

    def read(self, path: str) -> str:
        """Read a pseudo-file, evaluating lazy content."""
        path = self._normalise(path)
        try:
            content = self._entries[path]
        except KeyError:
            raise SimulationError(f"no such file: {path}") from None
        return content() if callable(content) else content

    def listdir(self, path: str) -> List[str]:
        """List the immediate children of a directory."""
        prefix = self._normalise(path)
        if prefix != "/":
            prefix += "/"
        children = set()
        for entry in self._entries:
            if entry.startswith(prefix):
                rest = entry[len(prefix):]
                children.add(rest.split("/", 1)[0])
        if not children and not self.exists(path):
            raise SimulationError(f"no such directory: {path}")
        return sorted(children)
