"""Virtual time for the simulated host.

Every component in the reproduction shares one :class:`VirtualClock`.  The
clock counts integer nanoseconds and owns a priority queue of scheduled
callbacks, which makes the whole system a deterministic discrete-event
simulation: time only moves when :meth:`VirtualClock.advance` or
:meth:`VirtualClock.run_until` is called, and callbacks scheduled for the
same instant run in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

NANOS_PER_USEC = 1_000
NANOS_PER_MILLI = 1_000_000
NANOS_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(value * NANOS_PER_SEC)


def millis(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(value * NANOS_PER_MILLI)


def micros(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(value * NANOS_PER_USEC)


@dataclass(frozen=True)
class TimerHandle:
    """Handle returned by :meth:`VirtualClock.call_at` for cancellation."""

    deadline_ns: int
    sequence: int
    _clock: "VirtualClock" = field(repr=False, compare=False)

    def cancel(self) -> None:
        """Cancel the timer; a cancelled timer never fires."""
        self._clock._cancel(self)


class VirtualClock:
    """A deterministic nanosecond clock with an event queue.

    The clock never reads wall time.  Two simulations constructed with the
    same seed and driven by the same calls produce identical timelines.
    """

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = start_ns
        self._sequence = itertools.count()
        # Heap entries: (deadline, sequence, callback-or-None). A cancelled
        # timer has its callback replaced with None and is skipped on pop.
        self._queue: List[Tuple[int, int, Optional[Callable[[], None]]]] = []
        self._entries: dict = {}

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current virtual time in (float) seconds."""
        return self._now_ns / NANOS_PER_SEC

    def call_at(self, deadline_ns: int, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run when time reaches ``deadline_ns``."""
        if deadline_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {deadline_ns} < {self._now_ns}"
            )
        seq = next(self._sequence)
        handle = TimerHandle(deadline_ns, seq, self)
        entry = [deadline_ns, seq, callback]
        self._entries[(deadline_ns, seq)] = entry
        heapq.heappush(self._queue, (deadline_ns, seq, callback))
        return handle

    def call_later(self, delay_ns: int, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.call_at(self._now_ns + delay_ns, callback)

    def _cancel(self, handle: TimerHandle) -> None:
        key = (handle.deadline_ns, handle.sequence)
        self._entries.pop(key, None)

    def advance(self, delta_ns: int) -> None:
        """Move time forward by ``delta_ns``, firing due callbacks in order."""
        if delta_ns < 0:
            raise SimulationError(f"cannot move time backwards: {delta_ns}")
        self.run_until(self._now_ns + delta_ns)

    def run_until(self, deadline_ns: int) -> None:
        """Move time forward to ``deadline_ns``, firing due callbacks in order.

        Callbacks may schedule further callbacks; any that land at or before
        the deadline fire within this call.
        """
        if deadline_ns < self._now_ns:
            raise SimulationError(
                f"cannot move time backwards: {deadline_ns} < {self._now_ns}"
            )
        while self._queue and self._queue[0][0] <= deadline_ns:
            when, seq, callback = heapq.heappop(self._queue)
            if (when, seq) not in self._entries:
                continue  # cancelled
            del self._entries[(when, seq)]
            self._now_ns = when
            callback()
        self._now_ns = deadline_ns

    def pending_count(self) -> int:
        """Number of timers that are scheduled and not cancelled."""
        return len(self._entries)

    def sleep(self, delta_ns: int) -> None:
        """Alias for :meth:`advance`, reads naturally in driver code."""
        self.advance(delta_ns)
