"""A simulated durable medium with explicit sync and crash semantics.

The crash-recovery work needs a storage device whose failure modes can be
*modelled*, not merely stubbed: data handed to the device is not durable
until it has been synced, a crash discards the unsynced suffix of every
file (optionally leaving a *torn* prefix of it behind, as a real platter
does for a write in flight), and fault hooks can corrupt payloads on the
way down (bit rot).  Everything is deterministic: the only randomness
comes from injectors the caller attaches, which draw from their own
seeded substreams.

The model is flat — named files, append or whole-file replace, no
directories (path-like names such as ``wal/segment-00000001.wal`` are
just names with slashes in them).  Two operations matter for crash
semantics:

* :meth:`SimDisk.sync` — marks a file's current length durable, like
  ``fsync``;
* :meth:`SimDisk.crash` — the power-loss event: every file is truncated
  back to its synced length, except that a crash hook may retain a torn
  prefix of the unsynced tail.  The returned :class:`DiskCrashReport`
  captures exactly what the medium discarded — the chaos layer's loss
  oracle, which lets recovery report data loss *exactly* instead of
  guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import StorageError

#: A write-path fault hook: may return mutated bytes for the write.
WriteFault = Callable[[str, bytes], bytes]
#: A crash-path fault hook: given the unsynced tail of one file, returns
#: how many bytes of it survive as a torn prefix (0 = clean truncation).
CrashFault = Callable[[str, bytes], int]


@dataclass(frozen=True)
class LostTail:
    """The unsynced suffix of one file at the moment of a crash."""

    #: Byte offset where the tail began (the synced length pre-crash).
    offset: int
    #: The full unsynced suffix as it stood on the medium.
    data: bytes
    #: How many leading bytes of ``data`` survived as a torn prefix.
    retained: int

    @property
    def discarded(self) -> bytes:
        """The bytes the crash actually destroyed."""
        return self.data[self.retained:]


@dataclass
class DiskCrashReport:
    """What one :meth:`SimDisk.crash` destroyed, per file."""

    tails: Dict[str, LostTail] = field(default_factory=dict)

    @property
    def files_affected(self) -> int:
        """Files that lost at least one byte."""
        return sum(1 for t in self.tails.values() if t.discarded)

    @property
    def bytes_discarded(self) -> int:
        """Total bytes destroyed across all files."""
        return sum(len(t.discarded) for t in self.tails.values())


class SimDisk:
    """Named durable files with sync/crash semantics and fault hooks."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}
        #: Durable length per file (bytes guaranteed to survive a crash).
        self._synced: Dict[str, int] = {}
        self._write_faults: List[WriteFault] = []
        self._crash_faults: List[CrashFault] = []
        self.writes = 0
        self.syncs = 0
        self.crashes = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def add_write_fault(self, hook: WriteFault) -> None:
        """Install a hook that may mutate payloads as they are written."""
        self._write_faults.append(hook)

    def add_crash_fault(self, hook: CrashFault) -> None:
        """Install a hook deciding how much of an unsynced tail tears."""
        self._crash_faults.append(hook)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _mutate(self, name: str, data: bytes) -> bytes:
        for hook in self._write_faults:
            data = hook(name, data)
        return data

    def append(self, name: str, data: bytes) -> None:
        """Append bytes to a file (created empty on first touch)."""
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError(f"disk writes take bytes, got {type(data).__name__}")
        payload = self._mutate(name, bytes(data))
        self._files.setdefault(name, bytearray()).extend(payload)
        self._synced.setdefault(name, 0)
        self.writes += 1
        self.bytes_written += len(payload)

    def write(self, name: str, data: bytes) -> None:
        """Replace a file's contents entirely (durable only after sync)."""
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError(f"disk writes take bytes, got {type(data).__name__}")
        payload = self._mutate(name, bytes(data))
        self._files[name] = bytearray(payload)
        self._synced[name] = 0
        self.writes += 1
        self.bytes_written += len(payload)

    def sync(self, name: str) -> None:
        """Make a file's current contents durable (``fsync``)."""
        if name not in self._files:
            raise StorageError(f"cannot sync unknown file: {name}")
        self._synced[name] = len(self._files[name])
        self.syncs += 1

    def delete(self, name: str) -> None:
        """Remove a file; deletion is immediately durable (a modelling
        simplification — callers order deletes after the syncs that make
        them safe, which is what the WAL does)."""
        if name not in self._files:
            raise StorageError(f"cannot delete unknown file: {name}")
        del self._files[name]
        del self._synced[name]

    # ------------------------------------------------------------------
    # Reads and introspection
    # ------------------------------------------------------------------
    def read(self, name: str) -> bytes:
        """Whole-file contents."""
        try:
            return bytes(self._files[name])
        except KeyError:
            raise StorageError(f"no such file: {name}") from None

    def exists(self, name: str) -> bool:
        """Whether a file exists."""
        return name in self._files

    def size(self, name: str) -> int:
        """Current length of a file in bytes."""
        return len(self.read(name))

    def synced_size(self, name: str) -> int:
        """Durable length of a file in bytes."""
        if name not in self._files:
            raise StorageError(f"no such file: {name}")
        return self._synced[name]

    def list_files(self, prefix: str = "") -> List[str]:
        """File names with the given prefix, sorted (deterministic)."""
        return sorted(name for name in self._files if name.startswith(prefix))

    # ------------------------------------------------------------------
    # The crash event
    # ------------------------------------------------------------------
    def crash(self) -> DiskCrashReport:
        """Discard every unsynced suffix; return what was destroyed.

        For each file with unsynced bytes the installed crash hooks are
        consulted in order; the first hook returning a positive count
        decides the torn prefix retained on the medium.  The retained
        prefix becomes durable (it is on the platter now), everything
        past it is gone.
        """
        report = DiskCrashReport()
        self.crashes += 1
        for name in sorted(self._files):
            data = self._files[name]
            synced = self._synced[name]
            if len(data) <= synced:
                continue
            tail = bytes(data[synced:])
            retained = 0
            for hook in self._crash_faults:
                kept = hook(name, tail)
                if kept:
                    retained = max(0, min(len(tail), int(kept)))
                    break
            del data[synced + retained:]
            self._synced[name] = len(data)
            report.tails[name] = LostTail(offset=synced, data=tail,
                                          retained=retained)
        return report
