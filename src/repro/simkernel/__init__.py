"""Simulated Linux-like kernel substrate.

This package is the bottom layer of the reproduction: a deterministic,
discrete-event model of the pieces of a Linux host that TEEMon observes.
It provides

* a virtual nanosecond clock with an event queue (:mod:`repro.simkernel.clock`),
* deterministic, forkable randomness (:mod:`repro.simkernel.rng`),
* a registry of instrumentation hooks — tracepoints, kprobes and perf
  events — matching the names in Table 2 of the paper
  (:mod:`repro.simkernel.hooks`),
* processes, threads and a scheduler that accounts context switches
  (:mod:`repro.simkernel.process`, :mod:`repro.simkernel.scheduler`),
* a virtual-memory and page-cache model that produces page faults and the
  page-cache kprobe sites (:mod:`repro.simkernel.memory`,
  :mod:`repro.simkernel.pagecache`),
* a CPU / last-level-cache model producing cache references and misses
  (:mod:`repro.simkernel.cpu`),
* a syscall table and dispatcher firing the ``raw_syscalls`` tracepoints
  (:mod:`repro.simkernel.syscalls`),
* a tiny ``/proc`` + ``/sys`` virtual filesystem
  (:mod:`repro.simkernel.procfs`),
* a durable storage medium with sync/crash semantics
  (:mod:`repro.simkernel.disk`), and
* the :class:`~repro.simkernel.kernel.Kernel` facade that wires it all
  together.
"""

from repro.simkernel.clock import VirtualClock
from repro.simkernel.disk import DiskCrashReport, LostTail, SimDisk
from repro.simkernel.hooks import HookKind, HookRegistry, HookContext
from repro.simkernel.kernel import Kernel
from repro.simkernel.process import Process, Thread
from repro.simkernel.rng import DeterministicRng

__all__ = [
    "VirtualClock",
    "DeterministicRng",
    "DiskCrashReport",
    "LostTail",
    "SimDisk",
    "HookKind",
    "HookRegistry",
    "HookContext",
    "Process",
    "Thread",
    "Kernel",
]
