"""CPU scheduler model with context-switch accounting.

TEEMon observes the scheduler through two instruments (Table 2): the
``sched:sched_switches`` tracepoint and the
``PERF_COUNT_SW_CONTEXT_SWITCHES`` software perf event.  This module fires
both.  It supports two driving styles:

* **per-event** — :meth:`Scheduler.switch_to` performs a single, fully
  modelled context switch between two threads (used by fine-grained tests
  and by the enclave-transition model);
* **aggregate** — :meth:`Scheduler.account_switches` records that a batch of
  N switches happened to a process during a simulation slice (used by the
  statistical workload models, where simulating millions of individual
  switches would not change anything the monitoring pipeline can see).

Both styles flow through the same hook firings, so exporters cannot tell
them apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SchedulerError
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry
from repro.simkernel.process import Thread, ThreadState

#: Cost of one context switch on the modelled hardware (Skylake-class,
#: ~1.5 us including cache effects — consistent with the transition-cost
#: literature the paper cites).
CONTEXT_SWITCH_COST_NS = 1_500


@dataclass
class CpuState:
    """Per-CPU bookkeeping."""

    cpu_id: int
    current: Optional[Thread] = None
    busy_ns: int = 0
    idle_ns: int = 0
    switches: int = 0


class Scheduler:
    """Round-robin scheduler over a fixed set of CPUs."""

    def __init__(
        self,
        clock: VirtualClock,
        hooks: HookRegistry,
        num_cpus: int = 4,
    ) -> None:
        if num_cpus <= 0:
            raise SchedulerError(f"need at least one CPU, got {num_cpus}")
        self._clock = clock
        self._hooks = hooks
        self._cpus = [CpuState(cpu_id=i) for i in range(num_cpus)]
        self._runqueue: List[Thread] = []
        self._total_switches = 0

    @property
    def num_cpus(self) -> int:
        """Number of CPUs on this host."""
        return len(self._cpus)

    @property
    def total_switches(self) -> int:
        """Host-wide context switches since boot."""
        return self._total_switches

    def cpu(self, cpu_id: int) -> CpuState:
        """Access a CPU's bookkeeping."""
        try:
            return self._cpus[cpu_id]
        except IndexError:
            raise SchedulerError(f"no such CPU: {cpu_id}") from None

    # ------------------------------------------------------------------
    # Per-event driving
    # ------------------------------------------------------------------
    def enqueue(self, thread: Thread) -> None:
        """Put a runnable thread on the run queue."""
        if thread.state is ThreadState.EXITED:
            raise SchedulerError(f"cannot enqueue exited thread {thread.tid}")
        thread.state = ThreadState.RUNNABLE
        self._runqueue.append(thread)

    def runqueue_length(self) -> int:
        """Number of runnable (not yet running) threads."""
        return len(self._runqueue)

    def switch_to(
        self,
        thread: Thread,
        cpu_id: int = 0,
        voluntary: bool = True,
    ) -> None:
        """Context-switch ``cpu_id`` to ``thread``, firing scheduler hooks."""
        if thread.state is ThreadState.EXITED:
            raise SchedulerError(f"cannot run exited thread {thread.tid}")
        cpu = self.cpu(cpu_id)
        previous = cpu.current
        if previous is thread:
            return
        if previous is not None:
            previous.state = ThreadState.RUNNABLE
            if voluntary:
                previous.voluntary_switches += 1
            else:
                previous.involuntary_switches += 1
        if thread in self._runqueue:
            self._runqueue.remove(thread)
        thread.state = ThreadState.RUNNING
        cpu.current = thread
        cpu.switches += 1
        self._record_switches(
            count=1,
            pid=thread.pid,
            prev_pid=previous.pid if previous is not None else 0,
        )

    def run_current(self, cpu_id: int, duration_ns: int) -> None:
        """Account ``duration_ns`` of CPU time to the thread on ``cpu_id``."""
        if duration_ns < 0:
            raise SchedulerError(f"negative duration: {duration_ns}")
        cpu = self.cpu(cpu_id)
        if cpu.current is None:
            cpu.idle_ns += duration_ns
            return
        cpu.busy_ns += duration_ns
        cpu.current.cpu_time_ns += duration_ns
        cpu.current.process.cpu_time_ns += duration_ns

    def block_current(self, cpu_id: int) -> Optional[Thread]:
        """Block the running thread (e.g. on I/O); returns it, if any."""
        cpu = self.cpu(cpu_id)
        thread = cpu.current
        if thread is None:
            return None
        thread.state = ThreadState.BLOCKED
        thread.voluntary_switches += 1
        cpu.current = None
        self._record_switches(count=1, pid=0, prev_pid=thread.pid)
        return thread

    def run_quantum(
        self,
        duration_ns: int,
        timeslice_ns: int = 4_000_000,
        cpu_id: int = 0,
    ) -> int:
        """Preemptively round-robin the run queue for ``duration_ns``.

        The CFS-flavoured loop: the current thread runs one timeslice, is
        preempted (involuntary switch) if anyone else is runnable, and goes
        to the back of the queue.  Context-switch costs are charged as lost
        CPU time.  Returns the number of switches performed.
        """
        if duration_ns < 0 or timeslice_ns <= 0:
            raise SchedulerError("bad quantum parameters")
        cpu = self.cpu(cpu_id)
        switches = 0
        remaining = duration_ns
        while remaining > 0:
            if cpu.current is None:
                if not self._runqueue:
                    cpu.idle_ns += remaining
                    break
                self.switch_to(self._runqueue[0], cpu_id=cpu_id)
                switches += 1
            slice_ns = min(timeslice_ns, remaining)
            self.run_current(cpu_id, slice_ns)
            remaining -= slice_ns
            if self._runqueue and remaining > 0:
                preempted = cpu.current
                self.switch_to(self._runqueue[0], cpu_id=cpu_id, voluntary=False)
                switches += 1
                if preempted is not None:
                    self.enqueue(preempted)
                # The switch itself costs CPU time nobody gets to use.
                overhead = min(CONTEXT_SWITCH_COST_NS, remaining)
                cpu.busy_ns += overhead
                remaining -= overhead
        return switches

    # ------------------------------------------------------------------
    # Aggregate driving
    # ------------------------------------------------------------------
    def account_switches(self, pid: int, count: int, cpu_id: int = 0) -> None:
        """Record a batch of context switches attributed to ``pid``."""
        if count <= 0:
            return
        self.cpu(cpu_id).switches += count
        self._record_switches(count=count, pid=pid, prev_pid=0)

    def account_cpu_time(self, thread: Thread, duration_ns: int, cpu_id: int = 0) -> None:
        """Record a batch of CPU time for a thread without running it."""
        if duration_ns < 0:
            raise SchedulerError(f"negative duration: {duration_ns}")
        self.cpu(cpu_id).busy_ns += duration_ns
        thread.cpu_time_ns += duration_ns
        thread.process.cpu_time_ns += duration_ns

    def account_idle(self, duration_ns: int, cpu_id: int = 0) -> None:
        """Record a batch of idle time on a CPU."""
        if duration_ns < 0:
            raise SchedulerError(f"negative duration: {duration_ns}")
        self.cpu(cpu_id).idle_ns += duration_ns

    # ------------------------------------------------------------------
    def _record_switches(self, count: int, pid: int, prev_pid: int) -> None:
        self._total_switches += count
        now = self._clock.now_ns
        self._hooks.fire(
            "sched:sched_switches", now, count=count, pid=pid, prev_pid=prev_pid
        )
        self._hooks.fire(
            "PERF_COUNT_SW_CONTEXT_SWITCHES", now, count=count, pid=pid
        )
