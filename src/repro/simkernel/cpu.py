"""CPU last-level-cache model.

TEEMon reads two hardware perf events: ``PERF_COUNT_HW_CACHE_REFERENCES``
and ``PERF_COUNT_HW_CACHE_MISSES``.  The model here produces both.

Two driving styles are supported, mirroring the rest of the kernel:

* an **exact** LRU cache over cache-line addresses
  (:meth:`LlcModel.access_line`) for fine-grained tests, and
* an **analytic** batch mode (:meth:`LlcModel.access_working_set`) used by
  the workloads: given a working-set size and an access count, the expected
  miss ratio of a fully-associative LRU cache under uniform access is
  ``max(0, 1 - capacity/working_set)`` plus a compulsory-miss floor.  SGX
  adds misses on top because the Memory Encryption Engine defeats line
  reuse across enclave boundaries — the caller passes that as
  ``extra_miss_ratio`` (the framework models do).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry

CACHE_LINE_SIZE = 64


@dataclass
class LlcStats:
    """Cumulative LLC counters."""

    references: int = 0
    misses: int = 0

    def miss_ratio(self) -> float:
        """Misses per reference."""
        return self.misses / self.references if self.references else 0.0


class LlcModel:
    """Last-level cache of a simulated socket."""

    #: Compulsory + conflict miss floor even when the working set fits.
    BASE_MISS_RATIO = 0.002

    def __init__(
        self,
        clock: VirtualClock,
        hooks: HookRegistry,
        capacity_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if capacity_bytes <= 0:
            raise SimulationError(f"LLC needs capacity, got {capacity_bytes}")
        self._clock = clock
        self._hooks = hooks
        self._capacity_bytes = capacity_bytes
        self._capacity_lines = capacity_bytes // CACHE_LINE_SIZE
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.stats = LlcStats()

    @property
    def capacity_bytes(self) -> int:
        """Cache capacity in bytes."""
        return self._capacity_bytes

    @property
    def resident_lines(self) -> int:
        """Lines currently cached (exact mode only)."""
        return len(self._lines)

    # ------------------------------------------------------------------
    # Exact mode
    # ------------------------------------------------------------------
    def access_line(self, address: int, pid: int = 0) -> bool:
        """Access one cache line by byte address; returns True on hit."""
        line = address // CACHE_LINE_SIZE
        hit = line in self._lines
        if hit:
            self._lines.move_to_end(line)
        else:
            while len(self._lines) >= self._capacity_lines:
                self._lines.popitem(last=False)
            self._lines[line] = None
        self._record(references=1, misses=0 if hit else 1, pid=pid)
        return hit

    # ------------------------------------------------------------------
    # Analytic batch mode
    # ------------------------------------------------------------------
    def expected_miss_ratio(self, working_set_bytes: int) -> float:
        """Analytic steady-state miss ratio for a uniform working set."""
        if working_set_bytes <= 0:
            return self.BASE_MISS_RATIO
        if working_set_bytes <= self._capacity_bytes:
            return self.BASE_MISS_RATIO
        capacity_fraction = self._capacity_bytes / working_set_bytes
        return min(1.0, self.BASE_MISS_RATIO + (1.0 - capacity_fraction))

    def access_working_set(
        self,
        working_set_bytes: int,
        accesses: int,
        pid: int = 0,
        extra_miss_ratio: float = 0.0,
    ) -> int:
        """Record a batch of accesses against a working set; returns misses."""
        if accesses <= 0:
            return 0
        if not 0.0 <= extra_miss_ratio <= 1.0:
            raise SimulationError(f"extra miss ratio out of range: {extra_miss_ratio}")
        ratio = min(1.0, self.expected_miss_ratio(working_set_bytes) + extra_miss_ratio)
        misses = int(round(accesses * ratio))
        self._record(references=accesses, misses=misses, pid=pid)
        return misses

    def account(self, references: int, misses: int, pid: int = 0) -> None:
        """Record exact reference/miss counts (aggregate driving).

        Used by workload models whose miss counts are determined upstream
        (calibrated per-request rates); both perf-event hooks fire with the
        given multiplicities.
        """
        if references < 0 or misses < 0 or misses > references:
            raise SimulationError(
                f"bad LLC accounting: references={references} misses={misses}"
            )
        self._record(references=references, misses=misses, pid=pid)

    # ------------------------------------------------------------------
    def _record(self, references: int, misses: int, pid: int) -> None:
        now = self._clock.now_ns
        self.stats.references += references
        self.stats.misses += misses
        if references:
            self._hooks.fire(
                "PERF_COUNT_HW_CACHE_REFERENCES", now, count=references, pid=pid
            )
        if misses:
            self._hooks.fire(
                "PERF_COUNT_HW_CACHE_MISSES", now, count=misses, pid=pid
            )
