"""Static verifier for eBPF programs.

The kernel refuses to load a program the verifier cannot prove safe; the
simulated kernel does the same.  The checks mirror the classic (pre-5.3)
eBPF rules:

* **bounded size** — at most ``MAX_INSTRUCTIONS`` instructions;
* **termination** — all jumps are forward (no back-edges, hence no loops);
* **in-bounds control flow** — every jump target lands inside the program,
  and no path falls off the end without ``EXIT``;
* **initialised registers** — a register is never read before a write on
  every path reaching the read (r1 is initialised at entry: it carries the
  context pointer);
* **no unchecked division** — ``DIV_IMM`` with a zero immediate is
  rejected outright (``DIV_REG`` traps at runtime, as real eBPF's
  runtime-checked division does);
* **declared maps only** — helper calls that take a map fd in r1 must be
  reachable only with fds the program declared.

The register-initialisation analysis is a simple forward dataflow over the
(acyclic, because jumps are forward-only) control-flow graph.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import VerifierError
from repro.ebpf.instructions import (
    DST_READING_OPS,
    DST_WRITING_OPS,
    Helper,
    Instruction,
    NUM_REGISTERS,
    Opcode,
    Reg,
    SRC_READING_OPS,
)
from repro.ebpf.program import Program

MAX_INSTRUCTIONS = 4096

#: Helpers that take a map fd in r1 and a key in r2.
MAP_HELPERS = {Helper.MAP_LOOKUP, Helper.MAP_UPDATE, Helper.MAP_ADD}

#: Registers each helper reads.
HELPER_READS: Dict[Helper, Set[Reg]] = {
    Helper.MAP_LOOKUP: {Reg.R1, Reg.R2},
    Helper.MAP_UPDATE: {Reg.R1, Reg.R2, Reg.R3},
    Helper.MAP_ADD: {Reg.R1, Reg.R2, Reg.R3},
    Helper.KTIME_GET_NS: set(),
    Helper.GET_CURRENT_PID: set(),
}


def _successors(index: int, instruction: Instruction, length: int) -> List[int]:
    """Control-flow successors of the instruction at ``index``."""
    if instruction.opcode is Opcode.EXIT:
        return []
    if instruction.opcode is Opcode.JMP:
        return [index + 1 + instruction.offset]
    if instruction.is_jump():
        return [index + 1, index + 1 + instruction.offset]
    return [index + 1]


def verify(program: Program) -> None:
    """Verify ``program``; raises :class:`VerifierError` when unsafe."""
    instructions = program.instructions
    length = len(instructions)
    if length == 0:
        raise VerifierError(f"{program.name}: empty program")
    if length > MAX_INSTRUCTIONS:
        raise VerifierError(
            f"{program.name}: too long ({length} > {MAX_INSTRUCTIONS} instructions)"
        )

    declared_fds = set(program.map_fds)

    # Structural checks per instruction.
    for index, instruction in enumerate(instructions):
        where = f"{program.name}:{index} ({instruction.mnemonic()})"
        if instruction.is_jump():
            if instruction.offset < 0:
                raise VerifierError(f"{where}: backward jump (loops are not allowed)")
            target = index + 1 + instruction.offset
            if target > length:
                raise VerifierError(f"{where}: jump out of bounds to {target}")
        if instruction.opcode is Opcode.DIV_IMM and instruction.imm == 0:
            raise VerifierError(f"{where}: division by zero immediate")
        if instruction.opcode is Opcode.CALL:
            if instruction.helper is None:
                raise VerifierError(f"{where}: call without a helper")
            if instruction.helper not in HELPER_READS:
                raise VerifierError(f"{where}: unknown helper {instruction.helper}")
        if instruction.opcode is Opcode.LD_CTX and not instruction.field:
            raise VerifierError(f"{where}: LD_CTX without a field name")

    # Every path must reach EXIT before running off the end: the last
    # reachable fall-through instruction must be EXIT or an unconditional
    # jump landing on a valid index.  Cheaper formulation on a DAG: any
    # instruction whose fall-through successor equals `length` must be EXIT,
    # and jump targets equal to `length` are out of bounds.
    for index, instruction in enumerate(instructions):
        for successor in _successors(index, instruction, length):
            if successor >= length:
                raise VerifierError(
                    f"{program.name}:{index}: control flow falls off the end"
                )

    # Forward dataflow for register initialisation.  Because all edges go
    # forward, a single in-order pass with meet-over-predecessors is exact.
    entry_state = frozenset({Reg.R1})  # r1 = ctx at entry
    incoming: List[Set[frozenset]] = [set() for _ in range(length)]
    incoming[0].add(entry_state)
    reachable = [False] * length
    reachable[0] = True

    for index in range(length):
        if not reachable[index] or not incoming[index]:
            continue
        # Meet: a register counts as initialised only if it is initialised
        # on every incoming path.
        initialised = frozenset.intersection(*incoming[index])
        instruction = instructions[index]
        where = f"{program.name}:{index} ({instruction.mnemonic()})"

        reads: Set[Reg] = set()
        if instruction.opcode in SRC_READING_OPS and instruction.src is not None:
            reads.add(instruction.src)
        if instruction.opcode in DST_READING_OPS and instruction.dst is not None:
            reads.add(instruction.dst)
        if instruction.opcode is Opcode.CALL and instruction.helper is not None:
            reads |= HELPER_READS[instruction.helper]
        if instruction.opcode is Opcode.EXIT:
            reads.add(Reg.R0)
        for reg in reads:
            if reg not in initialised:
                raise VerifierError(f"{where}: reads uninitialised register r{int(reg)}")

        out = set(initialised)
        if instruction.opcode in DST_WRITING_OPS and instruction.dst is not None:
            out.add(instruction.dst)
        if instruction.opcode is Opcode.CALL:
            out.add(Reg.R0)  # helper result
        out_state = frozenset(out)

        for successor in _successors(index, instruction, length):
            incoming[successor].add(out_state)
            reachable[successor] = True

    # Map-fd discipline: any constant loaded into r1 immediately before a
    # map helper call must be a declared fd.  (A full value-tracking pass is
    # unnecessary for the canned-program shapes; stdlib always emits
    # `mov_imm r1, fd` adjacent to the call, and that is what we check.)
    for index, instruction in enumerate(instructions):
        if instruction.opcode is not Opcode.CALL:
            continue
        if instruction.helper not in MAP_HELPERS:
            continue
        fd = _trace_r1_constant(instructions, index)
        if fd is None:
            raise VerifierError(
                f"{program.name}:{index}: map helper call with untraceable map fd in r1"
            )
        if fd not in declared_fds:
            raise VerifierError(
                f"{program.name}:{index}: map fd {fd} not declared by the program"
            )


def _trace_r1_constant(instructions, call_index: int):
    """Walk backwards from a call to find the constant last moved into r1."""
    for index in range(call_index - 1, -1, -1):
        instruction = instructions[index]
        if instruction.is_jump() or instruction.opcode is Opcode.EXIT:
            return None  # control flow merges; give up
        if instruction.opcode is Opcode.CALL:
            return None  # helpers may clobber r1..r5 in real eBPF
        if instruction.dst is Reg.R1:
            if instruction.opcode is Opcode.MOV_IMM:
                return instruction.imm
            return None
    return None
