"""Program container and a small assembler-style builder.

A :class:`Program` is an immutable instruction sequence plus the map file
descriptors it references.  The builder methods give canned-program authors
(:mod:`repro.ebpf.stdlib`) an assembler-like surface without string
parsing::

    b = ProgramBuilder("syscall_counter")
    b.ld_ctx(Reg.R6, "syscall_nr")
    b.ld_ctx(Reg.R7, "count")
    b.mov_imm(Reg.R1, counts_fd)
    b.mov_reg(Reg.R2, Reg.R6)
    b.mov_reg(Reg.R3, Reg.R7)
    b.call(Helper.MAP_ADD)
    b.exit(0)
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import EbpfError
from repro.ebpf.instructions import Helper, Instruction, Opcode, Reg


@dataclass(frozen=True)
class Program:
    """A verified-or-verifiable eBPF program."""

    name: str
    instructions: Tuple[Instruction, ...]
    map_fds: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing."""
        lines = [
            f"{index:4d}: {instruction.mnemonic()}"
            for index, instruction in enumerate(self.instructions)
        ]
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental assembler for :class:`Program` objects."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._instructions: List[Instruction] = []
        self._map_fds: Set[int] = set()

    def _emit(self, instruction: Instruction) -> "ProgramBuilder":
        self._instructions.append(instruction)
        return self

    @property
    def position(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # -- ALU -----------------------------------------------------------
    def mov_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst = imm"""
        return self._emit(Instruction(Opcode.MOV_IMM, dst=dst, imm=imm))

    def mov_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        """dst = src"""
        return self._emit(Instruction(Opcode.MOV_REG, dst=dst, src=src))

    def add_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst += imm"""
        return self._emit(Instruction(Opcode.ADD_IMM, dst=dst, imm=imm))

    def add_reg(self, dst: Reg, src: Reg) -> "ProgramBuilder":
        """dst += src"""
        return self._emit(Instruction(Opcode.ADD_REG, dst=dst, src=src))

    def sub_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst -= imm"""
        return self._emit(Instruction(Opcode.SUB_IMM, dst=dst, imm=imm))

    def mul_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst *= imm"""
        return self._emit(Instruction(Opcode.MUL_IMM, dst=dst, imm=imm))

    def div_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst //= imm (verifier rejects imm == 0)"""
        return self._emit(Instruction(Opcode.DIV_IMM, dst=dst, imm=imm))

    def rsh_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst >>= imm"""
        return self._emit(Instruction(Opcode.RSH_IMM, dst=dst, imm=imm))

    def and_imm(self, dst: Reg, imm: int) -> "ProgramBuilder":
        """dst &= imm"""
        return self._emit(Instruction(Opcode.AND_IMM, dst=dst, imm=imm))

    # -- Context and control flow --------------------------------------
    def ld_ctx(self, dst: Reg, fieldname: str) -> "ProgramBuilder":
        """dst = ctx.fields[fieldname] (0 when absent)"""
        return self._emit(Instruction(Opcode.LD_CTX, dst=dst, field=fieldname))

    def jmp(self, offset: int) -> "ProgramBuilder":
        """Unconditional forward jump."""
        return self._emit(Instruction(Opcode.JMP, offset=offset))

    def jeq_imm(self, dst: Reg, imm: int, offset: int) -> "ProgramBuilder":
        """if dst == imm: jump"""
        return self._emit(Instruction(Opcode.JEQ_IMM, dst=dst, imm=imm, offset=offset))

    def jne_imm(self, dst: Reg, imm: int, offset: int) -> "ProgramBuilder":
        """if dst != imm: jump"""
        return self._emit(Instruction(Opcode.JNE_IMM, dst=dst, imm=imm, offset=offset))

    def jgt_imm(self, dst: Reg, imm: int, offset: int) -> "ProgramBuilder":
        """if dst > imm: jump"""
        return self._emit(Instruction(Opcode.JGT_IMM, dst=dst, imm=imm, offset=offset))

    def jlt_imm(self, dst: Reg, imm: int, offset: int) -> "ProgramBuilder":
        """if dst < imm: jump"""
        return self._emit(Instruction(Opcode.JLT_IMM, dst=dst, imm=imm, offset=offset))

    def call(self, helper: Helper) -> "ProgramBuilder":
        """Call a kernel helper; args r1..r5, result r0."""
        return self._emit(Instruction(Opcode.CALL, helper=helper))

    def exit(self, code: Optional[int] = None) -> "ProgramBuilder":
        """Return from the program; optionally set r0 = code first."""
        if code is not None:
            self.mov_imm(Reg.R0, code)
        return self._emit(Instruction(Opcode.EXIT))

    # -- Maps -----------------------------------------------------------
    def uses_map(self, fd: int) -> "ProgramBuilder":
        """Declare that the program references map ``fd``."""
        if fd < 0:
            raise EbpfError(f"invalid map fd: {fd}")
        self._map_fds.add(fd)
        return self

    def build(self) -> Program:
        """Freeze into an immutable :class:`Program`."""
        if not self._instructions:
            raise EbpfError(f"program {self._name!r} is empty")
        return Program(
            name=self._name,
            instructions=tuple(self._instructions),
            map_fds=tuple(sorted(self._map_fds)),
        )


def program_from(name: str, instructions: Sequence[Instruction],
                 map_fds: Sequence[int] = ()) -> Program:
    """Construct a program directly from an instruction list."""
    if not instructions:
        raise EbpfError(f"program {name!r} is empty")
    return Program(name=name, instructions=tuple(instructions), map_fds=tuple(map_fds))
