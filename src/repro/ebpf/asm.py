"""A textual assembler for eBPF programs.

Custom-metric authors (§5.1: "custom eBPF programs can be added if
necessary") can write programs as text instead of builder calls::

    ; count large syscall bursts per pid
        ld_ctx  r6, count
        jle     r6, 1000, drop
        ld_ctx  r2, pid
        mov     r3, 1
        mov     r1, %map
        call    map_add
        exit    0
    drop:
        exit    0

Syntax:

* one instruction per line; ``;`` or ``#`` start comments;
* ``label:`` lines define jump targets; conditional jumps take a label;
* registers are ``r0``..``r9``; ``%name`` placeholders are substituted
  from the ``substitutions`` mapping (map fds, thresholds);
* convenience mnemonics: ``jle a, b, label`` assembles to the primitive
  ``jgt`` with inverted fall-through, and ``mov``/``add``/... pick the
  imm/reg form from the operand.

The assembler resolves labels to forward offsets and returns a
:class:`~repro.ebpf.program.Program` ready for the verifier (backward
labels assemble fine and are then rejected by the verifier, same division
of labour as clang vs the kernel).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EbpfError
from repro.ebpf.instructions import Helper, Instruction, Opcode, Reg
from repro.ebpf.program import Program

_ALU_MNEMONICS = {
    "mov": (Opcode.MOV_IMM, Opcode.MOV_REG),
    "add": (Opcode.ADD_IMM, Opcode.ADD_REG),
    "sub": (Opcode.SUB_IMM, Opcode.SUB_REG),
    "mul": (Opcode.MUL_IMM, Opcode.MUL_REG),
    "div": (Opcode.DIV_IMM, Opcode.DIV_REG),
    "and": (Opcode.AND_IMM, None),
    "or": (Opcode.OR_IMM, None),
    "rsh": (Opcode.RSH_IMM, None),
    "lsh": (Opcode.LSH_IMM, None),
}

_JUMP_MNEMONICS = {
    "jeq": (Opcode.JEQ_IMM, Opcode.JEQ_REG),
    "jne": (Opcode.JNE_IMM, Opcode.JNE_REG),
    "jgt": (Opcode.JGT_IMM, None),
    "jlt": (Opcode.JLT_IMM, None),
}

_HELPERS = {h.value: h for h in Helper}


def _parse_reg(token: str) -> Optional[Reg]:
    token = token.strip().lower()
    if len(token) == 2 and token[0] == "r" and token[1].isdigit():
        index = int(token[1])
        if index < len(Reg):
            return Reg(index)
    return None


def _parse_operand(token: str, substitutions: Dict[str, int], line_no: int):
    token = token.strip()
    reg = _parse_reg(token)
    if reg is not None:
        return reg
    if token.startswith("%"):
        name = token[1:]
        if name not in substitutions:
            raise EbpfError(f"line {line_no}: unknown substitution %{name}")
        return int(substitutions[name])
    try:
        return int(token, 0)  # decimal or 0x hex
    except ValueError:
        raise EbpfError(f"line {line_no}: bad operand {token!r}") from None


def assemble(
    text: str,
    name: str = "asm",
    substitutions: Optional[Dict[str, int]] = None,
    map_fds: Tuple[int, ...] = (),
) -> Program:
    """Assemble source text into a :class:`Program`."""
    substitutions = dict(substitutions or {})

    def statement_size(code: str) -> int:
        """Emitted instruction count: `exit N` expands to mov + exit."""
        pieces = code.replace(",", " ").split()
        if pieces and pieces[0].lower() == "exit" and len(pieces) > 1:
            return 2
        return 1

    # Pass 1: strip comments, collect statements and label positions in
    # *emitted-instruction* space (statements may emit more than one).
    raw: List[Tuple[int, str]] = []  # (line number, text)
    labels: Dict[str, int] = {}
    emitted = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        code = line.split(";")[0].split("#")[0].strip()
        if not code:
            continue
        while code.endswith(":") or (":" in code and code.split(":")[0].isidentifier()):
            label, _, rest = code.partition(":")
            label = label.strip()
            if not label.isidentifier():
                break
            if label in labels:
                raise EbpfError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = emitted
            code = rest.strip()
            if not code:
                break
        if code:
            raw.append((line_no, code))
            emitted += statement_size(code)

    # Pass 2: assemble.
    instructions: List[Instruction] = []
    for line_no, code in raw:
        pieces = code.replace(",", " ").split()
        mnemonic = pieces[0].lower()
        operands = pieces[1:]

        def resolve_label(label_token: str) -> int:
            if label_token not in labels:
                raise EbpfError(
                    f"line {line_no}: unknown label {label_token!r}"
                )
            # Jump statements emit exactly one instruction, at the current
            # position; offsets are relative to the next instruction.
            return labels[label_token] - len(instructions) - 1

        if mnemonic == "exit":
            if operands:
                value = _parse_operand(operands[0], substitutions, line_no)
                if isinstance(value, Reg):
                    raise EbpfError(f"line {line_no}: exit takes an immediate")
                instructions.append(Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=value))
            instructions.append(Instruction(Opcode.EXIT))
        elif mnemonic == "call":
            if len(operands) != 1 or operands[0] not in _HELPERS:
                raise EbpfError(
                    f"line {line_no}: call needs a helper name "
                    f"({sorted(_HELPERS)})"
                )
            instructions.append(
                Instruction(Opcode.CALL, helper=_HELPERS[operands[0]])
            )
        elif mnemonic == "ld_ctx":
            if len(operands) != 2:
                raise EbpfError(f"line {line_no}: ld_ctx needs reg, field")
            dst = _parse_reg(operands[0])
            if dst is None:
                raise EbpfError(f"line {line_no}: bad register {operands[0]!r}")
            instructions.append(
                Instruction(Opcode.LD_CTX, dst=dst, field=operands[1])
            )
        elif mnemonic == "jmp":
            if len(operands) != 1:
                raise EbpfError(f"line {line_no}: jmp needs a label")
            instructions.append(
                Instruction(Opcode.JMP, offset=resolve_label(operands[0]))
            )
        elif mnemonic in _JUMP_MNEMONICS or mnemonic in ("jge", "jle"):
            if len(operands) != 3:
                raise EbpfError(f"line {line_no}: {mnemonic} needs a, b, label")
            dst = _parse_reg(operands[0])
            if dst is None:
                raise EbpfError(f"line {line_no}: bad register {operands[0]!r}")
            operand = _parse_operand(operands[1], substitutions, line_no)
            offset = resolve_label(operands[2])
            if mnemonic in ("jge", "jle"):
                if isinstance(operand, Reg):
                    raise EbpfError(
                        f"line {line_no}: {mnemonic} supports immediates only"
                    )
                # jge a,b == jgt a,b-1 ; jle a,b == jlt a,b+1 (unsigned-safe
                # for the in-range immediates programs use).
                opcode = Opcode.JGT_IMM if mnemonic == "jge" else Opcode.JLT_IMM
                adjusted = operand - 1 if mnemonic == "jge" else operand + 1
                instructions.append(
                    Instruction(opcode, dst=dst, imm=adjusted, offset=offset)
                )
            else:
                imm_op, reg_op = _JUMP_MNEMONICS[mnemonic]
                if isinstance(operand, Reg):
                    if reg_op is None:
                        raise EbpfError(
                            f"line {line_no}: {mnemonic} has no register form"
                        )
                    instructions.append(
                        Instruction(reg_op, dst=dst, src=operand, offset=offset)
                    )
                else:
                    instructions.append(
                        Instruction(imm_op, dst=dst, imm=operand, offset=offset)
                    )
        elif mnemonic in _ALU_MNEMONICS:
            if len(operands) != 2:
                raise EbpfError(f"line {line_no}: {mnemonic} needs dst, src")
            dst = _parse_reg(operands[0])
            if dst is None:
                raise EbpfError(f"line {line_no}: bad register {operands[0]!r}")
            operand = _parse_operand(operands[1], substitutions, line_no)
            imm_op, reg_op = _ALU_MNEMONICS[mnemonic]
            if isinstance(operand, Reg):
                if reg_op is None:
                    raise EbpfError(
                        f"line {line_no}: {mnemonic} has no register form"
                    )
                instructions.append(Instruction(reg_op, dst=dst, src=operand))
            else:
                instructions.append(Instruction(imm_op, dst=dst, imm=operand))
        else:
            raise EbpfError(f"line {line_no}: unknown mnemonic {mnemonic!r}")

    if not instructions:
        raise EbpfError("no instructions assembled")
    return Program(name=name, instructions=tuple(instructions),
                   map_fds=tuple(sorted(map_fds)))
