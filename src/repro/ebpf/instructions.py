"""The instruction set of the simulated eBPF VM.

The ISA is a compact subset of real eBPF: ten 64-bit registers, ALU
operations with register or immediate operands, conditional forward jumps,
context-field loads, helper calls and ``EXIT``.  Register r0 is the return
value and helper result register; r1 conventionally holds the context at
entry, matching the real calling convention.

Context-field loads (``LD_CTX``) take the field *name*; resolution happens
when a hook fires and the :class:`~repro.simkernel.hooks.HookContext`
supplies its fields.  This replaces real eBPF's offset-based ``ldx``
against ``struct pt_regs`` with something type-safe while preserving the
programming model: programs read event data, combine it, and talk to user
space only through maps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class Reg(enum.IntEnum):
    """The ten general-purpose registers."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9


NUM_REGISTERS = len(Reg)


class Opcode(enum.Enum):
    """Operation codes."""

    MOV_IMM = "mov_imm"        # dst = imm
    MOV_REG = "mov_reg"        # dst = src
    ADD_IMM = "add_imm"        # dst += imm
    ADD_REG = "add_reg"        # dst += src
    SUB_IMM = "sub_imm"
    SUB_REG = "sub_reg"
    MUL_IMM = "mul_imm"
    MUL_REG = "mul_reg"
    DIV_IMM = "div_imm"        # dst /= imm (imm must be nonzero; verifier checks)
    DIV_REG = "div_reg"        # dst /= src (VM faults on zero)
    AND_IMM = "and_imm"
    OR_IMM = "or_imm"
    RSH_IMM = "rsh_imm"        # dst >>= imm
    LSH_IMM = "lsh_imm"        # dst <<= imm
    LD_CTX = "ld_ctx"          # dst = ctx.fields[field] (0 when absent)
    JMP = "jmp"                # unconditional forward jump by offset
    JEQ_IMM = "jeq_imm"        # if dst == imm: jump
    JNE_IMM = "jne_imm"
    JGT_IMM = "jgt_imm"
    JLT_IMM = "jlt_imm"
    JEQ_REG = "jeq_reg"
    JNE_REG = "jne_reg"
    CALL = "call"              # call helper; args in r1..r5, result in r0
    EXIT = "exit"              # return r0


class Helper(enum.Enum):
    """Kernel helper functions callable from programs."""

    MAP_LOOKUP = "map_lookup"          # r1=map fd, r2=key       -> r0=value (0 if missing)
    MAP_UPDATE = "map_update"          # r1=map fd, r2=key, r3=value
    MAP_ADD = "map_add"                # r1=map fd, r2=key, r3=delta (atomic add)
    KTIME_GET_NS = "ktime_get_ns"      #                          -> r0=now_ns
    GET_CURRENT_PID = "get_current_pid"  #                        -> r0=ctx pid


ALU_OPS = {
    Opcode.MOV_IMM, Opcode.MOV_REG, Opcode.ADD_IMM, Opcode.ADD_REG,
    Opcode.SUB_IMM, Opcode.SUB_REG, Opcode.MUL_IMM, Opcode.MUL_REG,
    Opcode.DIV_IMM, Opcode.DIV_REG, Opcode.AND_IMM, Opcode.OR_IMM,
    Opcode.RSH_IMM, Opcode.LSH_IMM,
}

JUMP_OPS = {
    Opcode.JMP, Opcode.JEQ_IMM, Opcode.JNE_IMM, Opcode.JGT_IMM,
    Opcode.JLT_IMM, Opcode.JEQ_REG, Opcode.JNE_REG,
}

#: Opcodes whose ``src`` register is read.
SRC_READING_OPS = {
    Opcode.MOV_REG, Opcode.ADD_REG, Opcode.SUB_REG, Opcode.MUL_REG,
    Opcode.DIV_REG, Opcode.JEQ_REG, Opcode.JNE_REG,
}

#: Opcodes that read their ``dst`` register before writing it.
DST_READING_OPS = {
    Opcode.ADD_IMM, Opcode.ADD_REG, Opcode.SUB_IMM, Opcode.SUB_REG,
    Opcode.MUL_IMM, Opcode.MUL_REG, Opcode.DIV_IMM, Opcode.DIV_REG,
    Opcode.AND_IMM, Opcode.OR_IMM, Opcode.RSH_IMM, Opcode.LSH_IMM,
    Opcode.JEQ_IMM, Opcode.JNE_IMM, Opcode.JGT_IMM, Opcode.JLT_IMM,
    Opcode.JEQ_REG, Opcode.JNE_REG,
}

#: Opcodes that write their ``dst`` register.
DST_WRITING_OPS = ALU_OPS | {Opcode.LD_CTX}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``offset`` on jump opcodes is relative to the *next* instruction, as in
    real eBPF: ``offset=0`` falls through, ``offset=2`` skips two
    instructions.
    """

    opcode: Opcode
    dst: Optional[Reg] = None
    src: Optional[Reg] = None
    imm: int = 0
    offset: int = 0
    field: Optional[str] = None
    helper: Optional[Helper] = None

    def is_jump(self) -> bool:
        """Whether this instruction may transfer control."""
        return self.opcode in JUMP_OPS

    def mnemonic(self) -> str:
        """Human-readable rendering for diagnostics."""
        parts = [self.opcode.value]
        if self.dst is not None:
            parts.append(f"r{int(self.dst)}")
        if self.src is not None:
            parts.append(f"r{int(self.src)}")
        if self.opcode is Opcode.LD_CTX:
            parts.append(repr(self.field))
        elif self.opcode is Opcode.CALL:
            parts.append(self.helper.value if self.helper else "?")
        elif self.opcode.value.endswith("_imm") or self.opcode is Opcode.MOV_IMM:
            parts.append(str(self.imm))
        if self.is_jump():
            parts.append(f"+{self.offset}")
        return " ".join(parts)


Operand = Union[int, Reg]
