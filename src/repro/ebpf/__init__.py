"""An eBPF-like in-kernel virtual machine.

TEEMon's System Metrics Exporter runs small counting programs inside the
kernel via eBPF.  This package reproduces that mechanism faithfully enough
that the exporter's programs are *actual programs*: register bytecode
(:mod:`repro.ebpf.instructions`) assembled by builders
(:mod:`repro.ebpf.stdlib`), checked by a static verifier that enforces the
classic eBPF safety rules — bounded size, no back-edges, no reads of
uninitialised registers, no unchecked division
(:mod:`repro.ebpf.verifier`) — executed by an interpreter
(:mod:`repro.ebpf.vm`), and communicating with user space exclusively
through BPF maps (:mod:`repro.ebpf.maps`).

Programs attach to kernel hooks through :mod:`repro.ebpf.attach`, which is
the seam between the simulated kernel's hook registry and the VM.
"""

from repro.ebpf.attach import EbpfRuntime, ProgramAttachment
from repro.ebpf.instructions import Instruction, Opcode, Reg
from repro.ebpf.maps import ArrayMap, BpfMap, HashMap, PerCpuHashMap
from repro.ebpf.program import Program
from repro.ebpf.verifier import verify
from repro.ebpf.vm import ExecutionResult, Vm

__all__ = [
    "Instruction",
    "Opcode",
    "Reg",
    "Program",
    "verify",
    "Vm",
    "ExecutionResult",
    "BpfMap",
    "HashMap",
    "ArrayMap",
    "PerCpuHashMap",
    "EbpfRuntime",
    "ProgramAttachment",
]
