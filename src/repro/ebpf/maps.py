"""BPF maps: the kernel/user-space data plane.

Programs running in the VM may only communicate through maps, exactly like
real eBPF.  Three map types cover everything TEEMon's programs need:

* :class:`HashMap` — ``BPF_MAP_TYPE_HASH``: bounded key/value store; the
  syscall and page-fault counters key on syscall number / fault class;
* :class:`ArrayMap` — ``BPF_MAP_TYPE_ARRAY``: fixed-size, zero-initialised;
  used for single counters and histograms;
* :class:`PerCpuHashMap` — ``BPF_MAP_TYPE_PERCPU_HASH``: per-CPU shards
  that user space sums on read, avoiding cross-CPU contention.

Maps are allocated from a :class:`MapRegistry` which hands out integer
file descriptors, mirroring ``bpf(BPF_MAP_CREATE)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MapError


class BpfMap:
    """Abstract map interface."""

    def __init__(self, name: str, max_entries: int) -> None:
        if max_entries <= 0:
            raise MapError(f"map {name!r}: max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self.fd: int = -1  # assigned by the registry

    def lookup(self, key: int) -> Optional[int]:
        """Return the value at ``key`` or None."""
        raise NotImplementedError

    def update(self, key: int, value: int) -> None:
        """Set ``key`` to ``value``."""
        raise NotImplementedError

    def add(self, key: int, delta: int) -> int:
        """Atomically add ``delta`` at ``key`` (missing keys start at 0)."""
        raise NotImplementedError

    def delete(self, key: int) -> None:
        """Remove ``key``."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (key, value) pairs — the user-space read path."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop all entries."""
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.items())


class HashMap(BpfMap):
    """Bounded hash map (BPF_MAP_TYPE_HASH)."""

    def __init__(self, name: str, max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        self._data: Dict[int, int] = {}

    def lookup(self, key: int) -> Optional[int]:
        return self._data.get(key)

    def update(self, key: int, value: int) -> None:
        if key not in self._data and len(self._data) >= self.max_entries:
            raise MapError(f"map {self.name!r} is full ({self.max_entries} entries)")
        self._data[key] = value

    def add(self, key: int, delta: int) -> int:
        if key not in self._data and len(self._data) >= self.max_entries:
            raise MapError(f"map {self.name!r} is full ({self.max_entries} entries)")
        value = self._data.get(key, 0) + delta
        self._data[key] = value
        return value

    def delete(self, key: int) -> None:
        if key not in self._data:
            raise MapError(f"map {self.name!r}: no such key {key}")
        del self._data[key]

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._data.items()))

    def clear(self) -> None:
        self._data.clear()


class ArrayMap(BpfMap):
    """Fixed-size, zero-initialised array map (BPF_MAP_TYPE_ARRAY)."""

    def __init__(self, name: str, max_entries: int = 64) -> None:
        super().__init__(name, max_entries)
        self._data: List[int] = [0] * max_entries

    def _check(self, key: int) -> None:
        if not 0 <= key < self.max_entries:
            raise MapError(f"map {self.name!r}: index {key} out of range")

    def lookup(self, key: int) -> Optional[int]:
        self._check(key)
        return self._data[key]

    def update(self, key: int, value: int) -> None:
        self._check(key)
        self._data[key] = value

    def add(self, key: int, delta: int) -> int:
        self._check(key)
        self._data[key] += delta
        return self._data[key]

    def delete(self, key: int) -> None:
        # Array entries cannot be deleted in real eBPF either; zero instead.
        self._check(key)
        self._data[key] = 0

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(enumerate(self._data))

    def clear(self) -> None:
        self._data = [0] * self.max_entries


class PerCpuHashMap(BpfMap):
    """Per-CPU sharded hash map (BPF_MAP_TYPE_PERCPU_HASH).

    Writes go to the shard of the CPU the program ran on (supplied by the
    VM); :meth:`items` sums shards, which is what user-space readers do.
    """

    def __init__(self, name: str, max_entries: int = 1024, num_cpus: int = 8) -> None:
        super().__init__(name, max_entries)
        if num_cpus <= 0:
            raise MapError(f"map {name!r}: need at least one CPU")
        self._shards: List[Dict[int, int]] = [{} for _ in range(num_cpus)]
        self.current_cpu = 0

    def _shard(self) -> Dict[int, int]:
        return self._shards[self.current_cpu % len(self._shards)]

    def lookup(self, key: int) -> Optional[int]:
        total = 0
        present = False
        for shard in self._shards:
            if key in shard:
                present = True
                total += shard[key]
        return total if present else None

    def update(self, key: int, value: int) -> None:
        shard = self._shard()
        if key not in shard and len(shard) >= self.max_entries:
            raise MapError(f"map {self.name!r} shard is full")
        shard[key] = value

    def add(self, key: int, delta: int) -> int:
        shard = self._shard()
        if key not in shard and len(shard) >= self.max_entries:
            raise MapError(f"map {self.name!r} shard is full")
        shard[key] = shard.get(key, 0) + delta
        return shard[key]

    def delete(self, key: int) -> None:
        found = False
        for shard in self._shards:
            if key in shard:
                del shard[key]
                found = True
        if not found:
            raise MapError(f"map {self.name!r}: no such key {key}")

    def items(self) -> Iterator[Tuple[int, int]]:
        merged: Dict[int, int] = {}
        for shard in self._shards:
            for key, value in shard.items():
                merged[key] = merged.get(key, 0) + value
        return iter(sorted(merged.items()))

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()


class LruHashMap(HashMap):
    """LRU-evicting hash map (BPF_MAP_TYPE_LRU_HASH).

    Where a plain hash map rejects inserts at capacity, the LRU variant
    evicts the least-recently-*updated* entry — the standard choice for
    per-flow / per-PID state that must never fail in the hot path.
    """

    def __init__(self, name: str, max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        from collections import OrderedDict

        self._data = OrderedDict()  # type: ignore[assignment]
        self.evictions = 0

    def _touch(self, key: int) -> None:
        self._data.move_to_end(key)

    def _make_room(self) -> None:
        while len(self._data) >= self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def lookup(self, key: int) -> Optional[int]:
        value = self._data.get(key)
        if value is not None:
            self._touch(key)
        return value

    def update(self, key: int, value: int) -> None:
        if key not in self._data:
            self._make_room()
        self._data[key] = value
        self._touch(key)

    def add(self, key: int, delta: int) -> int:
        if key not in self._data:
            self._make_room()
        value = self._data.get(key, 0) + delta
        self._data[key] = value
        self._touch(key)
        return value


class RingBufferMap(BpfMap):
    """Event ring buffer (BPF_MAP_TYPE_RINGBUF).

    Programs *reserve-and-commit* records; user space consumes them in
    order.  When the buffer is full the producer drops the record and the
    drop counter advances — the back-pressure behaviour real ring buffers
    have.  Since this VM's values are integers, a record is one integer
    (callers pack what they need).

    Map-interface mapping: ``add(key, value)`` commits ``value`` (the key
    is ignored, as ringbuf submissions are positionless); ``items()``
    enumerates unconsumed records as (sequence, value).
    """

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        super().__init__(name, max_entries)
        from collections import deque

        self._records = deque()
        self._next_seq = 0
        self.dropped = 0

    def lookup(self, key: int) -> Optional[int]:
        for sequence, value in self._records:
            if sequence == key:
                return value
        return None

    def update(self, key: int, value: int) -> None:
        raise MapError(f"ringbuf {self.name!r} is append-only; use add()")

    def add(self, key: int, value: int) -> int:
        """Commit one record; returns its sequence number (drops return -1
        masked to unsigned by the VM, distinguishable as huge)."""
        if len(self._records) >= self.max_entries:
            self.dropped += 1
            return -1
        sequence = self._next_seq
        self._next_seq += 1
        self._records.append((sequence, value))
        return sequence

    def delete(self, key: int) -> None:
        raise MapError(f"ringbuf {self.name!r} does not support delete")

    def consume(self, limit: Optional[int] = None) -> List[Tuple[int, int]]:
        """User-space drain: pop up to ``limit`` records in order."""
        out: List[Tuple[int, int]] = []
        while self._records and (limit is None or len(out) < limit):
            out.append(self._records.popleft())
        return out

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(list(self._records))

    def clear(self) -> None:
        self._records.clear()


class MapRegistry:
    """Hands out map file descriptors, mirroring bpf(BPF_MAP_CREATE)."""

    def __init__(self) -> None:
        self._maps: Dict[int, BpfMap] = {}
        self._next_fd = 3  # 0..2 are stdio, for flavour

    def create(self, bpf_map: BpfMap) -> int:
        """Register a map and return its fd."""
        fd = self._next_fd
        self._next_fd += 1
        bpf_map.fd = fd
        self._maps[fd] = bpf_map
        return fd

    def get(self, fd: int) -> BpfMap:
        """Resolve an fd to its map."""
        try:
            return self._maps[fd]
        except KeyError:
            raise MapError(f"bad map fd: {fd}") from None

    def close(self, fd: int) -> None:
        """Release a map fd."""
        if fd not in self._maps:
            raise MapError(f"bad map fd: {fd}")
        del self._maps[fd]

    def __len__(self) -> int:
        return len(self._maps)
