"""The eBPF interpreter.

Executes verified programs against a :class:`~repro.simkernel.hooks.HookContext`.
The VM enforces a hard instruction budget per run (defence in depth on top
of the verifier's no-loops guarantee), masks all arithmetic to 64 bits, and
faults — rather than silently corrupting state — on runtime division by
zero or a bad map fd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import VmFault
from repro.ebpf.instructions import Helper, Instruction, NUM_REGISTERS, Opcode, Reg
from repro.ebpf.maps import MapRegistry
from repro.ebpf.program import Program
from repro.simkernel.hooks import HookContext

U64_MASK = (1 << 64) - 1
MAX_STEPS = 1 << 16


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    return_value: int
    steps: int


class Vm:
    """Interpreter bound to a map registry and a time source."""

    def __init__(self, maps: MapRegistry, time_source=None) -> None:
        self._maps = maps
        self._time_source = time_source  # callable -> now_ns, for KTIME_GET_NS
        self.total_steps = 0
        self.total_runs = 0

    def run(self, program: Program, ctx: HookContext, cpu: int = 0) -> ExecutionResult:
        """Execute ``program`` once against ``ctx``."""
        regs = [0] * NUM_REGISTERS
        regs[Reg.R1] = 1  # the "context pointer"; field access goes via LD_CTX
        instructions = program.instructions
        length = len(instructions)
        pc = 0
        steps = 0

        while True:
            if steps >= MAX_STEPS:
                raise VmFault(f"{program.name}: instruction budget exceeded")
            if not 0 <= pc < length:
                raise VmFault(f"{program.name}: pc out of bounds at {pc}")
            instruction = instructions[pc]
            steps += 1
            opcode = instruction.opcode

            if opcode is Opcode.EXIT:
                self.total_steps += steps
                self.total_runs += 1
                return ExecutionResult(return_value=regs[Reg.R0], steps=steps)

            if opcode is Opcode.MOV_IMM:
                regs[instruction.dst] = instruction.imm & U64_MASK
            elif opcode is Opcode.MOV_REG:
                regs[instruction.dst] = regs[instruction.src]
            elif opcode is Opcode.ADD_IMM:
                regs[instruction.dst] = (regs[instruction.dst] + instruction.imm) & U64_MASK
            elif opcode is Opcode.ADD_REG:
                regs[instruction.dst] = (regs[instruction.dst] + regs[instruction.src]) & U64_MASK
            elif opcode is Opcode.SUB_IMM:
                regs[instruction.dst] = (regs[instruction.dst] - instruction.imm) & U64_MASK
            elif opcode is Opcode.SUB_REG:
                regs[instruction.dst] = (regs[instruction.dst] - regs[instruction.src]) & U64_MASK
            elif opcode is Opcode.MUL_IMM:
                regs[instruction.dst] = (regs[instruction.dst] * instruction.imm) & U64_MASK
            elif opcode is Opcode.MUL_REG:
                regs[instruction.dst] = (regs[instruction.dst] * regs[instruction.src]) & U64_MASK
            elif opcode is Opcode.DIV_IMM:
                regs[instruction.dst] = regs[instruction.dst] // instruction.imm
            elif opcode is Opcode.DIV_REG:
                divisor = regs[instruction.src]
                if divisor == 0:
                    raise VmFault(f"{program.name}:{pc}: division by zero")
                regs[instruction.dst] = regs[instruction.dst] // divisor
            elif opcode is Opcode.AND_IMM:
                regs[instruction.dst] = regs[instruction.dst] & instruction.imm & U64_MASK
            elif opcode is Opcode.OR_IMM:
                regs[instruction.dst] = (regs[instruction.dst] | instruction.imm) & U64_MASK
            elif opcode is Opcode.RSH_IMM:
                regs[instruction.dst] = regs[instruction.dst] >> instruction.imm
            elif opcode is Opcode.LSH_IMM:
                regs[instruction.dst] = (regs[instruction.dst] << instruction.imm) & U64_MASK
            elif opcode is Opcode.LD_CTX:
                value = ctx.get(instruction.field, 0)
                if instruction.field == "count":
                    value = ctx.count
                if not isinstance(value, int):
                    raise VmFault(
                        f"{program.name}:{pc}: context field "
                        f"{instruction.field!r} is not an integer"
                    )
                regs[instruction.dst] = value & U64_MASK
            elif opcode is Opcode.JMP:
                pc += 1 + instruction.offset
                continue
            elif opcode is Opcode.JEQ_IMM:
                if regs[instruction.dst] == (instruction.imm & U64_MASK):
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.JNE_IMM:
                if regs[instruction.dst] != (instruction.imm & U64_MASK):
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.JGT_IMM:
                if regs[instruction.dst] > (instruction.imm & U64_MASK):
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.JLT_IMM:
                if regs[instruction.dst] < (instruction.imm & U64_MASK):
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.JEQ_REG:
                if regs[instruction.dst] == regs[instruction.src]:
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.JNE_REG:
                if regs[instruction.dst] != regs[instruction.src]:
                    pc += 1 + instruction.offset
                    continue
            elif opcode is Opcode.CALL:
                self._call_helper(program, pc, instruction, regs, ctx, cpu)
            else:  # pragma: no cover - exhaustive over Opcode
                raise VmFault(f"{program.name}:{pc}: unimplemented opcode {opcode}")

            pc += 1

    def _call_helper(
        self,
        program: Program,
        pc: int,
        instruction: Instruction,
        regs,
        ctx: HookContext,
        cpu: int,
    ) -> None:
        helper = instruction.helper
        if helper is Helper.MAP_LOOKUP:
            bpf_map = self._maps.get(regs[Reg.R1])
            value = bpf_map.lookup(regs[Reg.R2])
            regs[Reg.R0] = 0 if value is None else value & U64_MASK
        elif helper is Helper.MAP_UPDATE:
            bpf_map = self._maps.get(regs[Reg.R1])
            bpf_map.update(regs[Reg.R2], regs[Reg.R3])
            regs[Reg.R0] = 0
        elif helper is Helper.MAP_ADD:
            bpf_map = self._maps.get(regs[Reg.R1])
            if hasattr(bpf_map, "current_cpu"):
                bpf_map.current_cpu = cpu
            regs[Reg.R0] = bpf_map.add(regs[Reg.R2], regs[Reg.R3]) & U64_MASK
        elif helper is Helper.KTIME_GET_NS:
            if self._time_source is None:
                raise VmFault(f"{program.name}:{pc}: no time source configured")
            regs[Reg.R0] = int(self._time_source()) & U64_MASK
        elif helper is Helper.GET_CURRENT_PID:
            pid = ctx.get("pid", 0)
            regs[Reg.R0] = int(pid) & U64_MASK if isinstance(pid, int) else 0
        else:  # pragma: no cover - verifier rejects unknown helpers
            raise VmFault(f"{program.name}:{pc}: unknown helper {helper}")
