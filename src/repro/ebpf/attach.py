"""Attaching programs to kernel hooks.

:class:`EbpfRuntime` is the seam between the simulated kernel and the eBPF
subsystem: it owns the map registry and the VM, verifies every program
before loading (the kernel contract), attaches programs to hooks in the
kernel's :class:`~repro.simkernel.hooks.HookRegistry`, and accounts the
run-time overhead of in-kernel instrumentation so the monitoring-overhead
experiments (Figure 5) have something real to measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EbpfError
from repro.ebpf.maps import BpfMap, MapRegistry
from repro.ebpf.program import Program
from repro.ebpf.verifier import verify
from repro.ebpf.vm import Vm
from repro.simkernel.hooks import AttachmentHandle, HookContext
from repro.simkernel.kernel import Kernel

#: Cost of one eBPF program execution at a hook, in nanoseconds.  Real
#: counting programs run in tens of nanoseconds; the hook trampoline and
#: map update dominate.
PROGRAM_RUN_COST_NS = 120


@dataclass
class ProgramAttachment:
    """One loaded-and-attached program."""

    program: Program
    hook: str
    handle: AttachmentHandle
    runs: int = 0
    events_seen: int = 0

    def detach(self) -> None:
        """Remove the program from its hook."""
        self.handle.detach()


class EbpfRuntime:
    """Loads, verifies, attaches and accounts eBPF programs on one host."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self.maps = MapRegistry()
        self.vm = Vm(self.maps, time_source=lambda: kernel.clock.now_ns)
        self._attachments: List[ProgramAttachment] = []
        #: Cumulative instrumentation CPU cost charged to the kernel, ns.
        self.overhead_ns = 0

    def create_map(self, bpf_map: BpfMap) -> int:
        """Register a map; returns its fd for use in programs."""
        return self.maps.create(bpf_map)

    def load_and_attach(self, program: Program, hook: str) -> ProgramAttachment:
        """Verify ``program`` and attach it to ``hook``.

        Verification failure raises
        :class:`~repro.errors.VerifierError` and nothing is attached,
        mirroring the kernel's load-time rejection.
        """
        verify(program)
        for fd in program.map_fds:
            self.maps.get(fd)  # raises MapError on dangling fds
        attachment = ProgramAttachment(program=program, hook=hook, handle=None)  # type: ignore[arg-type]

        def on_fire(ctx: HookContext, _attachment=attachment) -> None:
            self.vm.run(_attachment.program, ctx)
            _attachment.runs += 1
            _attachment.events_seen += ctx.count
            # One VM run per hook *firing*; batched firings cost one run
            # (this is exactly why batch simulation does not distort the
            # overhead measurements: overhead is charged per event below).
            self.overhead_ns += PROGRAM_RUN_COST_NS * ctx.count

        handle = self._kernel.hooks.attach(hook, on_fire)
        attachment.handle = handle
        self._attachments.append(attachment)
        return attachment

    def detach_all(self) -> None:
        """Detach every program (monitoring OFF)."""
        for attachment in self._attachments:
            attachment.detach()
        self._attachments.clear()

    def attachments(self) -> List[ProgramAttachment]:
        """Currently attached programs."""
        return list(self._attachments)

    def total_events_seen(self) -> int:
        """Events observed across all attachments."""
        return sum(a.events_seen for a in self._attachments)
