"""Canned eBPF programs used by the System Metrics Exporter.

These are the programs TEEMon ships (based on Cloudflare's ebpf_exporter
examples): per-key event counters, optionally filtered to a single PID —
the paper's §6.3 notes that a PID-filter macro is provided to cut overhead
— and log2 histograms.

Every builder returns a :class:`~repro.ebpf.program.Program` that passes
the verifier; the tests assert this for each one.
"""

from __future__ import annotations

from typing import Optional

from repro.ebpf.instructions import Helper, Reg
from repro.ebpf.program import Program, ProgramBuilder


def counter_program(
    name: str,
    map_fd: int,
    key_field: Optional[str] = None,
    fixed_key: int = 0,
    pid_filter: Optional[int] = None,
) -> Program:
    """Count events into ``map_fd``.

    The key is either read from a context field (``key_field``, e.g.
    ``"syscall_nr"``) or fixed (``fixed_key``).  Each run adds the firing's
    event multiplicity (``count``), so batch-fired hooks are counted
    exactly.  With ``pid_filter`` set, events from other PIDs are skipped —
    the PID-filter macro from the paper.
    """
    builder = ProgramBuilder(name).uses_map(map_fd)
    if pid_filter is not None:
        builder.ld_ctx(Reg.R6, "pid")
        # if pid != filter: exit(0)   [jump over the 2 exit instructions]
        builder.jeq_imm(Reg.R6, pid_filter, 2)
        builder.mov_imm(Reg.R0, 0)
        builder.exit()
    if key_field is not None:
        builder.ld_ctx(Reg.R2, key_field)
    else:
        builder.mov_imm(Reg.R2, fixed_key)
    builder.ld_ctx(Reg.R3, "count")
    builder.mov_imm(Reg.R1, map_fd)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    return builder.build()


def log2_histogram_program(
    name: str,
    map_fd: int,
    value_field: str,
    max_bucket: int = 32,
) -> Program:
    """Bucket a context value into a log2 histogram map.

    Emits an unrolled binary-search-free bucketing: repeatedly shift right
    and count, bounded by ``max_bucket`` — loops are forbidden, so the
    shift chain is unrolled exactly like real BPF histogram programs.
    """
    builder = ProgramBuilder(name).uses_map(map_fd)
    builder.ld_ctx(Reg.R6, value_field)   # value
    builder.mov_imm(Reg.R7, 0)            # bucket index
    for _ in range(max_bucket):
        # if value < 2: done (bucket found); offset patched to the epilogue
        builder.jlt_imm(Reg.R6, 2, 0)
        builder.rsh_imm(Reg.R6, 1)
        builder.add_imm(Reg.R7, 1)
    # Patch the placeholder jumps to land on the epilogue.
    instructions = list(builder._instructions)  # noqa: SLF001 - assembler internals
    epilogue_start = len(instructions)
    from repro.ebpf.instructions import Instruction, Opcode  # local to avoid cycle noise

    patched = []
    for index, instruction in enumerate(instructions):
        if instruction.opcode is Opcode.JLT_IMM and instruction.offset == 0:
            patched.append(
                Instruction(
                    Opcode.JLT_IMM,
                    dst=instruction.dst,
                    imm=instruction.imm,
                    offset=epilogue_start - index - 1,
                )
            )
        else:
            patched.append(instruction)
    builder._instructions = patched  # noqa: SLF001

    builder.ld_ctx(Reg.R3, "count")
    builder.mov_reg(Reg.R2, Reg.R7)
    builder.mov_imm(Reg.R1, map_fd)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    return builder.build()


def pid_attributed_counter_program(name: str, map_fd: int) -> Program:
    """Count events keyed by the PID that caused them.

    Backs the per-process views (context switches by PID in Figure 11(e)).
    """
    builder = ProgramBuilder(name).uses_map(map_fd)
    builder.ld_ctx(Reg.R2, "pid")
    builder.ld_ctx(Reg.R3, "count")
    builder.mov_imm(Reg.R1, map_fd)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    return builder.build()
