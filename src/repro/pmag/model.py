"""Series, samples and label matchers."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import TsdbError

#: Reserved label carrying the metric name, as in Prometheus.
METRIC_NAME_LABEL = "__name__"


class Labels:
    """An immutable, hashable label set (including ``__name__``)."""

    __slots__ = ("_pairs", "_map", "_hash", "_derived")

    def __init__(self, mapping: Mapping[str, str]) -> None:
        for name, value in mapping.items():
            if not isinstance(name, str) or not isinstance(value, str):
                raise TsdbError(f"labels must be str->str, got {name!r}={value!r}")
        self._pairs: Tuple[Tuple[str, str], ...] = tuple(sorted(mapping.items()))
        self._map: Dict[str, str] = dict(self._pairs)
        self._hash = hash(self._pairs)
        # Memoised results of without()/keep_only(): query evaluation
        # derives the same label subsets from the same instance at every
        # step, and the key population (drop/keep argument tuples) is
        # bounded by the query set, so this never grows past a handful.
        self._derived: Optional[Dict[Tuple[str, ...], "Labels"]] = None

    @staticmethod
    def of(metric: str, **labels: str) -> "Labels":
        """Build a label set for a metric.

        The positional parameter is called ``metric`` (not ``name``) so
        that ``name`` stays available as a keyword label — it is the most
        common label in this system (syscall names).
        """
        mapping = dict(labels)
        mapping[METRIC_NAME_LABEL] = metric
        return Labels(mapping)

    @property
    def metric_name(self) -> str:
        """The ``__name__`` label (empty if absent)."""
        return self.get(METRIC_NAME_LABEL, "")

    def get(self, name: str, default: str = "") -> str:
        """Value of one label."""
        return self._map.get(name, default)

    def has(self, name: str) -> bool:
        """Whether the label is present."""
        return name in self._map

    def items(self) -> Tuple[Tuple[str, str], ...]:
        """All (name, value) pairs, sorted by name."""
        return self._pairs

    def without(self, *names: str) -> "Labels":
        """Copy with the given labels removed."""
        key = ("-",) + names
        cache = self._derived
        if cache is None:
            cache = self._derived = {}
        derived = cache.get(key)
        if derived is None:
            drop = set(names)
            derived = Labels({k: v for k, v in self._pairs if k not in drop})
            cache[key] = derived
        return derived

    def keep_only(self, names: Iterable[str]) -> "Labels":
        """Copy keeping only the given labels (``by (...)`` grouping)."""
        key = ("+",) + tuple(names)
        cache = self._derived
        if cache is None:
            cache = self._derived = {}
        derived = cache.get(key)
        if derived is None:
            keep = set(key[1:])
            derived = Labels({k: v for k, v in self._pairs if k in keep})
            cache[key] = derived
        return derived

    def with_label(self, name: str, value: str) -> "Labels":
        """Copy with one label added or replaced."""
        mapping = dict(self._pairs)
        mapping[name] = value
        return Labels(mapping)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Labels) and self._pairs == other._pairs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ",".join(f'{k}="{v}"' for k, v in self._pairs if k != METRIC_NAME_LABEL)
        return f"{self.metric_name}{{{inner}}}"


class Sample(NamedTuple):
    """One (timestamp, value) point.  Timestamps are virtual nanoseconds.

    A ``NamedTuple`` rather than a frozen dataclass: query results
    materialise one instance per (series, step) cell, so construction
    cost is a measurable slice of every range evaluation, and tuple
    construction is roughly half the cost of a frozen dataclass's
    ``object.__setattr__`` per field.  Field access, equality, and the
    ``repr`` format are unchanged.
    """

    time_ns: int
    value: float


class MatchOp:
    """Label matcher operators."""

    EQ = "="
    NE = "!="
    RE = "=~"
    NRE = "!~"


@dataclass(frozen=True)
class Matcher:
    """One label matcher, e.g. ``process=~"redis.*"``."""

    name: str
    op: str
    value: str
    _compiled: Optional[re.Pattern] = field(default=None, compare=False, hash=False)

    @staticmethod
    def eq(name: str, value: str) -> "Matcher":
        """Equality matcher."""
        return Matcher(name, MatchOp.EQ, value)

    @staticmethod
    def ne(name: str, value: str) -> "Matcher":
        """Inequality matcher."""
        return Matcher(name, MatchOp.NE, value)

    @staticmethod
    def regex(name: str, value: str) -> "Matcher":
        """Regex matcher (fully anchored, as in PromQL)."""
        return Matcher(name, MatchOp.RE, value, re.compile(f"^(?:{value})$"))

    @staticmethod
    def not_regex(name: str, value: str) -> "Matcher":
        """Negated regex matcher."""
        return Matcher(name, MatchOp.NRE, value, re.compile(f"^(?:{value})$"))

    def matches(self, labels: Labels) -> bool:
        """Whether a label set satisfies this matcher."""
        actual = labels.get(self.name, "")
        if self.op == MatchOp.EQ:
            return actual == self.value
        if self.op == MatchOp.NE:
            return actual != self.value
        pattern = self._compiled or re.compile(f"^(?:{self.value})$")
        if self.op == MatchOp.RE:
            return pattern.match(actual) is not None
        if self.op == MatchOp.NRE:
            return pattern.match(actual) is None
        raise TsdbError(f"unknown matcher op: {self.op}")


@dataclass
class Series:
    """A resolved series: labels plus its samples in a window."""

    labels: Labels
    samples: List[Sample] = field(default_factory=list)

    def last_value(self) -> Optional[float]:
        """Value of the newest sample, if any."""
        return self.samples[-1].value if self.samples else None
