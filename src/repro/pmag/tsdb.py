"""The time-series database."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import TsdbError
from repro.pmag.chunks import ChunkedSeries
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL, Sample, Series


class Tsdb:
    """Labelled time-series storage with an inverted label index.

    Append-only per series (out-of-order appends are rejected, as in
    Prometheus), with chunk-granular retention and a postings-style index:
    for every (label name, value) pair, the set of series carrying it.
    Selection intersects postings for equality matchers, then filters the
    survivors with the remaining matchers.
    """

    def __init__(self, retention_ns: Optional[int] = None) -> None:
        self._series: Dict[Labels, ChunkedSeries] = {}
        self._postings: Dict[tuple, Set[Labels]] = {}
        self.retention_ns = retention_ns
        self.total_appends = 0
        self._wal = None

    def attach_wal(self, wal) -> None:
        """Write successful appends through to a write-ahead log.

        The log is notified *after* the in-memory append succeeds, so
        rejected samples (out-of-order, bad labels) never reach the WAL
        and replay is free of known-bad records.
        """
        self._wal = wal

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, labels: Labels, time_ns: int, value: float) -> None:
        """Append one sample to the series identified by ``labels``."""
        if not labels.metric_name:
            raise TsdbError(f"series needs a {METRIC_NAME_LABEL} label: {labels!r}")
        storage = self._series.get(labels)
        if storage is None:
            storage = ChunkedSeries()
            self._series[labels] = storage
            for pair in labels.items():
                self._postings.setdefault(pair, set()).add(labels)
        storage.append(time_ns, value)
        self.total_appends += 1
        if self._wal is not None:
            self._wal.append(labels, time_ns, value)

    def install_series(self, labels: Labels, storage: ChunkedSeries) -> None:
        """Install a fully-built series (the archive/WAL restore fast path).

        Bypasses per-sample appends: the chunk layout of ``storage`` is
        preserved exactly, so a restored database is byte-identical to the
        snapshotted one under further chunk-granular operations (retention,
        re-snapshot).  Restored samples count towards ``total_appends``
        so ingest totals stay monotonic across a crash/restore cycle.
        """
        if not labels.metric_name:
            raise TsdbError(f"series needs a {METRIC_NAME_LABEL} label: {labels!r}")
        if labels in self._series:
            raise TsdbError(f"series already exists: {labels!r}")
        self._series[labels] = storage
        for pair in labels.items():
            self._postings.setdefault(pair, set()).add(labels)
        self.total_appends += storage.sample_count

    def append_sample(self, metric: str, time_ns: int, value: float, **labels: str) -> None:
        """Convenience ingest by metric name and keyword labels.

        The positional parameter is ``metric`` so ``name`` remains usable
        as a keyword label.
        """
        self.append(Labels.of(metric, **labels), time_ns, value)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _candidates(
        self, matchers: Sequence[Matcher]
    ) -> Tuple[Iterable[Labels], List[Matcher]]:
        """Candidate series for ``matchers`` plus the residual matchers.

        Equality matchers with a non-empty value are resolved through the
        postings index and need not be re-applied.  Everything else — and
        crucially equality matchers with an *empty* value, which in
        Prometheus semantics match series *lacking* the label and therefore
        have no postings entry to intersect — is returned as a residual
        that callers must post-filter with :meth:`Matcher.matches`.
        """
        indexed = [m for m in matchers if m.op == "=" and m.value]
        residual = [m for m in matchers if not (m.op == "=" and m.value)]
        if not indexed:
            return list(self._series), residual
        sets = []
        for matcher in indexed:
            postings = self._postings.get((matcher.name, matcher.value))
            if not postings:
                return [], residual
            sets.append(postings)
        smallest = min(sets, key=len)
        candidates = [
            labels for labels in smallest
            if all(labels in s for s in sets if s is not smallest)
        ]
        return candidates, residual

    def select(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
    ) -> List[Series]:
        """All series matching every matcher, with samples in the window."""
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        result: List[Series] = []
        candidates, residual = self._candidates(matchers)
        for labels in candidates:
            if residual and not all(m.matches(labels) for m in residual):
                continue
            samples = self._series[labels].window(start_ns, end_ns)
            if samples:
                result.append(Series(labels=labels, samples=samples))
        result.sort(key=lambda s: s.labels.items())
        return result

    def select_arrays(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
    ) -> List[Tuple[Labels, List[int], List[float]]]:
        """Like :meth:`select`, but as parallel (timestamps, values) arrays.

        Same series, same order, same samples — without allocating a
        :class:`Sample` per point.  The query engine's bulk range
        evaluation reads through this.
        """
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        result: List[Tuple[Labels, List[int], List[float]]] = []
        candidates, residual = self._candidates(matchers)
        for labels in candidates:
            if residual and not all(m.matches(labels) for m in residual):
                continue
            times, values = self._series[labels].window_arrays(start_ns, end_ns)
            if times:
                result.append((labels, times, values))
        result.sort(key=lambda entry: entry[0].items())
        return result

    def select_metric(
        self, metric: str, start_ns: int, end_ns: int, **label_filters: str
    ) -> List[Series]:
        """Select by metric name plus equality label filters."""
        matchers = [Matcher.eq(METRIC_NAME_LABEL, metric)]
        matchers.extend(Matcher.eq(k, v) for k, v in label_filters.items())
        return self.select(matchers, start_ns, end_ns)

    def latest(self, metric: str, **label_filters: str) -> Optional[Sample]:
        """Newest sample of the first series matching name + filters."""
        matchers = [Matcher.eq(METRIC_NAME_LABEL, metric)]
        matchers.extend(Matcher.eq(k, v) for k, v in label_filters.items())
        best: Optional[Sample] = None
        candidates, residual = self._candidates(matchers)
        for labels in candidates:
            if residual and not all(m.matches(labels) for m in residual):
                continue
            sample = self._series[labels].last_sample()
            if sample is not None and (best is None or sample.time_ns > best.time_ns):
                best = sample
        return best

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def series_count(self) -> int:
        """Number of distinct series."""
        return len(self._series)

    def sample_count(self) -> int:
        """Total stored samples."""
        return sum(s.sample_count for s in self._series.values())

    def label_values(self, label_name: str) -> List[str]:
        """Distinct values of one label across all series."""
        return sorted({
            value for (name, value) in self._postings if name == label_name
        })

    def metric_names(self) -> List[str]:
        """All metric names with at least one series."""
        return self.label_values(METRIC_NAME_LABEL)

    def memory_bytes(self) -> int:
        """Approximate storage footprint."""
        return sum(s.memory_bytes() for s in self._series.values())

    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Admin API: drop every series matching all matchers.

        Returns the number of series deleted.  Mirrors Prometheus's
        ``delete_series`` admin endpoint — used to purge a misbehaving
        exporter's data or a mis-labelled ingest.
        """
        candidates, residual = self._candidates(matchers)
        victims = [
            labels for labels in candidates
            if all(m.matches(labels) for m in residual)
        ]
        for labels in victims:
            del self._series[labels]
            for pair in labels.items():
                postings = self._postings.get(pair)
                if postings is not None:
                    postings.discard(labels)
                    if not postings:
                        del self._postings[pair]
        return len(victims)

    def enforce_retention(self, now_ns: int) -> int:
        """Drop chunks older than the retention horizon; returns samples dropped."""
        if self.retention_ns is None:
            return 0
        cutoff = now_ns - self.retention_ns
        dropped = 0
        empty: List[Labels] = []
        for labels, storage in self._series.items():
            dropped += storage.drop_before(cutoff)
            if storage.sample_count == 0:
                empty.append(labels)
        for labels in empty:
            del self._series[labels]
            for pair in labels.items():
                postings = self._postings.get(pair)
                if postings is not None:
                    postings.discard(labels)
                    if not postings:
                        del self._postings[pair]
        return dropped
