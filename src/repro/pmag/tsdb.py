"""The time-series database.

Storage is pluggable behind :class:`StorageEngine`: :class:`Tsdb` (this
module) is the single-shard implementation, and
:class:`repro.pmag.storage.ShardedTsdb` fans the same interface out over
N of them.  Everything above — scrape ingest, the query engine, rules,
dashboards, archive, WAL — talks to the interface, so shard count is
configuration, not surgery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TsdbError
from repro.pmag.blocks import BlockPolicy, SeriesRollup, StorageStats
from repro.pmag.chunks import ChunkedSeries
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL, Sample, Series


class StorageEngine(ABC):
    """What the rest of the stack needs from time-series storage.

    Implementations must keep three wire-shape invariants so the layers
    above stay engine-agnostic:

    * ``select``/``select_arrays`` return series sorted by
      ``labels.items()`` — the merge key sharded engines must preserve;
    * appends are per-series monotonic (out-of-order rejected), so WAL
      replay is idempotent regardless of how series are routed;
    * ``storage_stats()`` returns the shape the ``teemon_storage_*``
      self-telemetry renders: shard count, per-shard series/sample
      counts, and the compaction counters.

    The attributes ``retention_ns``, ``total_appends``, ``stats`` and
    ``block_policy`` are part of the interface as plain attributes.
    """

    retention_ns: Optional[int]
    total_appends: int
    stats: StorageStats
    block_policy: Optional[BlockPolicy]

    # -- ingest --------------------------------------------------------
    @abstractmethod
    def append(self, labels: Labels, time_ns: int, value: float) -> None:
        """Append one sample to the series identified by ``labels``."""

    @abstractmethod
    def install_series(self, labels: Labels, storage: ChunkedSeries) -> None:
        """Install a fully-built series (archive/WAL restore fast path)."""

    @abstractmethod
    def attach_wal(self, wal) -> None:
        """Write successful appends through to a write-ahead log."""

    def append_sample(
        self, metric: str, time_ns: int, value: float, **labels: str
    ) -> None:
        """Convenience ingest by metric name and keyword labels.

        The positional parameter is ``metric`` so ``name`` remains usable
        as a keyword label.
        """
        self.append(Labels.of(metric, **labels), time_ns, value)

    def append_batch(
        self, entries: Sequence[Tuple[Labels, int, float]]
    ) -> List[int]:
        """Append one scrape cycle's samples in a single engine call.

        Returns the indices (into ``entries``) of rejected samples —
        out-of-order appends, missing metric names — in ascending order;
        everything else was accepted.  Entries are applied in order, so
        the outcome per series is identical to per-sample :meth:`append`.
        Engines override this to amortise routing and WAL write-through;
        the default simply loops.
        """
        rejected: List[int] = []
        for index, (labels, time_ns, value) in enumerate(entries):
            try:
                self.append(labels, time_ns, value)
            except TsdbError:
                rejected.append(index)
        return rejected

    # -- selection -----------------------------------------------------
    @abstractmethod
    def select(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Series]:
        """All series matching every matcher, with samples in the window."""

    @abstractmethod
    def select_arrays(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Tuple[Labels, List[int], List[float]]]:
        """Like :meth:`select`, but as parallel (timestamps, values) arrays."""

    @abstractmethod
    def select_rollups(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Tuple[Labels, SeriesRollup]]:
        """Downsampled rollups of matching series overlapping the window."""

    @abstractmethod
    def latest(self, metric: str, **label_filters: str) -> Optional[Sample]:
        """Newest sample of the best series matching name + filters."""

    def select_metric(
        self, metric: str, start_ns: int, end_ns: int, **label_filters: str
    ) -> List[Series]:
        """Select by metric name plus equality label filters."""
        matchers = [Matcher.eq(METRIC_NAME_LABEL, metric)]
        matchers.extend(Matcher.eq(k, v) for k, v in label_filters.items())
        return self.select(matchers, start_ns, end_ns)

    # -- introspection -------------------------------------------------
    @abstractmethod
    def series_count(self) -> int:
        """Number of distinct series."""

    @abstractmethod
    def sample_count(self) -> int:
        """Total raw (not yet downsampled) samples."""

    @abstractmethod
    def label_values(self, label_name: str) -> List[str]:
        """Distinct values of one label across all series."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate storage footprint."""

    @abstractmethod
    def series_items(self) -> Iterable[Tuple[Labels, ChunkedSeries]]:
        """Every (labels, raw storage) pair, in stable insertion order."""

    @abstractmethod
    def has_rollups(self) -> bool:
        """Whether any series carries downsampled buckets."""

    @abstractmethod
    def storage_stats(self) -> dict:
        """Shard layout and compaction counters (self-telemetry shape)."""

    def metric_names(self) -> List[str]:
        """All metric names with at least one series."""
        return self.label_values(METRIC_NAME_LABEL)

    @property
    @abstractmethod
    def shard_count(self) -> int:
        """Number of shards behind this engine (1 for the monolith)."""

    @property
    def downsample_resolution_ns(self) -> Optional[int]:
        """Rollup bucket width, or None when downsampling is off."""
        policy = self.block_policy
        return policy.resolution_ns if policy is not None else None

    # -- maintenance ---------------------------------------------------
    @abstractmethod
    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Admin API: drop every series matching all matchers."""

    @abstractmethod
    def enforce_retention(self, now_ns: int) -> int:
        """Drop data older than the retention horizon; returns samples dropped."""

    @abstractmethod
    def compact(self, now_ns: int) -> int:
        """Fold raw samples past the downsample horizon into rollups."""


class Tsdb(StorageEngine):
    """Labelled time-series storage with an inverted label index.

    Append-only per series (out-of-order appends are rejected, as in
    Prometheus), with chunk-granular retention and a postings-style index:
    for every (label name, value) pair, the set of series carrying it.
    Selection intersects postings for equality matchers, then filters the
    survivors with the remaining matchers.

    With a :class:`~repro.pmag.blocks.BlockPolicy`, :meth:`compact` folds
    samples older than the downsample horizon into per-series
    :class:`~repro.pmag.blocks.SeriesRollup` buckets and drops the raw
    chunks; retention then cuts at block granularity.
    """

    def __init__(
        self,
        retention_ns: Optional[int] = None,
        block_policy: Optional[BlockPolicy] = None,
    ) -> None:
        self._series: Dict[Labels, ChunkedSeries] = {}
        self._postings: Dict[tuple, Set[Labels]] = {}
        self._rollups: Dict[Labels, SeriesRollup] = {}
        self.retention_ns = retention_ns
        self.block_policy = block_policy
        self.total_appends = 0
        self.batch_appends_total = 0
        self.stats = StorageStats()
        self._wal = None

    def attach_wal(self, wal) -> None:
        """Write successful appends through to a write-ahead log.

        The log is notified *after* the in-memory append succeeds, so
        rejected samples (out-of-order, bad labels) never reach the WAL
        and replay is free of known-bad records.
        """
        self._wal = wal

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, labels: Labels, time_ns: int, value: float) -> None:
        """Append one sample to the series identified by ``labels``."""
        if not labels.metric_name:
            raise TsdbError(f"series needs a {METRIC_NAME_LABEL} label: {labels!r}")
        storage = self._series.get(labels)
        if storage is None:
            storage = ChunkedSeries()
            self._series[labels] = storage
            for pair in labels.items():
                self._postings.setdefault(pair, set()).add(labels)
        if self._rollups and storage.sample_count == 0:
            # The raw head is empty but history may live in the rollup;
            # monotonicity must hold against the folded tail too.
            rollup = self._rollups.get(labels)
            last = rollup.last_time_ns() if rollup is not None else None
            if last is not None and time_ns <= last:
                raise TsdbError(f"out-of-order append: {time_ns} <= {last}")
        storage.append(time_ns, value)
        self.total_appends += 1
        if self._wal is not None:
            self._wal.append(labels, time_ns, value)

    def append_batch(
        self, entries: Sequence[Tuple[Labels, int, float]]
    ) -> List[int]:
        """Batched ingest: per-sample :meth:`append` semantics, one call.

        The in-memory path is the same sequence of operations as
        :meth:`append` (series creation, postings, rollup monotonicity,
        chunk append) applied in entry order, so accept/reject outcomes
        and final state match the per-sample path exactly.  Accepted
        samples reach the WAL as one :meth:`WalWriter.append_many` batch,
        which is where the amortisation happens: flush/rotation
        boundaries are unchanged, but the log costs a few disk writes
        per cycle instead of one per sample.
        """
        series = self._series
        postings = self._postings
        rollups = self._rollups
        wal = self._wal
        accepted: Optional[List[Tuple[Labels, int, float]]] = (
            [] if wal is not None else None
        )
        rejected: List[int] = []
        appended = 0
        for index, entry in enumerate(entries):
            labels, time_ns, value = entry
            if not labels.metric_name:
                rejected.append(index)
                continue
            storage = series.get(labels)
            if storage is None:
                storage = ChunkedSeries()
                series[labels] = storage
                for pair in labels.items():
                    postings.setdefault(pair, set()).add(labels)
            if rollups and storage.sample_count == 0:
                rollup = rollups.get(labels)
                last = rollup.last_time_ns() if rollup is not None else None
                if last is not None and time_ns <= last:
                    rejected.append(index)
                    continue
            try:
                storage.append(time_ns, value)
            except TsdbError:
                rejected.append(index)
                continue
            appended += 1
            if accepted is not None:
                accepted.append(entry)
        self.total_appends += appended
        self.batch_appends_total += 1
        if accepted:
            append_many = getattr(wal, "append_many", None)
            if append_many is not None:
                append_many(accepted)
            else:
                for labels, time_ns, value in accepted:
                    wal.append(labels, time_ns, value)
        return rejected

    def install_series(self, labels: Labels, storage: ChunkedSeries) -> None:
        """Install a fully-built series (the archive/WAL restore fast path).

        Bypasses per-sample appends: the chunk layout of ``storage`` is
        preserved exactly, so a restored database is byte-identical to the
        snapshotted one under further chunk-granular operations (retention,
        re-snapshot).  Restored samples count towards ``total_appends``
        so ingest totals stay monotonic across a crash/restore cycle.
        """
        if not labels.metric_name:
            raise TsdbError(f"series needs a {METRIC_NAME_LABEL} label: {labels!r}")
        if labels in self._series:
            raise TsdbError(f"series already exists: {labels!r}")
        self._series[labels] = storage
        for pair in labels.items():
            self._postings.setdefault(pair, set()).add(labels)
        self.total_appends += storage.sample_count

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _candidates(
        self, matchers: Sequence[Matcher]
    ) -> Tuple[Iterable[Labels], List[Matcher]]:
        """Candidate series for ``matchers`` plus the residual matchers.

        Equality matchers with a non-empty value are resolved through the
        postings index and need not be re-applied.  Everything else — and
        crucially equality matchers with an *empty* value, which in
        Prometheus semantics match series *lacking* the label and therefore
        have no postings entry to intersect — is returned as a residual
        that callers must post-filter with :meth:`Matcher.matches`.
        """
        indexed = [m for m in matchers if m.op == "=" and m.value]
        residual = [m for m in matchers if not (m.op == "=" and m.value)]
        if not indexed:
            return list(self._series), residual
        sets = []
        for matcher in indexed:
            postings = self._postings.get((matcher.name, matcher.value))
            if not postings:
                return [], residual
            sets.append(postings)
        smallest = min(sets, key=len)
        candidates = [
            labels for labels in smallest
            if all(labels in s for s in sets if s is not smallest)
        ]
        return candidates, residual

    def _matching_series(self, matchers: Sequence[Matcher]) -> Iterator[Labels]:
        """Series surviving postings intersection *and* residual filters.

        The shared candidate/residual loop behind ``select``,
        ``select_arrays``, ``latest`` and ``delete_series`` — unsorted;
        callers that need the wire order sort their materialised results.
        """
        candidates, residual = self._candidates(matchers)
        if not residual:
            yield from candidates
            return
        for labels in candidates:
            if all(m.matches(labels) for m in residual):
                yield labels

    def select(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
    ) -> List[Series]:
        """All series matching every matcher, with samples in the window."""
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        result: List[Series] = []
        for labels in self._matching_series(matchers):
            samples = self._series[labels].window(start_ns, end_ns)
            if samples:
                result.append(Series(labels=labels, samples=samples))
        result.sort(key=lambda s: s.labels.items())
        return result

    def select_arrays(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
    ) -> List[Tuple[Labels, List[int], List[float]]]:
        """Like :meth:`select`, but as parallel (timestamps, values) arrays.

        Same series, same order, same samples — without allocating a
        :class:`Sample` per point.  The query engine's bulk range
        evaluation reads through this.
        """
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        result: List[Tuple[Labels, List[int], List[float]]] = []
        for labels in self._matching_series(matchers):
            times, values = self._series[labels].window_arrays(start_ns, end_ns)
            if times:
                result.append((labels, times, values))
        result.sort(key=lambda entry: entry[0].items())
        return result

    def select_rollups(
        self,
        matchers: Sequence[Matcher],
        start_ns: int,
        end_ns: int,
    ) -> List[Tuple[Labels, SeriesRollup]]:
        """Rollups of matching series that overlap ``[start_ns, end_ns]``.

        Sorted by ``labels.items()`` like :meth:`select_arrays`, so the
        query engine can merge rollup and raw streams positionally.  The
        bucket starting exactly at ``end_ns`` still counts as overlap —
        its first sample may sit on the inclusive window edge.
        """
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        if not self._rollups:
            return []
        result: List[Tuple[Labels, SeriesRollup]] = []
        for labels in self._matching_series(matchers):
            rollup = self._rollups.get(labels)
            if rollup is None or not rollup.bucket_count:
                continue
            if rollup._starts[0] > end_ns or rollup.last_time_ns() < start_ns:  # noqa: SLF001
                continue
            result.append((labels, rollup))
        result.sort(key=lambda entry: entry[0].items())
        return result

    def latest(self, metric: str, **label_filters: str) -> Optional[Sample]:
        """Newest sample of the best series matching name + filters.

        Timestamp ties break towards the smallest ``labels.items()`` —
        a total order, so the answer is independent of index iteration
        order and of how series are sharded.
        """
        return self.latest_keyed(metric, **label_filters)[1]

    def latest_keyed(
        self, metric: str, **label_filters: str
    ) -> Tuple[Optional[tuple], Optional[Sample]]:
        """:meth:`latest` plus the winning series' sort key (items tuple).

        The key lets a sharded engine apply the same tie-break across
        shards without re-deriving which series won.
        """
        matchers = [Matcher.eq(METRIC_NAME_LABEL, metric)]
        matchers.extend(Matcher.eq(k, v) for k, v in label_filters.items())
        best: Optional[Sample] = None
        best_key = None
        for labels in self._matching_series(matchers):
            sample = self._series[labels].last_sample()
            if sample is None:
                continue
            key = labels.items()
            if (best is None or sample.time_ns > best.time_ns
                    or (sample.time_ns == best.time_ns and key < best_key)):
                best = sample
                best_key = key
        return best_key, best

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def series_count(self) -> int:
        """Number of distinct series."""
        return len(self._series)

    def sample_count(self) -> int:
        """Total raw stored samples (folded samples live in rollups)."""
        return sum(s.sample_count for s in self._series.values())

    def label_values(self, label_name: str) -> List[str]:
        """Distinct values of one label across all series."""
        return sorted({
            value for (name, value) in self._postings if name == label_name
        })

    def memory_bytes(self) -> int:
        """Approximate storage footprint (raw chunks plus rollup buckets)."""
        total = sum(s.memory_bytes() for s in self._series.values())
        if self._rollups:
            total += sum(r.memory_bytes() for r in self._rollups.values())
        return total

    def series_items(self) -> Iterable[Tuple[Labels, ChunkedSeries]]:
        """Every (labels, raw storage) pair in insertion order.

        Insertion order is the archive's byte-identity contract: v2
        snapshots of the same ingest sequence must encode series in the
        same order.
        """
        return self._series.items()

    def has_rollups(self) -> bool:
        """Whether any series carries downsampled buckets."""
        return bool(self._rollups)

    @property
    def shard_count(self) -> int:
        """The monolith is its own single shard."""
        return 1

    def storage_stats(self) -> dict:
        """Single-shard stats in the engine-wide telemetry shape."""
        return {
            "shards": 1,
            "per_shard": [self.shard_stats()],
            "compactions_total": self.stats.compactions_total,
            "samples_compacted_total": self.stats.samples_compacted_total,
            "bytes_saved_total": self.stats.bytes_saved_total,
            "downsampled_reads_total": self.stats.downsampled_reads_total,
            "pushdown_reads_total": self.stats.pushdown_reads_total,
        }

    def shard_stats(self) -> dict:
        """This store's contribution to the per-shard telemetry."""
        rollups = self._rollups.values()
        return {
            "series": len(self._series),
            "samples": self.sample_count(),
            "rollup_buckets": sum(r.bucket_count for r in rollups),
            "rollup_samples": sum(r.sample_count for r in rollups),
            "batch_appends": self.batch_appends_total,
        }

    def _unindex(self, labels: Labels) -> None:
        """Remove a dead series: storage, rollup, and postings entries."""
        self._series.pop(labels, None)
        self._rollups.pop(labels, None)
        for pair in labels.items():
            postings = self._postings.get(pair)
            if postings is not None:
                postings.discard(labels)
                if not postings:
                    del self._postings[pair]

    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Admin API: drop every series matching all matchers.

        Returns the number of series deleted.  Mirrors Prometheus's
        ``delete_series`` admin endpoint — used to purge a misbehaving
        exporter's data or a mis-labelled ingest.
        """
        victims = list(self._matching_series(matchers))
        for labels in victims:
            self._unindex(labels)
        return len(victims)

    def enforce_retention(self, now_ns: int) -> int:
        """Drop data older than the retention horizon; returns samples dropped.

        Without a block policy this is the chunk-granular cut it always
        was.  With one, the cutoff is aligned down to a block boundary so
        retention acts at block granularity, and rollup buckets past the
        cut are released along with raw chunks.
        """
        if self.retention_ns is None:
            return 0
        cutoff = now_ns - self.retention_ns
        if self.block_policy is not None:
            cutoff -= cutoff % self.block_policy.block_range_ns
        dropped = 0
        empty: List[Labels] = []
        for labels, storage in self._series.items():
            dropped += storage.drop_before(cutoff)
            rollup = self._rollups.get(labels)
            if rollup is not None:
                dropped += rollup.drop_before(cutoff)
                if storage.sample_count == 0 and rollup.bucket_count == 0:
                    empty.append(labels)
            elif storage.sample_count == 0:
                empty.append(labels)
        for labels in empty:
            self._unindex(labels)
        return dropped

    def compact(self, now_ns: int) -> int:
        """Fold raw samples past the downsample horizon into rollups.

        The horizon is aligned down to a block boundary (hence to a
        bucket boundary), so folded samples fill whole buckets and
        rollup reads stay exact.  Returns the samples folded.
        """
        policy = self.block_policy
        if policy is None:
            return 0
        horizon = now_ns - policy.downsample_after_ns
        horizon -= horizon % policy.block_range_ns
        if horizon <= 0:
            return 0
        folded = 0
        saved = 0
        for labels, storage in self._series.items():
            times, values = storage.split_before(horizon)
            if not times:
                continue
            rollup = self._rollups.get(labels)
            if rollup is None:
                rollup = SeriesRollup(policy.resolution_ns)
                self._rollups[labels] = rollup
            before = rollup.memory_bytes()
            rollup.fold(times, values)
            folded += len(times)
            # A raw sample is ~16 bytes (8B timestamp + 8B value).
            saved += 16 * len(times) - (rollup.memory_bytes() - before)
        self.stats.compactions_total += 1
        if folded:
            self.stats.samples_compacted_total += folded
            self.stats.bytes_saved_total += saved
        return folded
