"""Silences and inhibition: muting without losing state.

Both mechanisms act at *notification* time only — the state machine
keeps evaluating and the journal keeps recording transitions, so a
silence expiring mid-incident immediately surfaces the still-firing
alert without replaying its history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TsdbError
from repro.pmag.model import Labels


@dataclass(frozen=True)
class Silence:
    """Mute notifications for alerts matching ``match`` in a window.

    ``match`` is exact label equality (every listed label must match);
    the window is inclusive of ``start_ns`` and exclusive of ``end_ns``.
    """

    match: Dict[str, str] = field(default_factory=dict)
    start_ns: int = 0
    end_ns: int = 0
    comment: str = ""

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise TsdbError(
                f"silence window is empty: [{self.start_ns}, {self.end_ns})"
            )
        if not self.match:
            raise TsdbError("silence needs at least one label matcher")

    def covers(self, labels: Labels, now_ns: int) -> bool:
        """Whether this silence mutes the given alert labels at ``now_ns``."""
        if not self.start_ns <= now_ns < self.end_ns:
            return False
        return all(
            labels.get(key) == value for key, value in self.match.items()
        )


class SilenceStore:
    """The deployment's silences.  Survives monitor kill/resurrect.

    Silences are operator configuration, not monitor state — a crash of
    the monitor process must not un-mute a noisy alert — so the store
    lives on the deployment substrate alongside the alert journal.
    """

    def __init__(self, silences: Iterable[Silence] = ()) -> None:
        self._silences: List[Silence] = list(silences)

    def add(self, silence: Silence) -> None:
        """Register a silence."""
        self._silences.append(silence)

    def silences(self) -> List[Silence]:
        """All registered silences."""
        return list(self._silences)

    def covering(self, labels: Labels, now_ns: int) -> Optional[Silence]:
        """The first silence muting these labels now, if any."""
        for silence in self._silences:
            if silence.covers(labels, now_ns):
                return silence
        return None


@dataclass(frozen=True)
class InhibitRule:
    """Mute target alerts while a matching source alert is firing.

    ``source`` and ``target`` are exact-equality label filters; when a
    firing alert matches ``source``, any alert matching ``target`` that
    agrees with it on every label in ``equal`` is inhibited.  The classic
    use: a node-down page inhibits every per-service alert on that host.
    """

    source: Dict[str, str] = field(default_factory=dict)
    target: Dict[str, str] = field(default_factory=dict)
    equal: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise TsdbError("inhibit rule needs source and target matchers")


class Inhibitor:
    """Evaluates inhibition rules against the currently firing set."""

    def __init__(self, rules: Sequence[InhibitRule] = ()) -> None:
        self._rules = list(rules)

    def rules(self) -> List[InhibitRule]:
        """Registered inhibition rules."""
        return list(self._rules)

    @staticmethod
    def _matches(labels: Labels, match: Dict[str, str]) -> bool:
        return all(labels.get(k) == v for k, v in match.items())

    def is_inhibited(
        self, labels: Labels, firing: Sequence[Labels]
    ) -> bool:
        """Whether an alert with these labels is muted by a firing source.

        An alert never inhibits itself: a source whose label set is
        identical to the candidate's is skipped, so a rule whose source
        and target filters overlap cannot silence the very alert that
        triggered it.
        """
        for rule in self._rules:
            if not self._matches(labels, rule.target):
                continue
            for source_labels in firing:
                if source_labels.items() == labels.items():
                    continue
                if not self._matches(source_labels, rule.source):
                    continue
                if all(
                    source_labels.get(key) == labels.get(key)
                    for key in rule.equal
                ):
                    return True
        return False
