"""Notification routing: grouping, dedup, and journalled delivery.

The :class:`NotificationRouter` is the Alertmanager-shaped half of the
alerting engine.  It consumes state-machine events from the alerting
rules, groups firing alerts per routing-tree node, waits out
``group_wait``/``group_interval`` on the virtual clock, filters silenced
and inhibited alerts, and delivers webhook notifications through the
simulated :class:`~repro.net.http.HttpNetwork` — which means PR 2's
fault injectors (flap, delay, slow-link) apply to notification delivery
exactly as they do to scrapes, and deliveries get the same hardening:
a timeout budget against the response's modelled latency and jittered
exponential retries on the virtual clock.

Every event and every delivery outcome lands in the shared
:class:`~repro.pmag.alerting.state.AlertJournal`, so the whole
notification history is byte-comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TsdbError
from repro.net.http import HttpNetwork
from repro.pmag.alerting.rules import (
    EVENT_EXPIRED,
    EVENT_FIRING,
    EVENT_PENDING,
    EVENT_RESOLVED,
)
from repro.pmag.alerting.silences import Inhibitor, SilenceStore
from repro.pmag.alerting.state import (
    STATE_FIRING,
    AlertInstance,
    AlertJournal,
    canonical_labels,
)
from repro.pmag.model import Labels
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng

#: Notification outcomes counted per receiver (exported as
#: ``teemon_notifications_total{receiver, outcome}``).
OUTCOME_DELIVERED = "delivered"
OUTCOME_FAILED = "failed"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_RETRY = "retry"
OUTCOME_SILENCED = "silenced"
OUTCOME_INHIBITED = "inhibited"


@dataclass(frozen=True)
class Receiver:
    """A notification destination.

    With a ``url`` deliveries POST to it over the simulated network;
    without one the receiver is journal-only (deliveries succeed
    immediately and exist purely as journal lines) — the deterministic
    stand-in for a pager.
    """

    name: str
    url: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TsdbError("receiver needs a name")


@dataclass(frozen=True)
class Route:
    """One node of the Alertmanager-style routing tree.

    An alert descends from the root: the first matching child wins
    unless that child sets ``continue_``, in which case later siblings
    are also consulted; a node with no matching child delivers to its
    own receiver.  ``match`` is exact label equality.
    """

    receiver: str
    match: Tuple[Tuple[str, str], ...] = ()
    group_by: Tuple[str, ...] = ("alertname",)
    group_wait_s: float = 0.0
    group_interval_s: float = 30.0
    repeat_interval_s: Optional[float] = None
    routes: Tuple["Route", ...] = ()
    continue_: bool = False

    def __post_init__(self) -> None:
        if not self.receiver:
            raise TsdbError("route needs a receiver")
        if self.group_wait_s < 0 or self.group_interval_s <= 0:
            raise TsdbError("route intervals must be non-negative/positive")
        if self.repeat_interval_s is not None and self.repeat_interval_s <= 0:
            raise TsdbError("repeat interval must be positive")

    def _matches(self, labels: Labels) -> bool:
        return all(labels.get(key) == value for key, value in self.match)

    def resolve(self, labels: Labels) -> List["Route"]:
        """The delivery routes for an alert, Alertmanager descent rules."""
        if not self._matches(labels):
            return []
        matched: List[Route] = []
        for child in self.routes:
            sub = child.resolve(labels)
            if sub:
                matched.extend(sub)
                if not child.continue_:
                    break
        return matched or [self]

    def receivers_named(self) -> List[str]:
        """Every receiver name referenced by this subtree."""
        names = [self.receiver]
        for child in self.routes:
            names.extend(child.receivers_named())
        return names


@dataclass
class _Group:
    """Mutable per-(route, group-key) notification state."""

    alerts: Dict[tuple, AlertInstance] = field(default_factory=dict)
    resolved: List[AlertInstance] = field(default_factory=list)
    version: int = 0
    notified_version: int = 0
    last_notified_ns: Optional[int] = None
    #: True while at least one alert in the group was muted (silenced or
    #: inhibited) at the last flush; keeps the flush timer re-arming so
    #: a silence expiring mid-incident surfaces the alert promptly.
    muted: bool = False


class NotificationRouter:
    """Routes alert events to receivers with grouping and dedup."""

    def __init__(
        self,
        clock: VirtualClock,
        network: HttpNetwork,
        route: Route,
        receivers: Sequence[Receiver],
        rng: Optional[DeterministicRng] = None,
        journal: Optional[AlertJournal] = None,
        silences: Optional[SilenceStore] = None,
        inhibitor: Optional[Inhibitor] = None,
        timeout_s: float = 1.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_jitter: float = 0.5,
    ) -> None:
        if timeout_s <= 0:
            raise TsdbError(f"notify timeout must be positive, got {timeout_s}")
        if max_retries < 0:
            raise TsdbError(f"negative retry count: {max_retries}")
        self._clock = clock
        self._network = network
        self.route = route
        self._receivers: Dict[str, Receiver] = {}
        for receiver in receivers:
            if receiver.name in self._receivers:
                raise TsdbError(f"duplicate receiver: {receiver.name}")
            self._receivers[receiver.name] = receiver
        for name in route.receivers_named():
            if name not in self._receivers:
                raise TsdbError(f"route references unknown receiver: {name}")
        self.journal = journal if journal is not None else AlertJournal()
        self.silences = silences if silences is not None else SilenceStore()
        self.inhibitor = inhibitor if inhibitor is not None else Inhibitor()
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self._rng = (rng or DeterministicRng(0)).fork("notify-backoff")
        self._firing: Dict[tuple, Labels] = {}
        self._groups: Dict[Tuple[Route, tuple], _Group] = {}
        self._timers: Dict[Tuple[Route, tuple], object] = {}
        self._stopped = False
        self.counters: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def handle(
        self, events: Sequence[Tuple[str, AlertInstance]], now_ns: int
    ) -> None:
        """Consume one evaluation cycle's state-machine events."""
        for kind, instance in events:
            detail = ""
            if kind in (EVENT_PENDING, EVENT_FIRING):
                detail = f"value={instance.value:g}"
            self.journal.record(
                now_ns, f"alert-{kind}",
                canonical_labels(instance.labels), detail,
            )
            key = instance.identity()
            if kind == EVENT_FIRING:
                self._firing[key] = instance.labels
                self._enqueue(instance, now_ns)
            elif kind in (EVENT_RESOLVED, EVENT_EXPIRED):
                self._firing.pop(key, None)
                if kind == EVENT_RESOLVED:
                    self._dequeue(instance, now_ns)

    def firing_labels(self) -> List[Labels]:
        """The currently firing label sets, label-sorted."""
        return [self._firing[key] for key in sorted(self._firing)]

    def _group_key(self, route: Route, labels: Labels) -> tuple:
        return tuple((name, labels.get(name)) for name in route.group_by)

    def _enqueue(self, instance: AlertInstance, now_ns: int) -> None:
        for route in self.route.resolve(instance.labels):
            gid = (route, self._group_key(route, instance.labels))
            group = self._groups.setdefault(gid, _Group())
            group.alerts[instance.identity()] = instance
            group.version += 1
            self._arm(gid, now_ns)

    def _dequeue(self, instance: AlertInstance, now_ns: int) -> None:
        for route in self.route.resolve(instance.labels):
            gid = (route, self._group_key(route, instance.labels))
            group = self._groups.get(gid)
            if group is None or instance.identity() not in group.alerts:
                continue
            del group.alerts[instance.identity()]
            group.resolved.append(instance)
            group.version += 1
            self._arm(gid, now_ns)

    # ------------------------------------------------------------------
    # Flush timing
    # ------------------------------------------------------------------
    def _arm(self, gid: Tuple[Route, tuple], now_ns: int) -> None:
        if self._stopped or gid in self._timers:
            return
        route, _ = gid
        group = self._groups[gid]
        if group.last_notified_ns is None:
            delay_ns = int(route.group_wait_s * NANOS_PER_SEC)
        else:
            next_ns = group.last_notified_ns + int(
                route.group_interval_s * NANOS_PER_SEC
            )
            delay_ns = max(0, next_ns - now_ns)
        self._timers[gid] = self._clock.call_later(
            delay_ns, lambda: self._flush(gid)
        )

    def _repeat_due(self, route: Route, group: _Group, now_ns: int) -> bool:
        if route.repeat_interval_s is None or group.last_notified_ns is None:
            return False
        if not group.alerts:
            return False
        repeat_ns = int(route.repeat_interval_s * NANOS_PER_SEC)
        return now_ns - group.last_notified_ns >= repeat_ns

    def _flush(self, gid: Tuple[Route, tuple]) -> None:
        self._timers.pop(gid, None)
        if self._stopped:
            return
        route, group_key = gid
        group = self._groups[gid]
        now_ns = self._clock.now_ns
        dirty = group.version != group.notified_version
        recheck = group.muted and bool(group.alerts)
        if not dirty and not recheck and not self._repeat_due(
            route, group, now_ns
        ):
            return
        version = group.version
        subject = ",".join(f"{k}={v}" for k, v in group_key)
        firing_set = self.firing_labels()
        deliverable: List[AlertInstance] = []
        newly_unmuted = False
        group_was_muted = group.muted
        group.muted = False
        for key in sorted(group.alerts):
            instance = group.alerts[key]
            label_text = canonical_labels(instance.labels)
            silence = self.silences.covering(instance.labels, now_ns)
            if silence is not None:
                group.muted = True
                if dirty:
                    self.journal.record(
                        now_ns, "notify-silenced", label_text,
                        silence.comment or "silenced",
                    )
                    self._count(route.receiver, OUTCOME_SILENCED)
                continue
            if self.inhibitor.is_inhibited(instance.labels, firing_set):
                group.muted = True
                if dirty:
                    self.journal.record(
                        now_ns, "notify-inhibited", label_text
                    )
                    self._count(route.receiver, OUTCOME_INHIBITED)
                continue
            deliverable.append(instance)
        if group_was_muted and deliverable:
            newly_unmuted = True
        resolved = list(group.resolved)
        group.resolved.clear()
        group.notified_version = version
        if (dirty or newly_unmuted or self._repeat_due(
            route, group, now_ns
        )) and (deliverable or resolved):
            group.last_notified_ns = now_ns
            body_lines = [
                f"firing {canonical_labels(i.labels)}" for i in deliverable
            ] + [
                f"resolved {canonical_labels(i.labels)}" for i in resolved
            ]
            self._deliver(
                route.receiver, subject, "\n".join(body_lines),
                len(deliverable), len(resolved), attempt=0,
            )
        if group.alerts and (
            group.muted or route.repeat_interval_s is not None
        ):
            interval_s = (
                route.group_interval_s if group.muted
                else route.repeat_interval_s
            )
            self._timers[gid] = self._clock.call_later(
                int(interval_s * NANOS_PER_SEC),
                lambda: self._flush(gid),
            )

    # ------------------------------------------------------------------
    # Delivery (PushClient-style timeout budget + jittered retries)
    # ------------------------------------------------------------------
    def _deliver(
        self, receiver_name: str, subject: str, body: str,
        n_firing: int, n_resolved: int, attempt: int,
    ) -> None:
        receiver = self._receivers[receiver_name]
        detail = f"firing={n_firing} resolved={n_resolved}"
        now_ns = self._clock.now_ns
        if receiver.url is None:
            self.journal.record(
                now_ns, "notify-delivered", receiver_name, detail
            )
            self._count(receiver_name, OUTCOME_DELIVERED)
            return
        response = self._network.post_url(receiver.url, body)
        latency_s = getattr(response, "latency_s", 0.0)
        timed_out = latency_s > self.timeout_s
        if timed_out:
            self.journal.record(
                self._clock.now_ns, "notify-timeout", receiver_name,
                f"attempt={attempt}",
            )
            self._count(receiver_name, OUTCOME_TIMEOUT)
        if response.ok and not timed_out:
            self.journal.record(
                self._clock.now_ns, "notify-delivered", receiver_name,
                f"{detail} attempt={attempt}",
            )
            self._count(receiver_name, OUTCOME_DELIVERED)
            return
        if attempt < self.max_retries:
            delay_s = self.backoff_base_s * (2 ** attempt)
            if self.backoff_jitter:
                delay_s *= 1.0 + self.backoff_jitter * (
                    2.0 * self._rng.random() - 1.0
                )
            self._count(receiver_name, OUTCOME_RETRY)
            self._clock.call_later(
                int(delay_s * NANOS_PER_SEC),
                lambda: self._retry(
                    receiver_name, subject, body,
                    n_firing, n_resolved, attempt + 1,
                ),
            )
            return
        self.journal.record(
            self._clock.now_ns, "notify-failed", receiver_name,
            f"{detail} attempts={attempt + 1}",
        )
        self._count(receiver_name, OUTCOME_FAILED)

    def _retry(self, receiver_name: str, subject: str, body: str,
               n_firing: int, n_resolved: int, attempt: int) -> None:
        if self._stopped:
            return
        self.journal.record(
            self._clock.now_ns, "notify-retry", receiver_name,
            f"attempt={attempt}",
        )
        self._deliver(
            receiver_name, subject, body, n_firing, n_resolved, attempt
        )

    def _count(self, receiver: str, outcome: str) -> None:
        key = (receiver, outcome)
        self.counters[key] = self.counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def restore_active(
        self, instances: Sequence[AlertInstance], now_ns: int
    ) -> None:
        """Seed router state from crash-restored instances.

        Restored firing alerts enter the firing set and their groups as
        *already notified* — the pre-crash router delivered them, and
        re-notifying after every resurrect is exactly the double-fire
        the chaos suite forbids.  They still repeat on
        ``repeat_interval`` and still resolve normally.
        """
        for instance in instances:
            self.journal.record(
                now_ns, "alert-restored",
                canonical_labels(instance.labels),
                f"state={instance.state}",
            )
            if instance.state != STATE_FIRING:
                continue
            key = instance.identity()
            self._firing[key] = instance.labels
            for route in self.route.resolve(instance.labels):
                gid = (route, self._group_key(route, instance.labels))
                group = self._groups.setdefault(gid, _Group())
                group.alerts[key] = instance
                group.version += 1
                group.notified_version = group.version
                group.last_notified_ns = now_ns
                if (route.repeat_interval_s is not None
                        and gid not in self._timers):
                    self._timers[gid] = self._clock.call_later(
                        int(route.repeat_interval_s * NANOS_PER_SEC),
                        lambda gid=gid: self._flush(gid),
                    )

    def stop(self) -> None:
        """Cancel all pending flush timers (monitor stop/kill)."""
        self._stopped = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def stats(self) -> Dict[str, object]:
        """Counters for the self-exporter."""
        return {
            "notifications": dict(self.counters),
            "firing": len(self._firing),
            "groups": len(self._groups),
        }
