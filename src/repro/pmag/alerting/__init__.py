"""Alertmanager-shaped alerting on the virtual clock.

Alerting rules with ``for_`` durations (pending->firing state machine),
grouping/dedup/silences/inhibition, and a journalled notification router
delivering through the simulated HTTP network — all deterministic and
byte-comparable across same-seed runs, and crash-restorable from the
synthetic ``ALERTS``/``ALERTS_FOR_STATE`` series written through the WAL.
"""

from repro.pmag.alerting.rules import (
    ALERTS_FOR_STATE_METRIC,
    ALERTS_METRIC,
    AlertingRule,
    burn_rate_rules,
)
from repro.pmag.alerting.router import (
    NotificationRouter,
    Receiver,
    Route,
)
from repro.pmag.alerting.silences import (
    InhibitRule,
    Inhibitor,
    Silence,
    SilenceStore,
)
from repro.pmag.alerting.state import (
    STATE_FIRING,
    STATE_PENDING,
    AlertInstance,
    AlertJournal,
    canonical_labels,
)

__all__ = [
    "ALERTS_FOR_STATE_METRIC",
    "ALERTS_METRIC",
    "AlertInstance",
    "AlertJournal",
    "AlertingRule",
    "InhibitRule",
    "Inhibitor",
    "NotificationRouter",
    "Receiver",
    "Route",
    "STATE_FIRING",
    "STATE_PENDING",
    "Silence",
    "SilenceStore",
    "burn_rate_rules",
    "canonical_labels",
]
