"""Alert state: instances, state names, and the deterministic journal.

The alerting layer's observable history is a single append-only journal
of canonically formatted lines — state-machine transitions and
notification outcomes interleaved in virtual-time order.  Like the fault
plan's journal it is the byte-comparable determinism witness: two
same-seed runs must produce byte-identical journal text, and the chaos
suite asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.pmag.model import Labels

#: The pending->firing state machine's states.  An alert whose expression
#: first returns a series enters ``pending``; after the rule's ``for_``
#: duration of continuous activity it transitions to ``firing``; when the
#: expression stops returning the series it leaves the active set
#: (``resolved`` if it had fired, silently expired otherwise).
STATE_PENDING = "pending"
STATE_FIRING = "firing"


def canonical_labels(labels: Labels) -> str:
    """Sorted ``k=v`` rendering — the journal's label wire format."""
    return ",".join(f"{key}={value}" for key, value in labels.items())


@dataclass
class AlertInstance:
    """One active alert: a rule crossed with one output label set."""

    labels: Labels
    active_since_ns: int
    state: str = STATE_PENDING
    value: float = 0.0
    fired_at_ns: Optional[int] = None
    #: True when this instance was rebuilt from recovered state series
    #: after a crash rather than observed live (see
    #: :meth:`~repro.pmag.alerting.rules.AlertingRule.restore`).
    restored: bool = False

    def name(self) -> str:
        """The owning rule's alert name."""
        return self.labels.get("alertname", "")

    def identity(self) -> tuple:
        """Hashable identity: the sorted label items."""
        return self.labels.items()


class AlertJournal:
    """Append-only canonical journal of alerting events.

    Lines are ``"{time_ns} {kind} {subject} {detail}"``; kinds are
    ``alert-*`` for state-machine transitions and ``notify-*`` for
    notification-router outcomes.  The journal object belongs to the
    *deployment*, not the monitor process, so it survives kill/resurrect
    — which is what lets the chaos suite assert "no alert double-fires"
    over the whole run including the crash.
    """

    def __init__(self) -> None:
        self.entries: List[str] = []

    def record(self, time_ns: int, kind: str, subject: str,
               detail: str = "") -> None:
        """Append one canonical line."""
        line = f"{time_ns} {kind} {subject}"
        if detail:
            line = f"{line} {detail}"
        self.entries.append(line)

    def journal_text(self) -> str:
        """The whole journal as one byte-comparable string."""
        return "\n".join(self.entries)

    def lines(self, kind: Optional[str] = None) -> List[str]:
        """All lines, or only those of one kind."""
        if kind is None:
            return list(self.entries)
        return [
            line for line in self.entries
            if line.split(" ", 2)[1] == kind
        ]

    def counts(self) -> Dict[str, int]:
        """Events per kind."""
        result: Dict[str, int] = {}
        for line in self.entries:
            kind = line.split(" ", 2)[1]
            result[kind] = result.get(kind, 0) + 1
        return result

    def __len__(self) -> int:
        return len(self.entries)
