"""Alerting rules: expr + ``for_`` duration with a pending->firing machine.

An :class:`AlertingRule` evaluates a query expression each cycle; every
label set the expression returns is an *alert instance*.  New instances
enter ``pending``; after ``for_`` seconds of continuous presence they
transition to ``firing``; instances that disappear from the result are
``resolved`` (if firing) or silently ``expired`` (if still pending).

Durability mirrors Prometheus: every evaluation writes the synthetic
``ALERTS`` and ``ALERTS_FOR_STATE`` series through the normal append path
(and therefore through the WAL when one is attached), and
:meth:`AlertingRule.restore` rebuilds the active set from those series
after a crash — preserving each instance's original ``active_since`` so
a kill/resurrect mid-``for_`` window neither double-fires a firing alert
nor resets a pending one back to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TsdbError
from repro.pmag.alerting.state import (
    STATE_FIRING,
    STATE_PENDING,
    AlertInstance,
)
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL
from repro.simkernel.clock import NANOS_PER_SEC

#: Synthetic series names, as in Prometheus.  ``ALERTS`` carries one
#: sample per active instance per evaluation (labelled with
#: ``alertstate``); ``ALERTS_FOR_STATE`` carries the instance's
#: ``active_since`` timestamp as its value, which is what restore reads.
ALERTS_METRIC = "ALERTS"
ALERTS_FOR_STATE_METRIC = "ALERTS_FOR_STATE"

#: Tombstone value written to ``ALERTS_FOR_STATE`` when an instance
#: leaves the active set, so restore can tell "resolved before the
#: crash" from "active at the crash".
_RESOLVED_TOMBSTONE = -1.0

#: Event kinds yielded by :meth:`AlertingRule.evaluate`.
EVENT_PENDING = "pending"
EVENT_FIRING = "firing"
EVENT_RESOLVED = "resolved"
EVENT_EXPIRED = "expired"


@dataclass(frozen=True)
class AlertingRule:
    """One alerting rule.

    The frozen dataclass holds only *configuration*; evaluation state
    lives in the mutable ``_active`` dict (excluded from equality), and
    the deployment clones rules per monitor build so a resurrected
    monitor starts from explicitly restored state, never from leftovers.
    """

    name: str
    expr: str
    for_s: float = 0.0
    labels: Dict[str, str] = field(default_factory=dict)
    annotations: Dict[str, str] = field(default_factory=dict)
    _active: Dict[tuple, AlertInstance] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise TsdbError("alerting rule needs a name")
        if self.for_s < 0:
            raise TsdbError(f"negative for_ duration: {self.for_s}")

    @property
    def for_ns(self) -> int:
        """The ``for_`` duration in virtual nanoseconds."""
        return int(self.for_s * NANOS_PER_SEC)

    def clone(self) -> "AlertingRule":
        """A fresh copy with empty evaluation state."""
        return AlertingRule(
            name=self.name,
            expr=self.expr,
            for_s=self.for_s,
            labels=dict(self.labels),
            annotations=dict(self.annotations),
        )

    def active(self) -> List[AlertInstance]:
        """Active instances, in deterministic (label-sorted) order."""
        return [self._active[key] for key in sorted(self._active)]

    def firing(self) -> List[AlertInstance]:
        """Active instances currently in the firing state."""
        return [
            inst for inst in self.active() if inst.state == STATE_FIRING
        ]

    def _instance_labels(self, series_labels: Labels) -> Labels:
        mapping = dict(series_labels.items())
        mapping.pop(METRIC_NAME_LABEL, None)
        mapping.update(self.labels)
        mapping["alertname"] = self.name
        return Labels(mapping)

    def _write_state(self, tsdb, instance: AlertInstance,
                     now_ns: int) -> None:
        """Write this eval's ALERTS / ALERTS_FOR_STATE samples."""
        base = dict(instance.labels.items())
        alerts = dict(base)
        alerts[METRIC_NAME_LABEL] = ALERTS_METRIC
        alerts["alertstate"] = instance.state
        for_state = dict(base)
        for_state[METRIC_NAME_LABEL] = ALERTS_FOR_STATE_METRIC
        try:
            tsdb.append(Labels(alerts), now_ns, 1.0)
            tsdb.append(
                Labels(for_state), now_ns, float(instance.active_since_ns)
            )
        except TsdbError:
            pass  # duplicate timestamp (manual + scheduled eval)

    def _write_tombstone(self, tsdb, instance: AlertInstance,
                         now_ns: int) -> None:
        mapping = dict(instance.labels.items())
        mapping[METRIC_NAME_LABEL] = ALERTS_FOR_STATE_METRIC
        try:
            tsdb.append(Labels(mapping), now_ns, _RESOLVED_TOMBSTONE)
        except TsdbError:
            pass

    def evaluate(
        self, engine, tsdb, now_ns: int
    ) -> List[Tuple[str, AlertInstance]]:
        """Run one evaluation cycle; returns state-transition events.

        Events are ``(kind, instance)`` pairs in deterministic order:
        result-vector order for pending/firing transitions (the vector is
        label-sorted by the engine), then label-sorted order for
        departures.  A brand-new instance always yields a ``pending``
        event first — even a ``for_=0`` rule emits pending *then* firing
        in the same cycle, so the pending->firing ordering is a journal
        invariant, not a timing accident.
        """
        # Parse through the engine's LRU plan cache (a lookup after the
        # first cycle) so rule traces keep their query.parse spans.
        plan = engine.plan(self.expr)
        vector = engine.instant_plan(plan, now_ns)
        events: List[Tuple[str, AlertInstance]] = []
        seen = set()
        for series_labels, value in vector:
            out = self._instance_labels(series_labels)
            key = out.items()
            if key in seen:
                continue  # collapsed output label sets: first wins
            seen.add(key)
            instance = self._active.get(key)
            if instance is None:
                instance = AlertInstance(
                    labels=out, active_since_ns=now_ns, value=value
                )
                self._active[key] = instance
                events.append((EVENT_PENDING, instance))
            instance.value = value
            if (
                instance.state == STATE_PENDING
                and now_ns - instance.active_since_ns >= self.for_ns
            ):
                instance.state = STATE_FIRING
                instance.fired_at_ns = now_ns
                events.append((EVENT_FIRING, instance))
            self._write_state(tsdb, instance, now_ns)
        for key in sorted(self._active):
            if key in seen:
                continue
            instance = self._active.pop(key)
            kind = (
                EVENT_RESOLVED if instance.state == STATE_FIRING
                else EVENT_EXPIRED
            )
            events.append((kind, instance))
            self._write_tombstone(tsdb, instance, now_ns)
        return events

    def restore(self, tsdb, now_ns: int,
                tolerance_ns: int) -> List[AlertInstance]:
        """Rebuild the active set from recovered state series.

        Reads ``ALERTS_FOR_STATE`` for this alert name over the last
        ``tolerance_ns`` of recovered data.  A series whose newest value
        is the resolved tombstone was inactive at the crash and is
        skipped; otherwise the instance is reconstructed with its
        original ``active_since`` (downtime counts toward ``for_``, as
        in Prometheus outage tolerance), firing iff the ``ALERTS``
        firing series has a sample at the same evaluation instant.
        """
        restored: List[AlertInstance] = []
        start = max(0, now_ns - tolerance_ns)
        matchers = [
            Matcher.eq(METRIC_NAME_LABEL, ALERTS_FOR_STATE_METRIC),
            Matcher.eq("alertname", self.name),
        ]
        for series in tsdb.select(matchers, start, now_ns):
            if not series.samples:
                continue
            last = series.samples[-1]
            if last.value < 0:
                continue  # tombstone: resolved before the crash
            mapping = dict(series.labels.items())
            mapping.pop(METRIC_NAME_LABEL, None)
            out = Labels(mapping)
            firing_labels = dict(series.labels.items())
            firing_labels[METRIC_NAME_LABEL] = ALERTS_METRIC
            firing_labels["alertstate"] = STATE_FIRING
            was_firing = any(
                s.samples
                for s in tsdb.select(
                    [Matcher.eq(k, v) for k, v in
                     sorted(firing_labels.items())],
                    last.time_ns, last.time_ns,
                )
            )
            instance = AlertInstance(
                labels=out,
                active_since_ns=int(last.value),
                state=STATE_FIRING if was_firing else STATE_PENDING,
                restored=True,
            )
            if was_firing:
                instance.fired_at_ns = last.time_ns
            self._active[out.items()] = instance
            restored.append(instance)
        return restored


def burn_rate_rules(
    metric: str,
    fast_threshold: float,
    slow_threshold: Optional[float] = None,
    *,
    name_prefix: str = "SloBurnRate",
    fast_window: str = "1m",
    slow_window: str = "5m",
    fast_for_s: float = 30.0,
    slow_for_s: float = 120.0,
    labels: Optional[Mapping[str, str]] = None,
) -> List[AlertingRule]:
    """A multi-window SLO burn-rate pair over one counter metric.

    The fast window catches sharp error budget burn quickly (page), the
    slow window catches sustained burn at a lower threshold (ticket) —
    the standard two-window SLO alerting shape.
    """
    if slow_threshold is None:
        slow_threshold = fast_threshold / 4.0
    base = dict(labels or {})
    fast = AlertingRule(
        name=f"{name_prefix}Fast",
        expr=f"rate({metric}[{fast_window}]) > {fast_threshold}",
        for_s=fast_for_s,
        labels={**base, "severity": "page", "window": fast_window},
    )
    slow = AlertingRule(
        name=f"{name_prefix}Slow",
        expr=f"rate({metric}[{slow_window}]) > {slow_threshold}",
        for_s=slow_for_s,
        labels={**base, "severity": "ticket", "window": slow_window},
    )
    return [fast, slow]
