"""Federation: remote-write between monitor tiers.

The paper's §5.4 deployment is one monitor scraping one exporter per
node.  A fleet needs a *tier*: leaf monitors scrape their local targets
and ship everything upstream, where a global monitor holds the
fleet-wide view (the Prometheus remote-write / Thanos receive shape).
This module is that uplink, hardened the same way the scrape path is:

* :class:`RemoteWriteClient` — runs inside a leaf monitor.  Each flush
  tick it *collects* every sample the leaf TSDB accepted since its
  watermark, packs them into compressed shard-partitioned frames (one
  CRC-guarded block per series, fingerprinted with the same CRC32 the
  sharded engine routes on), and *pumps* the frame queue to the receiver
  with jittered-exponential retry/backoff on the virtual clock.  The
  queue is bounded: while the uplink is down the leaf keeps serving
  local queries and spills frames to the queue; past ``queue_max_frames``
  the oldest frames are dropped and counted (graceful degradation, never
  memory growth).  With ``federation_mode: aggregate`` the collect ships
  only recording-rule outputs plus a raw allowlist — the leaf-side
  pushdown that keeps region uplinks cheap.
* :class:`RemoteWriteReceiver` — runs inside the global (or a region)
  monitor.  Frames carry a per-incarnation *epoch* and per-sender
  monotonic sequence numbers: within one epoch, a frame whose sequence
  is not beyond the sender's last applied one is a *replay* (a retry of
  a delivery whose ack was lost) and is acknowledged without being
  applied — exactly-once at frame granularity.  A frame with a *newer*
  epoch is a recovered incarnation of the sender: its sequence numbering
  restarts, so frames it sends are never mistaken for replays of the
  dead incarnation's deliveries.  Within an applied frame, the TSDB's
  per-series monotonic-append check rejects any sample whose (series
  fingerprint, timestamp) already landed — exactly-once at sample
  granularity, which is also what deduplicates an HA *pair* of leaves
  shipping the same scrape (see :mod:`repro.teemon.ha`) and absorbs the
  overlap a recovered incarnation re-ships under its fresh epoch.  On a
  sharded engine the per-series blocks are routed straight to their
  shards (:meth:`~repro.pmag.storage.ShardedTsdb.append_fingerprinted`),
  dispatched through the shard executor when one is configured.
* *Relays* — a monitor that is both receiver and client forwards
  everything it ingests upstream under its **own** sender identity,
  epoch and sequence numbering (re-stamping is automatic: the relay's
  client collects from the relay's TSDB by time window, so upstream
  tiers see one well-ordered sender per relay, never the leaves'
  numbering).  Frames that arrive carrying samples *older* than the
  relay's collected watermark (a healed leaf partition draining its
  spill) regress the collect window via :meth:`RemoteWriteClient.
  note_late_arrival` so the next flush re-ships them; the upstream
  receiver's dedup absorbs any overlap the regression re-sends.  A
  receiver built with its own ``identity`` rejects frames claiming to
  come from itself — the loop guard for mis-wired topologies.
* Durability — the client's watermark and last-acked sequence persist as
  WAL cursor frames (the same channel the rule evaluator uses), so a
  crashed-and-recovered leaf resumes shipping from its last acked
  position: anything re-sent is deduplicated by the receiver, anything
  in the WAL loss window is accounted by ``samples_lost``, and nothing
  is double-counted.  Each frame's durable watermark is the highest
  sample timestamp *that frame* actually carries (collection sorts by
  timestamp before chunking), so a crash between the chunks of one
  collect window can never advance the cursor past samples whose
  delivery was still pending.

Self-telemetry lands in the local TSDB as ``teemon_remote_write_*``
series (queue depth, frames in flight, retries, dropped frames, dedup
hits) and, on the receiving side, per-sender
``teemon_federation_lag_seconds`` — so the federation tier is observable
with the same PromQL as everything else, and the ``pmv`` federation
timeline renders the lag per sender.
"""

from __future__ import annotations

import base64
import struct
import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import TsdbError, WalError
from repro.net.http import HttpNetwork
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.rules import is_recorded_output
from repro.pmag.storage import series_fingerprint
from repro.pmag.tsdb import StorageEngine
from repro.pmag.wal import MAX_RECORD_BYTES, _pack_text
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng

#: Port/path convention for the receiving endpoint (Prometheus uses
#: ``/api/v1/write`` on its own port; 9009 is the Cortex/Mimir habit).
REMOTE_WRITE_PORT = 9009
REMOTE_WRITE_PATH = "/api/v1/write"

#: Wire-format version tag, first token of every frame.  Version 2
#: added the sender-incarnation epoch to the header; version 3 replaced
#: the flat record stream with shard-partitioned per-series blocks
#: (fingerprint + one label block + packed samples, CRC32 per block).
FRAME_MAGIC = "teemon-rw/3"

#: Identity labels of the client's self-series in the *local* TSDB.
#: ``record_self_series`` adds a ``source`` label so the series of
#: different senders never collide when they meet at an upper tier.
CLIENT_IDENTITY = {"job": "pmag", "instance": "remote_write"}
#: Identity labels of the receiver's self-series in the ingesting TSDB.
#: ``record_self_series`` adds a ``host`` label so a relay's receiver
#: series stay distinct from the global receiver's after forwarding.
RECEIVER_IDENTITY = {"job": "pmag", "instance": "remote_write_receiver"}


#: WAL cursor keys persisting the client's durable uplink position.
#: ``:`` keeps them out of the rule evaluator's ``group/record`` space
#: (unknown keys are ignored there anyway).
def watermark_cursor_key(source: str) -> str:
    """Cursor key holding the highest acked sample timestamp."""
    return f"remote-write:wm:{source}"


def sequence_cursor_key(source: str) -> str:
    """Cursor key holding the last acked frame sequence number."""
    return f"remote-write:seq:{source}"


def build_ship_filter(
    mode: str, allowlist: Sequence[str] = (),
) -> Optional[Callable[[Labels], bool]]:
    """The collect-side series filter a ``federation_mode`` asks for.

    ``"raw"`` returns None (ship everything — the flat-tier default).
    ``"aggregate"`` ships only recording-rule outputs (colon-namespaced
    metric names, the PR 7 materialization) plus metrics matching the
    ``allowlist``: exact names, or prefixes written with a trailing
    ``*`` (``"teemon_*"``).
    """
    if mode == "raw":
        return None
    if mode != "aggregate":
        raise TsdbError(f"unknown federation mode: {mode!r}")
    exact = frozenset(name for name in allowlist if not name.endswith("*"))
    prefixes = tuple(name[:-1] for name in allowlist if name.endswith("*"))

    def ship(labels: Labels) -> bool:
        name = labels.get(METRIC_NAME_LABEL) or ""
        if is_recorded_output(name) or name in exact:
            return True
        return bool(prefixes) and name.startswith(prefixes)

    return ship


def encode_frame(
    sender: str, epoch: int, seq: int,
    entries: List[Tuple[Labels, int, float]],
    fingerprints: Optional[Dict[Labels, int]] = None,
) -> str:
    """One batched, compressed, shard-partitioned frame as an HTTP body.

    Header line ``teemon-rw/3 <sender> <epoch> <seq> <count>``, then the
    base64 of the zlib-compressed concatenation of per-series blocks::

        u32 len | u32 crc32(block) | block
        block = u32 fingerprint | u32 label_count
                (u16-len key | u16-len value)*     -- sorted by key
                u32 sample_count | (i64 time_ns | f64 value)*

    Each series' label set is encoded **once** per frame and stamped
    with the same CRC32 fingerprint :func:`series_fingerprint` computes,
    so a sharded receiver routes whole blocks to their shards without
    re-deriving the fingerprint per sample.  Per-block CRC32 keeps the
    on-the-wire integrity story of the on-disk log.  ``epoch``
    identifies the sender *incarnation* (a recovered monitor gets a
    fresh, strictly larger one), ``seq`` orders frames within it.
    ``fingerprints`` is an optional cross-frame fingerprint memo.
    """
    if not sender or any(c in sender for c in " \n"):
        raise WalError(f"sender not wire-safe: {sender!r}")
    groups: Dict[Labels, List[Tuple[int, float]]] = {}
    for labels, time_ns, value in entries:
        bucket = groups.get(labels)
        if bucket is None:
            groups[labels] = bucket = []
        bucket.append((time_ns, value))
    if fingerprints is None:
        fingerprints = {}
    pieces: List[bytes] = []
    for labels, samples in groups.items():
        fingerprint = fingerprints.get(labels)
        if fingerprint is None:
            fingerprint = series_fingerprint(labels)
            fingerprints[labels] = fingerprint
        items = labels.items()
        parts = [struct.pack("<II", fingerprint, len(items))]
        for key, value in items:
            parts.append(_pack_text(key))
            parts.append(_pack_text(value))
        parts.append(struct.pack("<I", len(samples)))
        parts.append(b"".join(
            struct.pack("<qd", time_ns, value) for time_ns, value in samples
        ))
        block = b"".join(parts)
        if len(block) > MAX_RECORD_BYTES:
            raise WalError(f"series block too large: {len(block)} bytes")
        pieces.append(struct.pack("<II", len(block), zlib.crc32(block)))
        pieces.append(block)
    body = base64.b64encode(zlib.compress(b"".join(pieces), 6)).decode("ascii")
    return f"{FRAME_MAGIC} {sender} {epoch} {seq} {len(entries)}\n{body}"


def decode_frame_blocks(
    text: str,
) -> Tuple[str, int, int, List[Tuple[int, Labels, List[Tuple[int, float]]]]]:
    """Inverse of :func:`encode_frame`, keeping the per-series shape.

    Returns ``(sender, epoch, seq, blocks)`` where each block is
    ``(fingerprint, labels, [(time_ns, value), ...])`` — the unit the
    sharded ingest path routes.  Raises :class:`WalError` on any
    framing, CRC, count or compression damage.
    """
    header, sep, body = text.partition("\n")
    pieces = header.split()
    if len(pieces) != 5 or pieces[0] != FRAME_MAGIC or not sep:
        raise WalError(f"malformed remote-write frame header: {header!r}")
    sender = pieces[1]
    try:
        epoch = int(pieces[2])
        seq = int(pieces[3])
        count = int(pieces[4])
    except ValueError:
        raise WalError(f"bad frame epoch/sequence/count: {header!r}") from None
    try:
        payload = zlib.decompress(base64.b64decode(body.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - any transport damage
        raise WalError(f"undecodable frame payload: {exc}") from exc
    blocks: List[Tuple[int, Labels, List[Tuple[int, float]]]] = []
    total = 0
    pos = 0
    size = len(payload)
    while pos < size:
        if size - pos < 8:
            raise WalError("truncated block frame in remote-write payload")
        length, crc = struct.unpack_from("<II", payload, pos)
        if not 0 < length <= MAX_RECORD_BYTES:
            raise WalError(f"implausible block length: {length}")
        block = payload[pos + 8:pos + 8 + length]
        if len(block) != length:
            raise WalError("truncated block in remote-write payload")
        if zlib.crc32(block) != crc:
            raise WalError("block CRC mismatch in remote-write frame")
        try:
            fingerprint, label_count = struct.unpack_from("<II", block, 0)
            offset = 8
            mapping = {}
            for _ in range(label_count):
                (key_len,) = struct.unpack_from("<H", block, offset)
                offset += 2
                key = block[offset:offset + key_len].decode("utf-8")
                offset += key_len
                (val_len,) = struct.unpack_from("<H", block, offset)
                offset += 2
                mapping[key] = block[offset:offset + val_len].decode("utf-8")
                offset += val_len
            (sample_count,) = struct.unpack_from("<I", block, offset)
            offset += 4
            if offset + 16 * sample_count != length:
                raise WalError("block sample region length mismatch")
            samples = [
                struct.unpack_from("<qd", block, offset + 16 * index)
                for index in range(sample_count)
            ]
        except (struct.error, UnicodeDecodeError) as exc:
            raise WalError(f"malformed series block: {exc}") from exc
        blocks.append((fingerprint, Labels(mapping), samples))
        total += sample_count
        pos += 8 + length
    if total != count:
        raise WalError(
            f"frame count mismatch: header {count}, payload {total}"
        )
    return sender, epoch, seq, blocks


def decode_frame(
    text: str,
) -> Tuple[str, int, int, List[Tuple[Labels, int, float]]]:
    """Inverse of :func:`encode_frame`, flattened to (labels, ts, value).

    Entries come back grouped by series (block order), each series in
    its shipped sample order.
    """
    sender, epoch, seq, blocks = decode_frame_blocks(text)
    entries = [
        (labels, time_ns, value)
        for _fingerprint, labels, samples in blocks
        for time_ns, value in samples
    ]
    return sender, epoch, seq, entries


class RemoteWriteReceiver:
    """Ingests remote-write frames into the local monitor's TSDB.

    Dedup happens at two granularities:

    * **frame replays** — a frame whose (epoch, sequence) is ≤ the
      sender's last applied one was already ingested (the client retried
      because the ack was lost in transit); it is acknowledged again and
      its samples are counted as :attr:`replay_dedup_hits` without
      touching storage.  A frame with a *larger* epoch is a recovered
      incarnation of the sender whose sequence numbering restarts: it is
      always treated as forward progress, never as a replay, because the
      dead incarnation may have delivered frames whose acks were lost —
      sequence numbers alone cannot distinguish "you already sent me
      this" from "a previous you sent me something else under this
      number";
    * **sample duplicates** — within an applied frame, the storage
      engine's per-series monotonic-append check rejects every sample
      whose (series fingerprint, timestamp) is already present, counted
      as :attr:`samples_deduped`.  This is what collapses an HA pair of
      leaves shipping the same scrape into exactly one stored copy: the
      replica whose frame arrives first wins, and
      :class:`~repro.teemon.ha.HAMonitorPair` staggers replica flush
      ticks by priority so "first" is deterministically the
      lower-priority-number replica.

    Shard routing: on a sharded engine the frame's per-series blocks are
    grouped by ``fingerprint % shards`` and dispatched as per-shard
    batches (through the shard executor when one is configured) via
    :meth:`~repro.pmag.storage.ShardedTsdb.append_fingerprinted`; a
    monolith engine takes one flat ``append_batch``.  Accept/reject
    outcomes are identical either way, so the dedup ledger reconciles
    exactly regardless of the layout.

    Relays: :meth:`attach_relay` couples this receiver to the
    co-resident :class:`RemoteWriteClient` of a relay deployment.  Every
    applied frame notifies the client of the oldest timestamp it landed,
    so samples arriving *behind* the relay's collected watermark (a
    healed downstream partition draining) are re-collected and shipped
    upstream instead of falling into the watermark's shadow.  A receiver
    given its own ``identity`` rejects frames claiming that identity —
    a relay loop would otherwise replay its own output forever.

    (Epoch, sequence) state is per *sender* and lives in monitor memory:
    after a receiving-monitor crash the map is empty, so the receiver
    accepts any epoch/sequence and relies on sample-granularity dedup
    for the overlap a resuming client re-sends.
    """

    def __init__(self, tsdb: StorageEngine,
                 identity: Optional[str] = None) -> None:
        self._tsdb = tsdb
        self._identity = identity
        #: sender -> (epoch, seq) of the last applied frame.
        self._last_applied: Dict[str, Tuple[int, int]] = {}
        #: sender -> newest sample timestamp applied (feeds the
        #: ``teemon_federation_lag_seconds`` gauge).
        self._newest_applied: Dict[str, int] = {}
        self._relay_clients: List["RemoteWriteClient"] = []
        self._endpoint = None
        self._host: Optional[str] = None
        self.frames_received = 0
        self.frames_applied = 0
        self.frames_replayed = 0
        self.frames_rejected = 0
        self.samples_applied = 0
        self.samples_deduped = 0
        self.replay_dedup_hits = 0

    # ------------------------------------------------------------------
    def expose(self, network: HttpNetwork, host: str,
               port: int = REMOTE_WRITE_PORT,
               path: str = REMOTE_WRITE_PATH):
        """Register the write endpoint on the simulated network."""
        endpoint = network.register(host, port, path, self._status_body)
        endpoint.post_handler = self.handle
        self._endpoint = endpoint
        self._host = host
        return endpoint

    def withdraw(self, network: HttpNetwork, host: str,
                 port: int = REMOTE_WRITE_PORT,
                 path: str = REMOTE_WRITE_PATH) -> None:
        """Remove the write endpoint (the receiving process died)."""
        network.unregister(host, port, path)
        self._endpoint = None

    @property
    def url(self) -> str:
        """Endpoint URL once exposed."""
        if self._endpoint is None:
            raise TsdbError("remote-write receiver not exposed yet")
        return self._endpoint.url

    def attach_relay(self, client: "RemoteWriteClient") -> None:
        """Couple a co-resident uplink client (this monitor is a relay).

        Applied frames notify the client of late arrivals so nothing
        lands in the shadow of its collected watermark.
        """
        self._relay_clients.append(client)

    def _status_body(self) -> str:
        return (
            f"remote_write_frames_received_total {self.frames_received}\n"
            f"remote_write_samples_applied_total {self.samples_applied}\n"
        )

    # ------------------------------------------------------------------
    def handle(self, body: str) -> str:
        """Apply one frame; returns the ack line the client parses.

        A malformed frame — or one claiming this receiver's own sender
        identity, the federation-loop guard — raises (the transport
        turns that into a 500; a loop frame failing forever is the
        correct outcome, the topology is mis-wired).
        """
        self.frames_received += 1
        try:
            sender, epoch, seq, blocks = decode_frame_blocks(body)
        except WalError:
            self.frames_rejected += 1
            raise
        if self._identity is not None and sender == self._identity:
            self.frames_rejected += 1
            raise WalError(
                f"federation loop: frame sender {sender!r} is this "
                f"receiver's own identity"
            )
        total = sum(len(samples) for _fp, _labels, samples in blocks)
        last_epoch, last_seq = self._last_applied.get(sender, (-1, 0))
        if epoch < last_epoch or (epoch == last_epoch and seq <= last_seq):
            self.frames_replayed += 1
            self.replay_dedup_hits += total
            return f"ack {seq} replayed={total}"
        rejected = self._ingest(blocks) if total else 0
        applied = total - rejected
        self.samples_applied += applied
        self.samples_deduped += rejected
        self.frames_applied += 1
        self._last_applied[sender] = (epoch, seq)
        if applied:
            oldest = newest = None
            for _fp, _labels, samples in blocks:
                for time_ns, _value in samples:
                    if oldest is None or time_ns < oldest:
                        oldest = time_ns
                    if newest is None or time_ns > newest:
                        newest = time_ns
            if newest > self._newest_applied.get(sender, 0):
                self._newest_applied[sender] = newest
            for client in self._relay_clients:
                client.note_late_arrival(oldest)
        return f"ack {seq} applied={applied} deduped={rejected}"

    def _ingest(
        self, blocks: List[Tuple[int, Labels, List[Tuple[int, float]]]]
    ) -> int:
        """Land one frame's blocks in storage; returns rejected samples.

        Sharded engines take the blocks whole (fingerprint-routed,
        executor-dispatched); a monolith takes one flat batch.
        """
        sink = getattr(self._tsdb, "append_fingerprinted", None)
        if sink is not None:
            return sink(blocks)
        entries = [
            (labels, time_ns, value)
            for _fp, labels, samples in blocks
            for time_ns, value in samples
        ]
        return len(self._tsdb.append_batch(entries))

    # ------------------------------------------------------------------
    def last_sequence(self, sender: str) -> int:
        """Last applied frame sequence for one sender (0 = none)."""
        return self._last_applied.get(sender, (-1, 0))[1]

    def last_epoch(self, sender: str) -> int:
        """Epoch of the sender's last applied frame (-1 = none)."""
        return self._last_applied.get(sender, (-1, 0))[0]

    def lag_seconds(self, now_ns: int) -> Dict[str, float]:
        """Per-sender federation lag: virtual now minus the newest
        applied sample timestamp (0 before a sender's first apply)."""
        return {
            sender: max(0.0, (now_ns - newest) / NANOS_PER_SEC)
            for sender, newest in sorted(self._newest_applied.items())
        }

    def stats(self) -> Dict[str, int]:
        """Receiver counters as a plain mapping."""
        return {
            "frames_received": self.frames_received,
            "frames_applied": self.frames_applied,
            "frames_replayed": self.frames_replayed,
            "frames_rejected": self.frames_rejected,
            "samples_applied": self.samples_applied,
            "samples_deduped": self.samples_deduped,
            "replay_dedup_hits": self.replay_dedup_hits,
        }

    def record_self_series(self, now_ns: int) -> None:
        """Append the receiver's counters into the receiving TSDB.

        The ``host`` label keeps a relay's receiver series distinct from
        the next tier's own once they are forwarded upstream; the
        per-sender lag gauge is what the ``pmv`` federation timeline
        renders.
        """
        identity = dict(RECEIVER_IDENTITY)
        if self._host is not None:
            identity["host"] = self._host
        for metric, value in (
            ("teemon_remote_write_frames_received_total", self.frames_received),
            ("teemon_remote_write_frames_replayed_total", self.frames_replayed),
            ("teemon_remote_write_samples_applied_total", self.samples_applied),
            ("teemon_remote_write_samples_deduped_total", self.samples_deduped),
            ("teemon_remote_write_replay_dedup_hits_total",
             self.replay_dedup_hits),
        ):
            try:
                self._tsdb.append_sample(
                    metric, now_ns, float(value), **identity
                )
            except TsdbError:
                pass  # duplicate instant (manual tick + scheduled tick)
        for sender, lag_s in self.lag_seconds(now_ns).items():
            try:
                self._tsdb.append_sample(
                    "teemon_federation_lag_seconds", now_ns, lag_s,
                    sender=sender, **identity,
                )
            except TsdbError:
                pass  # duplicate instant


class _Frame:
    """One queued frame: samples collected but not yet acknowledged.

    ``end_ns`` is the watermark this frame's ack justifies: every
    collected sample with a timestamp ≤ ``end_ns`` sits in this frame or
    an earlier one (delivery is strictly in order), so persisting it on
    ack can never skip samples whose delivery is still pending.  A
    late-arrival regression clamps it downward (see
    :meth:`RemoteWriteClient.note_late_arrival`).
    """

    __slots__ = ("seq", "entries", "end_ns", "attempts")

    def __init__(self, seq: int, entries: List[Tuple[Labels, int, float]],
                 end_ns: int) -> None:
        self.seq = seq
        self.entries = entries
        self.end_ns = end_ns
        self.attempts = 0


class RemoteWriteClient:
    """Ships the local TSDB's samples upstream in sequence-numbered frames.

    ``flush()`` (the deployment runs it on a virtual-clock cadence,
    staggered by ``priority`` so HA replicas never deliver at the same
    instant in ambiguous order, and by ``tier`` so a relay collects only
    after the tier below has delivered at a shared instant) does two
    things: *collect* — snapshot every sample in ``(collected watermark,
    now]`` that passes the ship filter into frames of at most
    ``max_frame_samples`` — and *pump* — deliver queued frames in
    sequence order, one in flight at a time, with jittered-exponential
    retry on the virtual clock.  Delivery failures leave the frame at the
    head of the queue; after ``max_retries`` failed attempts the pump
    goes idle until the next flush tick, so a dead uplink costs one
    bounded retry burst per cadence, not an unbounded timer storm.

    Durability: when a WAL is attached, each acked frame persists the new
    watermark and sequence as cursor frames (keyed by ``cursor_name``,
    which defaults to ``source`` — mirror clients shipping the same TSDB
    to a second receiver use a distinct name so the cursors never
    collide).  A crashed leaf seeds both from recovery (:meth:`seed`)
    and resumes from the acked position — the receiver's dedup absorbs
    any overlap.
    """

    def __init__(
        self,
        clock: VirtualClock,
        network: HttpNetwork,
        tsdb: StorageEngine,
        url: str,
        source: str,
        wal=None,
        max_frame_samples: int = 500,
        queue_max_frames: int = 64,
        timeout_budget_s: float = 1.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_jitter: float = 0.5,
        rng: Optional[DeterministicRng] = None,
        priority: int = 0,
        stagger_ns: int = 1_000_000,
        tier: int = 0,
        ship_filter: Optional[Callable[[Labels], bool]] = None,
        cursor_name: Optional[str] = None,
    ) -> None:
        if max_frame_samples < 1:
            raise TsdbError(f"max_frame_samples must be >= 1: {max_frame_samples}")
        if queue_max_frames < 1:
            raise TsdbError(f"queue_max_frames must be >= 1: {queue_max_frames}")
        if timeout_budget_s <= 0:
            raise TsdbError(f"timeout budget must be positive: {timeout_budget_s}")
        if max_retries < 0:
            raise TsdbError(f"negative retry count: {max_retries}")
        if backoff_base_s <= 0:
            raise TsdbError(f"backoff base must be positive: {backoff_base_s}")
        if not 0.0 <= backoff_jitter < 1.0:
            raise TsdbError(f"backoff jitter must be in [0, 1): {backoff_jitter}")
        if priority < 0:
            raise TsdbError(f"priority cannot be negative: {priority}")
        if tier < 0:
            raise TsdbError(f"tier cannot be negative: {tier}")
        self._clock = clock
        self._network = network
        self._tsdb = tsdb
        self.url = url
        self.source = source
        self._wal = wal
        self.max_frame_samples = max_frame_samples
        self.queue_max_frames = queue_max_frames
        self.timeout_budget_s = timeout_budget_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self.priority = priority
        self.tier = tier
        #: Flush-tick offset: replica priority staggers HA pairs apart
        #: (1 ms steps), tier staggers a relay's collect *after* the
        #: deliveries of the tier below at a shared virtual instant
        #: (2 ms per tier — strictly beyond any replica stagger), so in
        #: steady state a relay never collects a window that downstream
        #: frames are still about to land in.
        self.stagger_offset_ns = (priority + 2 * tier) * stagger_ns
        self.ship_filter = ship_filter
        self.cursor_name = cursor_name if cursor_name is not None else source
        self._rng = (rng or DeterministicRng(0)).fork("remote-write")
        #: Incarnation stamp carried by every frame.  Construction time
        #: on the virtual clock is strictly increasing across the
        #: incarnations of one sender (a recovered monitor rebuilds its
        #: client after the crash it recovers from), so the receiver can
        #: tell "the same incarnation retried seq N" from "a new
        #: incarnation reused seq N for different content".
        self.epoch = clock.now_ns
        self._queue: Deque[_Frame] = deque()
        self._retry_timer = None
        self._stopped = False
        #: Highest sample timestamp *collected* into a frame (in-memory).
        self._collected_ns = 0
        #: Highest sample timestamp *acknowledged* upstream (durable).
        self.watermark_ns = 0
        #: Sequence of the last frame built / last frame acked.
        self._seq = 0
        self.acked_seq = 0
        #: Cross-frame fingerprint memo for the v3 encoder.
        self._fingerprints: Dict[Labels, int] = {}
        self.frames_sent = 0
        self.frames_acked = 0
        self.frames_dropped = 0
        self.retries_total = 0
        self.send_failures = 0
        self.samples_shipped = 0
        self.samples_dropped = 0
        self.bytes_shipped = 0
        self.late_arrivals = 0

    # ------------------------------------------------------------------
    # Recovery seeding
    # ------------------------------------------------------------------
    def seed(self, watermark_ns: Optional[int],
             acked_seq: Optional[int]) -> None:
        """Restore the durable uplink position after a crash.

        The queue restarts empty: everything past the acked watermark is
        still in the recovered TSDB and will be re-collected on the next
        flush; the receiver deduplicates whatever the dead incarnation
        already delivered without managing to persist the cursor.

        Sequence numbering resumes from the durable cursor, which may
        *reuse* numbers the dead incarnation sent past its last durable
        ack — safe because this incarnation's :attr:`epoch` is fresh, so
        the receiver treats every frame it sends as forward progress
        (never as a replay of the dead incarnation's deliveries) and
        sample-level dedup absorbs any actual overlap.
        """
        self.epoch = self._clock.now_ns
        if watermark_ns is not None:
            self._collected_ns = self.watermark_ns = watermark_ns
        if acked_seq is not None:
            self._seq = self.acked_seq = acked_seq

    def stop(self) -> None:
        """Cancel the retry timer (the leaf monitor is stopping/dying)."""
        self._stopped = True
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    # ------------------------------------------------------------------
    # Relay feed
    # ------------------------------------------------------------------
    def note_late_arrival(self, min_time_ns: int) -> None:
        """Samples at/after ``min_time_ns`` just landed *behind* the
        collected watermark (a relay's receiver applied a healed
        downstream spill).  Regress the collect window so the next flush
        re-collects from just before them, clamp every queued frame's
        durable watermark to the regression point (an ack of a
        pre-regression frame must not persist a cursor past samples that
        are no longer covered), and persist the regressed watermark so a
        crash before the re-ship still resumes behind the late window.
        The upstream receiver's sample dedup absorbs whatever the
        re-collect re-ships.
        """
        point = min_time_ns - 1
        if point >= self._collected_ns:
            return
        self.late_arrivals += 1
        self._collected_ns = point
        for frame in self._queue:
            if frame.end_ns > point:
                frame.end_ns = point
        if self.watermark_ns > point:
            self.watermark_ns = point
            if self._wal is not None:
                self._wal.append_cursor(
                    watermark_cursor_key(self.cursor_name), point
                )

    # ------------------------------------------------------------------
    # Collect + pump
    # ------------------------------------------------------------------
    def flush(self, now_ns: Optional[int] = None) -> int:
        """Collect new samples into frames and pump the queue.

        Returns the number of samples newly collected this call.
        """
        self._stopped = False
        now = self._clock.now_ns if now_ns is None else now_ns
        collected = self._collect(now)
        if self._retry_timer is None:
            self._pump()
        return collected

    def _collect(self, now_ns: int) -> int:
        if now_ns <= self._collected_ns:
            return 0
        entries: List[Tuple[Labels, int, float]] = []
        # Window is (collected, now]: select is inclusive on both ends,
        # so the left edge is nudged one ns past the last collected stamp.
        ship = self.ship_filter
        for series in self._tsdb.select([], self._collected_ns + 1, now_ns):
            if ship is not None and not ship(series.labels):
                continue
            for sample in series.samples:
                entries.append((series.labels, sample.time_ns, sample.value))
        self._collected_ns = now_ns
        if not entries:
            return 0
        # Chunk in timestamp order (stable, so per-series order is kept)
        # and give each frame the watermark its own ack justifies: the
        # newest timestamp fully covered by it and its predecessors.
        # Only the final frame may claim the whole window end — an ack
        # of an earlier chunk must not durably skip samples still queued
        # behind it (they would be silently lost across a crash).
        entries.sort(key=lambda entry: entry[1])
        for start in range(0, len(entries), self.max_frame_samples):
            chunk = entries[start:start + self.max_frame_samples]
            nxt = start + self.max_frame_samples
            if nxt >= len(entries):
                end_ns = now_ns
            elif entries[nxt][1] == chunk[-1][1]:
                # The boundary splits a timestamp: samples at it are
                # still pending in the next chunk, so the watermark this
                # ack justifies stops just short of it.
                end_ns = chunk[-1][1] - 1
            else:
                end_ns = chunk[-1][1]
            self._seq += 1
            self._queue.append(_Frame(self._seq, chunk, end_ns))
        while len(self._queue) > self.queue_max_frames:
            dropped = self._queue.popleft()
            self.frames_dropped += 1
            self.samples_dropped += len(dropped.entries)
        return len(entries)

    def _pump(self) -> None:
        """Deliver queued frames in order until one fails or none remain."""
        while self._queue and not self._stopped:
            frame = self._queue[0]
            if not self._attempt(frame):
                return
            self._acknowledge(frame)

    def _attempt(self, frame: _Frame) -> bool:
        """One delivery try; schedules a retry (or gives up) on failure."""
        frame.attempts += 1
        self.frames_sent += 1
        body = encode_frame(self.source, self.epoch, frame.seq, frame.entries,
                            self._fingerprints)
        response = self._network.post_url(self.url, body)
        latency_s = getattr(response, "latency_s", 0.0)
        ok = (
            response.ok
            and latency_s <= self.timeout_budget_s
            and response.body.startswith(f"ack {frame.seq}")
        )
        if ok:
            self.bytes_shipped += len(body)
            return True
        if frame.attempts <= self.max_retries:
            delay_s = self.backoff_base_s * (2 ** (frame.attempts - 1))
            if self.backoff_jitter:
                delay_s *= 1.0 + self.backoff_jitter * (
                    2.0 * self._rng.random() - 1.0
                )
            self._retry_timer = self._clock.call_later(
                int(delay_s * NANOS_PER_SEC), self._retry
            )
        else:
            # Out of retries this cadence: leave the frame queued (the
            # next flush pumps again) — spill, don't spin.
            self.send_failures += 1
        return False

    def _retry(self) -> None:
        self._retry_timer = None
        if self._stopped:
            return
        self.retries_total += 1
        self._pump()

    def _acknowledge(self, frame: _Frame) -> None:
        self._queue.popleft()
        self.frames_acked += 1
        self.samples_shipped += len(frame.entries)
        self.acked_seq = frame.seq
        # Assignment, not max(): frames ack strictly in order, and a
        # late-arrival regression legitimately *lowers* the watermark a
        # clamped frame justifies — max() would resurrect the higher
        # pre-regression cursor and shadow the late window across a crash.
        self.watermark_ns = frame.end_ns
        if self._wal is not None:
            self._wal.append_cursor(
                watermark_cursor_key(self.cursor_name), self.watermark_ns
            )
            self._wal.append_cursor(
                sequence_cursor_key(self.cursor_name), self.acked_seq
            )

    # ------------------------------------------------------------------
    # Introspection / self-telemetry
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Frames currently spilled to the send queue."""
        return len(self._queue)

    @property
    def queued_samples(self) -> int:
        """Samples inside queued frames."""
        return sum(len(frame.entries) for frame in self._queue)

    @property
    def frames_inflight(self) -> int:
        """Queued frames with at least one delivery attempt outstanding."""
        return sum(1 for frame in self._queue if frame.attempts)

    def stats(self) -> Dict[str, int]:
        """Client counters as a plain mapping."""
        return {
            "queue_frames": self.queue_depth,
            "queue_samples": self.queued_samples,
            "frames_inflight": self.frames_inflight,
            "frames_sent": self.frames_sent,
            "frames_acked": self.frames_acked,
            "frames_dropped": self.frames_dropped,
            "retries_total": self.retries_total,
            "send_failures": self.send_failures,
            "samples_shipped": self.samples_shipped,
            "samples_dropped": self.samples_dropped,
            "bytes_shipped": self.bytes_shipped,
            "late_arrivals": self.late_arrivals,
            "watermark_ns": self.watermark_ns,
            "acked_seq": self.acked_seq,
        }

    def record_self_series(self, now_ns: int) -> None:
        """Append the client's counters into the *local* TSDB.

        They ride the next collect upstream like every other series, so
        the global tier can alert on a leaf's queue growth.  The
        ``source`` label keeps each sender's series distinct once many
        of them meet in one upstream TSDB.
        """
        identity = dict(CLIENT_IDENTITY)
        identity["source"] = self.source
        for metric, value in (
            ("teemon_remote_write_queue_depth", self.queue_depth),
            ("teemon_remote_write_queue_frames", self.queue_depth),
            ("teemon_remote_write_queue_samples", self.queued_samples),
            ("teemon_remote_write_frames_inflight", self.frames_inflight),
            ("teemon_remote_write_frames_sent_total", self.frames_sent),
            ("teemon_remote_write_frames_acked_total", self.frames_acked),
            ("teemon_remote_write_frames_dropped_total", self.frames_dropped),
            ("teemon_remote_write_retries_total", self.retries_total),
            ("teemon_remote_write_samples_shipped_total", self.samples_shipped),
            ("teemon_remote_write_samples_dropped_total", self.samples_dropped),
            ("teemon_remote_write_bytes_shipped_total", self.bytes_shipped),
        ):
            try:
                self._tsdb.append_sample(
                    metric, now_ns, float(value), **identity
                )
            except TsdbError:
                pass  # duplicate instant (manual tick + scheduled tick)
