"""A statsd-style push gateway — the road not taken.

§4 weighs push against pull and chooses pull.  The push design is
implemented anyway, for two reasons: the ablation bench quantifies the
paper's argument against a real implementation rather than a strawman,
and mixed deployments (short-lived batch jobs that cannot be scraped) are
a legitimate use the paper's "users can easily add their application
metrics" sentence covers.

:class:`PushGateway` accepts events over the simulated HTTP network
(``POST``-like pushes via :meth:`PushGateway.push`), applies per-source
rate limiting (the DoS concern §4 raises), and appends to the TSDB
immediately — every push is aggregator work, which is exactly the
burst-amplification the ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TsdbError
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock


@dataclass
class SourceQuota:
    """Token bucket for one pushing source."""

    rate_per_s: float
    burst: float
    tokens: float = 0.0
    last_refill_ns: int = 0

    def admit(self, now_ns: int, cost: float = 1.0) -> bool:
        """Whether one push is within the quota."""
        elapsed_s = max(0, now_ns - self.last_refill_ns) / NANOS_PER_SEC
        self.tokens = min(self.burst, self.tokens + elapsed_s * self.rate_per_s)
        self.last_refill_ns = now_ns
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class PushGateway:
    """Event-push ingestion endpoint."""

    def __init__(
        self,
        clock: VirtualClock,
        tsdb: Tsdb,
        default_rate_per_s: float = 100.0,
        default_burst: float = 200.0,
    ) -> None:
        if default_rate_per_s <= 0 or default_burst <= 0:
            raise TsdbError("push quota must be positive")
        self._clock = clock
        self._tsdb = tsdb
        self._default_rate = default_rate_per_s
        self._default_burst = default_burst
        self._quotas: Dict[str, SourceQuota] = {}
        self.pushes_accepted = 0
        self.pushes_rejected = 0
        #: Distinct timestamps are required per series; pushes landing in
        #: the same nanosecond get a +1 ns nudge (sequence within instant).
        self._last_push_ns: Dict[Labels, int] = {}

    def set_quota(self, source: str, rate_per_s: float, burst: float) -> None:
        """Override the quota for one source."""
        if rate_per_s <= 0 or burst <= 0:
            raise TsdbError("push quota must be positive")
        self._quotas[source] = SourceQuota(
            rate_per_s=rate_per_s, burst=burst, tokens=burst,
            last_refill_ns=self._clock.now_ns,
        )

    def _quota(self, source: str) -> SourceQuota:
        quota = self._quotas.get(source)
        if quota is None:
            quota = SourceQuota(
                rate_per_s=self._default_rate, burst=self._default_burst,
                tokens=self._default_burst, last_refill_ns=self._clock.now_ns,
            )
            self._quotas[source] = quota
        return quota

    def push(self, source: str, metric: str, value: float, **labels: str) -> bool:
        """One pushed sample; returns False when rate-limited.

        Rate-limited pushes are *dropped*, the §4 trade-off: protecting the
        aggregator costs data completeness, which the pull model gets for
        free.
        """
        now = self._clock.now_ns
        if not self._quota(source).admit(now):
            self.pushes_rejected += 1
            return False
        mapping = dict(labels)
        mapping[METRIC_NAME_LABEL] = metric
        mapping["source"] = source
        full = Labels(mapping)
        stamp = max(now, self._last_push_ns.get(full, -1) + 1)
        self._last_push_ns[full] = stamp
        self._tsdb.append(full, stamp, value)
        self.pushes_accepted += 1
        return True

    def rejection_ratio(self) -> float:
        """Fraction of pushes dropped by quotas."""
        total = self.pushes_accepted + self.pushes_rejected
        return self.pushes_rejected / total if total else 0.0
