"""A statsd-style push gateway — the road not taken.

§4 weighs push against pull and chooses pull.  The push design is
implemented anyway, for two reasons: the ablation bench quantifies the
paper's argument against a real implementation rather than a strawman,
and mixed deployments (short-lived batch jobs that cannot be scraped) are
a legitimate use the paper's "users can easily add their application
metrics" sentence covers.

:class:`PushGateway` accepts events over the simulated HTTP network
(``POST``-like pushes via :meth:`PushGateway.push`), applies per-source
rate limiting (the DoS concern §4 raises), and appends to the TSDB
immediately — every push is aggregator work, which is exactly the
burst-amplification the ablation measures.

Retry safety: a client that times out *after* the gateway accepted its
push cannot tell delivery from loss, so a naive retry double-counts.
Wire pushes therefore carry an idempotency key (a trailing ``@key``
token); the gateway remembers recently accepted keys per source and
acknowledges a replayed key without re-appending.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import TsdbError
from repro.net.http import HttpNetwork
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng

#: Per-source idempotency window: how many recently accepted push keys
#: the gateway remembers for retry deduplication.  A retry arriving
#: after the key aged out re-appends — the window bounds memory, and
#: retries land within a few backoff intervals in practice.
DEDUP_WINDOW = 1024


@dataclass
class SourceQuota:
    """Token bucket for one pushing source."""

    rate_per_s: float
    burst: float
    tokens: float = 0.0
    last_refill_ns: int = 0

    def admit(self, now_ns: int, cost: float = 1.0) -> bool:
        """Whether one push is within the quota."""
        elapsed_s = max(0, now_ns - self.last_refill_ns) / NANOS_PER_SEC
        self.tokens = min(self.burst, self.tokens + elapsed_s * self.rate_per_s)
        self.last_refill_ns = now_ns
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class PushGateway:
    """Event-push ingestion endpoint."""

    def __init__(
        self,
        clock: VirtualClock,
        tsdb: Tsdb,
        default_rate_per_s: float = 100.0,
        default_burst: float = 200.0,
    ) -> None:
        if default_rate_per_s <= 0 or default_burst <= 0:
            raise TsdbError("push quota must be positive")
        self._clock = clock
        self._tsdb = tsdb
        self._default_rate = default_rate_per_s
        self._default_burst = default_burst
        self._quotas: Dict[str, SourceQuota] = {}
        self.pushes_accepted = 0
        self.pushes_rejected = 0
        self.pushes_deduped = 0
        #: Distinct timestamps are required per series; pushes landing in
        #: the same nanosecond get a +1 ns nudge (sequence within instant).
        self._last_push_ns: Dict[Labels, int] = {}
        #: source -> (insertion order, membership) of accepted push keys.
        self._seen_keys: Dict[str, Tuple[deque, set]] = {}

    def set_quota(self, source: str, rate_per_s: float, burst: float) -> None:
        """Override the quota for one source."""
        if rate_per_s <= 0 or burst <= 0:
            raise TsdbError("push quota must be positive")
        self._quotas[source] = SourceQuota(
            rate_per_s=rate_per_s, burst=burst, tokens=burst,
            last_refill_ns=self._clock.now_ns,
        )

    def _quota(self, source: str) -> SourceQuota:
        quota = self._quotas.get(source)
        if quota is None:
            quota = SourceQuota(
                rate_per_s=self._default_rate, burst=self._default_burst,
                tokens=self._default_burst, last_refill_ns=self._clock.now_ns,
            )
            self._quotas[source] = quota
        return quota

    def push(self, source: str, metric: str, value: float, **labels: str) -> bool:
        """One pushed sample; returns False when rate-limited.

        Rate-limited pushes are *dropped*, the §4 trade-off: protecting the
        aggregator costs data completeness, which the pull model gets for
        free.
        """
        now = self._clock.now_ns
        if not self._quota(source).admit(now):
            self.pushes_rejected += 1
            return False
        mapping = dict(labels)
        mapping[METRIC_NAME_LABEL] = metric
        mapping["source"] = source
        full = Labels(mapping)
        stamp = max(now, self._last_push_ns.get(full, -1) + 1)
        self._last_push_ns[full] = stamp
        self._tsdb.append(full, stamp, value)
        self.pushes_accepted += 1
        return True

    def rejection_ratio(self) -> float:
        """Fraction of pushes dropped by quotas."""
        total = self.pushes_accepted + self.pushes_rejected
        return self.pushes_rejected / total if total else 0.0

    # ------------------------------------------------------------------
    # HTTP exposure (wire format: one sample per line)
    # ------------------------------------------------------------------
    def expose(self, network: HttpNetwork, host: str = "pushgw",
               port: int = 9091, path: str = "/push") -> str:
        """Serve pushes over the simulated HTTP network.

        Registers a POST route whose body is one sample per line in the
        :func:`encode_push_line` wire format; the reply reports
        ``accepted=N rejected=M``.  Returns the gateway URL.  GETs on the
        route answer with the gateway's counters (a crude health check).
        """
        endpoint = network.register(host, port, path, self._status_body)
        endpoint.post_handler = self._handle_wire
        return endpoint.url

    def _status_body(self) -> str:
        return (f"pushgateway_accepted_total {self.pushes_accepted}\n"
                f"pushgateway_rejected_total {self.pushes_rejected}\n")

    def _handle_wire(self, body: str) -> str:
        accepted = rejected = 0
        for line in body.split("\n"):
            line = line.strip()
            if not line:
                continue
            line, key = split_push_key(line)
            source, metric, value, labels = decode_push_line(line)
            if key is not None and self._key_seen(source, key):
                # Idempotent replay: the original push was accepted, the
                # client just never saw the ack.  Ack again, append nothing.
                self.pushes_deduped += 1
                accepted += 1
                continue
            if self.push(source, metric, value, **labels):
                if key is not None:
                    self._remember_key(source, key)
                accepted += 1
            else:
                rejected += 1
        return f"accepted={accepted} rejected={rejected}"

    def _key_seen(self, source: str, key: str) -> bool:
        entry = self._seen_keys.get(source)
        return entry is not None and key in entry[1]

    def _remember_key(self, source: str, key: str) -> None:
        entry = self._seen_keys.get(source)
        if entry is None:
            entry = (deque(), set())
            self._seen_keys[source] = entry
        order, members = entry
        order.append(key)
        members.add(key)
        while len(order) > DEDUP_WINDOW:
            members.discard(order.popleft())


def encode_push_line(source: str, metric: str, value: float,
                     labels: Dict[str, str],
                     key: Optional[str] = None) -> str:
    """Wire format: ``source metric value [k=v,k=v] [@key]``.

    ``key`` is an optional idempotency token the gateway uses to
    deduplicate retries of an already-accepted push.
    """
    for token in (source, metric, *labels, *labels.values()):
        if not token or any(c in token for c in " ,=\n"):
            raise TsdbError(f"token not wire-safe: {token!r}")
    for name in labels:
        # A leading '@' on the first (sorted) label name would make the
        # labels token masquerade as a trailing idempotency key; ban it
        # on every name so sortedness never decides wire-safety.
        if name.startswith("@"):
            raise TsdbError(f"label name not wire-safe: {name!r}")
    if key is not None and (not key or any(c in key for c in " ,=@\n")):
        raise TsdbError(f"push key not wire-safe: {key!r}")
    line = f"{source} {metric} {value}"
    if labels:
        pairs = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        line += f" {pairs}"
    if key is not None:
        line += f" @{key}"
    return line


def split_push_key(line: str) -> Tuple[str, Optional[str]]:
    """Split a trailing ``@key`` idempotency token off a wire line.

    Unambiguous because keys reject `` ,=@\\n`` at encode time while the
    only other candidate trailing tokens cannot look like one: the value
    token parses as a float, and the labels token either starts with a
    non-``@`` name (encode bans ``@``-leading label names) or contains
    ``=`` — so a trailing token is a key iff it starts with ``@`` and
    carries no ``=``/``,``.
    """
    head, sep, tail = line.rpartition(" ")
    if (sep and tail.startswith("@") and len(tail) > 1
            and "=" not in tail and "," not in tail):
        return head, tail[1:]
    return line, None


def decode_push_line(line: str) -> Tuple[str, str, float, Dict[str, str]]:
    """Inverse of :func:`encode_push_line`."""
    pieces = line.split()
    if len(pieces) not in (3, 4):
        raise TsdbError(f"malformed push line: {line!r}")
    source, metric, value_text = pieces[0], pieces[1], pieces[2]
    try:
        value = float(value_text)
    except ValueError:
        raise TsdbError(f"bad push value: {value_text!r}") from None
    labels: Dict[str, str] = {}
    if len(pieces) == 4:
        for pair in pieces[3].split(","):
            key, sep, val = pair.partition("=")
            if not sep or not key or not val:
                raise TsdbError(f"malformed push labels: {pieces[3]!r}")
            labels[key] = val
    return source, metric, value, labels


class PushClient:
    """Pushes samples to an HTTP-exposed gateway with timeout and retry.

    The push path gets the same hardening as the scrape path: a response
    slower than the timeout budget counts as a timeout, and failed
    deliveries retry on the virtual clock with jittered exponential
    backoff.  A push *rejected* by the gateway's quota is not retried —
    retrying a rate-limited push would amplify exactly the burst the
    quota exists to shed (§4).
    """

    def __init__(
        self,
        clock: VirtualClock,
        network: HttpNetwork,
        url: str,
        source: str,
        timeout_budget_s: float = 1.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_jitter: float = 0.5,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        if timeout_budget_s <= 0:
            raise TsdbError(f"timeout budget must be positive, got {timeout_budget_s}")
        if max_retries < 0:
            raise TsdbError(f"negative retry count: {max_retries}")
        if backoff_base_s <= 0:
            raise TsdbError(f"backoff base must be positive, got {backoff_base_s}")
        if not 0.0 <= backoff_jitter < 1.0:
            raise TsdbError(f"backoff jitter must be in [0, 1), got {backoff_jitter}")
        self._clock = clock
        self._network = network
        self.url = url
        self.source = source
        self.timeout_budget_s = timeout_budget_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self._rng = (rng or DeterministicRng(0)).fork("push-backoff")
        self.pushes_sent = 0
        self.pushes_delivered = 0
        self.pushes_rejected = 0
        self.pushes_failed = 0
        self.push_timeouts_total = 0
        self.push_retries_total = 0
        self._next_key = 0

    def push(self, metric: str, value: float, **labels: str) -> bool:
        """Attempt one push now; returns True if delivered immediately.

        On timeout or transport failure a retry is scheduled on the
        virtual clock; the eventual outcome lands in
        :attr:`pushes_delivered` / :attr:`pushes_failed`.  Every push
        carries a fresh idempotency key, so a retry after a
        timeout-after-accept is acknowledged by the gateway's dedup
        window instead of double-counting.
        """
        self.pushes_sent += 1
        key = f"{self.source}-{self._next_key}"
        self._next_key += 1
        line = encode_push_line(self.source, metric, value, labels, key=key)
        return self._attempt(line, attempt=0)

    def _attempt(self, line: str, attempt: int) -> bool:
        response = self._network.post_url(self.url, line)
        latency_s = getattr(response, "latency_s", 0.0)
        timed_out = latency_s > self.timeout_budget_s
        if timed_out:
            self.push_timeouts_total += 1
        if response.ok and not timed_out:
            if "rejected=0" in response.body:
                self.pushes_delivered += 1
                return True
            # Quota rejection is a terminal, intentional drop.
            self.pushes_rejected += 1
            return False
        if attempt < self.max_retries:
            delay_s = self.backoff_base_s * (2 ** attempt)
            if self.backoff_jitter:
                delay_s *= 1.0 + self.backoff_jitter * (2.0 * self._rng.random() - 1.0)
            self._clock.call_later(
                int(delay_s * NANOS_PER_SEC),
                lambda: self._retry(line, attempt + 1),
            )
            return False
        self.pushes_failed += 1
        return False

    def _retry(self, line: str, attempt: int) -> None:
        self.push_retries_total += 1
        self._attempt(line, attempt)
