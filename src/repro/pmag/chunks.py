"""Chunked sample storage.

The paper: the PMAG "stores all metrics data samples locally and groups
them into chunks for faster retrieval".  A :class:`Chunk` holds up to
``CHUNK_SIZE`` samples; timestamps are kept absolute in memory so window
queries can binary-search, and are delta-encoded only in the serialised
archival format (scrape intervals are regular, so deltas are tiny and
mostly constant).  A :class:`ChunkedSeries` is an append-only list of
chunks with binary-search retrieval over time ranges — both across chunks
(on chunk start times) and inside each chunk (on sample timestamps).
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.errors import TsdbError
from repro.pmag.model import Sample

CHUNK_SIZE = 120  # samples per chunk; 10 minutes at the 5 s default interval


class Chunk:
    """Up to CHUNK_SIZE samples; absolute timestamps, sorted ascending."""

    __slots__ = ("start_ns", "_times", "_values")

    def __init__(self, start_ns: int) -> None:
        self.start_ns = start_ns
        self._times: List[int] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        """Whether the chunk has reached capacity."""
        return len(self._values) >= CHUNK_SIZE

    @property
    def end_ns(self) -> int:
        """Timestamp of the newest sample."""
        return self._times[-1] if self._times else self.start_ns

    def append(self, time_ns: int, value: float) -> None:
        """Append one sample; timestamps must be strictly increasing."""
        if self._times:
            if time_ns <= self._times[-1]:
                raise TsdbError(
                    f"out-of-order append: {time_ns} <= {self._times[-1]}"
                )
            if self.full:
                raise TsdbError("append to a full chunk")
        elif time_ns != self.start_ns:
            raise TsdbError("first sample must land at the chunk start time")
        self._times.append(time_ns)
        self._values.append(value)

    def samples(self) -> Iterator[Sample]:
        """Iterate samples in time order."""
        for time_ns, value in zip(self._times, self._values):
            yield Sample(time_ns, value)

    def window_samples(self, start_ns: int, end_ns: int) -> List[Sample]:
        """Samples with ``start_ns <= t <= end_ns`` via binary search."""
        times = self._times
        low = bisect_left(times, start_ns)
        high = bisect_right(times, end_ns, low)
        return [
            Sample(t, v)
            for t, v in zip(times[low:high], self._values[low:high])
        ]

    def window_bounds(self, start_ns: int, end_ns: int) -> Tuple[int, int]:
        """Index range [low, high) of samples inside the window."""
        low = bisect_left(self._times, start_ns)
        return low, bisect_right(self._times, end_ns, low)

    def last_sample(self) -> Optional[Sample]:
        """The newest sample without decoding anything, if any."""
        if not self._times:
            return None
        return Sample(self._times[-1], self._values[-1])

    # The wire format delta-encodes timestamps, with a leading 0 delta for
    # the first sample (which always lands exactly on start_ns).
    def encode(self) -> bytes:
        """Serialise to bytes (archival format)."""
        count = len(self._values)
        deltas: List[int] = []
        previous = self.start_ns
        for time_ns in self._times:
            deltas.append(time_ns - previous)
            previous = time_ns
        return struct.pack(
            f"<qI{count}q{count}d", self.start_ns, count, *deltas, *self._values
        )

    @staticmethod
    def decode(data: bytes) -> "Chunk":
        """Deserialise from :meth:`encode` output."""
        if len(data) < 12:
            raise TsdbError("chunk data too short")
        start_ns, count = struct.unpack_from("<qI", data, 0)
        expected = 12 + count * 8 + count * 8
        if len(data) != expected:
            raise TsdbError(f"chunk data length {len(data)} != expected {expected}")
        payload = struct.unpack_from(f"<{count}q{count}d", data, 12)
        deltas, values = payload[:count], payload[count:]
        # Straight cumulative sum over the deltas; the leading delta must be
        # zero and the rest positive, or the chunk bytes are corrupt.
        if count:
            if deltas[0] != 0:
                raise TsdbError(f"first delta must be 0, got {deltas[0]}")
            if any(delta <= 0 for delta in deltas[1:]):
                raise TsdbError("non-monotonic timestamps in chunk data")
        chunk = Chunk(start_ns)
        current = start_ns
        for delta, value in zip(deltas, values):
            current += delta
            chunk._times.append(current)
            chunk._values.append(value)
        return chunk

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint."""
        return 24 + len(self._values) * 16


class ChunkedSeries:
    """Append-only chunk list for one series."""

    __slots__ = ("_chunks", "_starts", "_count")

    def __init__(self) -> None:
        self._chunks: List[Chunk] = []
        self._starts: List[int] = []
        self._count = 0

    @property
    def sample_count(self) -> int:
        """Total stored samples."""
        return self._count

    @property
    def chunk_count(self) -> int:
        """Number of chunks."""
        return len(self._chunks)

    def last_time_ns(self) -> Optional[int]:
        """Newest timestamp, if any."""
        return self._chunks[-1].end_ns if self._chunks else None

    def last_sample(self) -> Optional[Sample]:
        """The newest sample, if any — O(1), no window scan."""
        return self._chunks[-1].last_sample() if self._chunks else None

    def append(self, time_ns: int, value: float) -> None:
        """Append a sample, opening a new chunk when the head is full."""
        last = self.last_time_ns()
        if last is not None and time_ns <= last:
            raise TsdbError(f"out-of-order append: {time_ns} <= {last}")
        if not self._chunks or self._chunks[-1].full:
            chunk = Chunk(time_ns)
            self._chunks.append(chunk)
            self._starts.append(time_ns)
        self._chunks[-1].append(time_ns, value)
        self._count += 1

    def adopt_chunk(self, chunk: Chunk) -> None:
        """Append a fully-built chunk (the archive restore fast path).

        Preserves the chunk boundaries the snapshot recorded instead of
        re-chunking sample-by-sample — O(chunks), not O(samples).  The
        chunk must be non-empty and strictly after the current tail.
        """
        if len(chunk) == 0:
            raise TsdbError("cannot adopt an empty chunk")
        last = self.last_time_ns()
        if last is not None and chunk._times[0] <= last:  # noqa: SLF001
            raise TsdbError(
                f"out-of-order chunk: starts {chunk._times[0]} <= {last}"  # noqa: SLF001
            )
        self._chunks.append(chunk)
        self._starts.append(chunk.start_ns)
        self._count += len(chunk)

    def window(self, start_ns: int, end_ns: int) -> List[Sample]:
        """Samples with ``start_ns <= t <= end_ns``."""
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        # First chunk that may overlap: the one before the first start > start_ns;
        # last: chunks whose start is already past end_ns cannot contribute.
        first = max(0, bisect_right(self._starts, start_ns) - 1)
        last = bisect_right(self._starts, end_ns, first)
        result: List[Sample] = []
        for chunk in self._chunks[first:last]:
            if chunk.end_ns < start_ns:
                continue
            result.extend(chunk.window_samples(start_ns, end_ns))
        return result

    def window_arrays(self, start_ns: int, end_ns: int) -> Tuple[List[int], List[float]]:
        """The window as parallel (timestamps, values) arrays.

        Same samples as :meth:`window`, but as primitive lists built from
        chunk-internal slices — no per-sample object is allocated, which
        is what makes the query engine's bulk range evaluation cheap.
        """
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        first = max(0, bisect_right(self._starts, start_ns) - 1)
        last = bisect_right(self._starts, end_ns, first)
        times: List[int] = []
        values: List[float] = []
        for chunk in self._chunks[first:last]:
            if chunk.end_ns < start_ns:
                continue
            low, high = chunk.window_bounds(start_ns, end_ns)
            if low < high:
                times.extend(chunk._times[low:high])
                values.extend(chunk._values[low:high])
        return times, values

    def drop_before(self, cutoff_ns: int) -> int:
        """Retention: drop whole chunks entirely older than ``cutoff_ns``.

        Returns the number of samples dropped.  Partial chunks are kept —
        retention is chunk-granular, as in real TSDBs.
        """
        keep = 0
        while keep < len(self._chunks) and self._chunks[keep].end_ns < cutoff_ns:
            keep += 1
        if keep == 0:
            return 0
        dropped = sum(len(chunk) for chunk in self._chunks[:keep])
        del self._chunks[:keep]
        del self._starts[:keep]
        self._count -= dropped
        return dropped

    def split_before(self, cutoff_ns: int) -> Tuple[List[int], List[float]]:
        """Detach and return every sample with ``t < cutoff_ns``.

        Sample-granular, unlike :meth:`drop_before`: a chunk straddling
        the cutoff is split, so compaction can fold exactly the samples
        below a bucket-aligned horizon and no others.  Returns the
        detached (timestamps, values) parallel arrays in time order.
        """
        times: List[int] = []
        values: List[float] = []
        keep = 0
        while keep < len(self._chunks) and self._chunks[keep].end_ns < cutoff_ns:
            chunk = self._chunks[keep]
            times.extend(chunk._times)
            values.extend(chunk._values)
            keep += 1
        del self._chunks[:keep]
        del self._starts[:keep]
        if self._chunks and self._chunks[0].start_ns < cutoff_ns:
            head = self._chunks[0]
            split = bisect_left(head._times, cutoff_ns)
            if split:
                times.extend(head._times[:split])
                values.extend(head._values[:split])
                rebuilt = Chunk(head._times[split])
                rebuilt._times = head._times[split:]
                rebuilt._values = head._values[split:]
                self._chunks[0] = rebuilt
                self._starts[0] = rebuilt.start_ns
        self._count -= len(times)
        return times, values

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint."""
        return sum(chunk.memory_bytes() for chunk in self._chunks)
