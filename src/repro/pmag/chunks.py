"""Chunked sample storage.

The paper: the PMAG "stores all metrics data samples locally and groups
them into chunks for faster retrieval".  A :class:`Chunk` holds up to
``CHUNK_SIZE`` samples with delta-encoded timestamps (scrape intervals are
regular, so deltas are tiny and mostly constant) and can serialise itself
to bytes for archival.  A :class:`ChunkedSeries` is an append-only list of
chunks with binary-search retrieval over time ranges.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.errors import TsdbError
from repro.pmag.model import Sample

CHUNK_SIZE = 120  # samples per chunk; 10 minutes at the 5 s default interval


class Chunk:
    """Up to CHUNK_SIZE samples with delta-encoded timestamps."""

    __slots__ = ("start_ns", "_deltas", "_values", "_last_ns")

    def __init__(self, start_ns: int) -> None:
        self.start_ns = start_ns
        self._deltas: List[int] = []
        self._values: List[float] = []
        self._last_ns = start_ns

    def __len__(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        """Whether the chunk has reached capacity."""
        return len(self._values) >= CHUNK_SIZE

    @property
    def end_ns(self) -> int:
        """Timestamp of the newest sample."""
        return self._last_ns

    def append(self, time_ns: int, value: float) -> None:
        """Append one sample; timestamps must be strictly increasing."""
        if self._values and time_ns <= self._last_ns:
            raise TsdbError(
                f"out-of-order append: {time_ns} <= {self._last_ns}"
            )
        if not self._values and time_ns != self.start_ns:
            raise TsdbError("first sample must land at the chunk start time")
        if self.full:
            raise TsdbError("append to a full chunk")
        self._deltas.append(time_ns - self._last_ns)
        self._values.append(value)
        self._last_ns = time_ns

    def samples(self) -> Iterator[Sample]:
        """Iterate samples in time order."""
        current = self.start_ns
        for delta, value in zip(self._deltas, self._values):
            current += delta
            yield Sample(current, value)

    # Note: deltas include a leading 0 for the first sample.
    def encode(self) -> bytes:
        """Serialise to bytes (archival format)."""
        header = struct.pack("<qI", self.start_ns, len(self._values))
        deltas = b"".join(struct.pack("<q", d) for d in self._deltas)
        values = b"".join(struct.pack("<d", v) for v in self._values)
        return header + deltas + values

    @staticmethod
    def decode(data: bytes) -> "Chunk":
        """Deserialise from :meth:`encode` output."""
        if len(data) < 12:
            raise TsdbError("chunk data too short")
        start_ns, count = struct.unpack_from("<qI", data, 0)
        expected = 12 + count * 8 + count * 8
        if len(data) != expected:
            raise TsdbError(f"chunk data length {len(data)} != expected {expected}")
        chunk = Chunk(start_ns)
        offset = 12
        deltas = [struct.unpack_from("<q", data, offset + i * 8)[0] for i in range(count)]
        offset += count * 8
        values = [struct.unpack_from("<d", data, offset + i * 8)[0] for i in range(count)]
        current = start_ns
        for index, (delta, value) in enumerate(zip(deltas, values)):
            current += delta
            if index == 0:
                # Re-anchor: first delta is 0 by construction.
                chunk.append(chunk.start_ns + delta, value)
            else:
                chunk.append(current, value)
        return chunk

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint."""
        return 24 + len(self._values) * 16


class ChunkedSeries:
    """Append-only chunk list for one series."""

    __slots__ = ("_chunks", "_starts")

    def __init__(self) -> None:
        self._chunks: List[Chunk] = []
        self._starts: List[int] = []

    @property
    def sample_count(self) -> int:
        """Total stored samples."""
        return sum(len(chunk) for chunk in self._chunks)

    @property
    def chunk_count(self) -> int:
        """Number of chunks."""
        return len(self._chunks)

    def last_time_ns(self) -> Optional[int]:
        """Newest timestamp, if any."""
        return self._chunks[-1].end_ns if self._chunks else None

    def append(self, time_ns: int, value: float) -> None:
        """Append a sample, opening a new chunk when the head is full."""
        last = self.last_time_ns()
        if last is not None and time_ns <= last:
            raise TsdbError(f"out-of-order append: {time_ns} <= {last}")
        if not self._chunks or self._chunks[-1].full:
            chunk = Chunk(time_ns)
            self._chunks.append(chunk)
            self._starts.append(time_ns)
        self._chunks[-1].append(time_ns, value)

    def window(self, start_ns: int, end_ns: int) -> List[Sample]:
        """Samples with ``start_ns <= t <= end_ns``."""
        if end_ns < start_ns:
            raise TsdbError(f"bad window: {start_ns}..{end_ns}")
        # First chunk that may overlap: the one before the first start > start_ns.
        first = max(0, bisect_right(self._starts, start_ns) - 1)
        result: List[Sample] = []
        for chunk in self._chunks[first:]:
            if chunk.start_ns > end_ns:
                break
            if chunk.end_ns < start_ns:
                continue
            for sample in chunk.samples():
                if sample.time_ns > end_ns:
                    break
                if sample.time_ns >= start_ns:
                    result.append(sample)
        return result

    def drop_before(self, cutoff_ns: int) -> int:
        """Retention: drop whole chunks entirely older than ``cutoff_ns``.

        Returns the number of samples dropped.  Partial chunks are kept —
        retention is chunk-granular, as in real TSDBs.
        """
        dropped = 0
        while self._chunks and self._chunks[0].end_ns < cutoff_ns:
            dropped += len(self._chunks[0])
            self._chunks.pop(0)
            self._starts.pop(0)
        return dropped

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint."""
        return sum(chunk.memory_bytes() for chunk in self._chunks)
