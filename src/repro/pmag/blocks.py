"""Block lifecycle: downsampled rollups behind the storage engine.

The TSDB's raw head holds full-resolution samples in
:class:`~repro.pmag.chunks.ChunkedSeries`.  Once samples age past
``downsample_after``, compaction folds them — at block granularity —
into a :class:`SeriesRollup`: per fixed-width time bucket, the
``min``/``max``/``sum``/``count`` aggregates plus the first and last
sample of the bucket.  The raw samples are dropped (that is the bytes
saved), and wide-window queries over old data read a handful of buckets
instead of thousands of samples.

Exactness is the design constraint, not an afterthought.  Buckets are
half-open ``[b·R, (b+1)·R)`` intervals, compaction horizons are always
bucket-aligned, and every folded sample lands in exactly one bucket —
so for a query window ``[s, e]`` whose bounds are multiples of the
resolution ``R``:

* buckets starting in ``[s, e - R]`` lie entirely inside the window;
* the only sample of bucket ``e`` that the window can include is one at
  exactly ``e`` — which is the bucket's recorded *first* sample if its
  timestamp equals ``e``, else nothing.

:meth:`SeriesRollup.window_aggregate` composes those pieces into an
aggregate that is *equal* to evaluating the raw samples, which is what
lets the query engine substitute rollups for raw data transparently
(and what the equivalence tests pin down).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import TsdbError


@dataclass(frozen=True)
class BlockPolicy:
    """When and how the storage engine compacts raw data.

    ``block_range_ns`` is the width of one block — compaction horizons
    and block-granular retention cuts are aligned down to multiples of
    it.  Samples older than ``downsample_after_ns`` are folded into
    rollup buckets of ``resolution_ns`` width.  The block range must be
    a whole number of buckets so horizons never split a bucket (the
    alignment that makes rollup reads exact).
    """

    block_range_ns: int
    downsample_after_ns: int
    resolution_ns: int

    def __post_init__(self) -> None:
        if self.block_range_ns <= 0:
            raise TsdbError(f"block range must be positive: {self.block_range_ns}")
        if self.downsample_after_ns <= 0:
            raise TsdbError(
                f"downsample horizon must be positive: {self.downsample_after_ns}"
            )
        if self.resolution_ns <= 0:
            raise TsdbError(f"resolution must be positive: {self.resolution_ns}")
        if self.block_range_ns % self.resolution_ns:
            raise TsdbError(
                f"block range {self.block_range_ns} is not a multiple of the "
                f"downsample resolution {self.resolution_ns}"
            )


@dataclass
class StorageStats:
    """Mutable counters behind the ``teemon_storage_*`` self-telemetry."""

    #: Compaction passes that folded at least the horizon check.
    compactions_total: int = 0
    #: Raw samples folded into rollup buckets (and dropped from raw).
    samples_compacted_total: int = 0
    #: Approximate bytes the fold released (raw footprint minus the
    #: rollup growth); the "what did downsampling buy" number.
    bytes_saved_total: int = 0
    #: Range-function evaluations served from rollups instead of raw.
    downsampled_reads_total: int = 0
    #: Range queries answered from per-shard aggregate partials instead
    #: of a full cross-shard series merge.
    pushdown_reads_total: int = 0

    def merge(self, other: "StorageStats") -> None:
        """Fold another stats object into this one (shard aggregation)."""
        self.compactions_total += other.compactions_total
        self.samples_compacted_total += other.samples_compacted_total
        self.bytes_saved_total += other.bytes_saved_total
        self.downsampled_reads_total += other.downsampled_reads_total
        self.pushdown_reads_total += other.pushdown_reads_total


class WindowAggregate(NamedTuple):
    """Exact aggregate of one series over one query window.

    A NamedTuple rather than a (frozen) dataclass: the query engine
    builds one per series per step on the downsampled read path, and
    tuple construction is several times cheaper than guarded
    ``object.__setattr__`` field assignment.
    """

    count: int
    minimum: float
    maximum: float
    total: float
    last_time_ns: int
    last_value: float

    def merge(self, other: Optional["WindowAggregate"]) -> "WindowAggregate":
        """Combine with another disjoint window aggregate (exact)."""
        if other is None or other.count == 0:
            return self
        if self.count == 0:
            return other
        newer = self if self.last_time_ns >= other.last_time_ns else other
        return WindowAggregate(
            count=self.count + other.count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            total=self.total + other.total,
            last_time_ns=newer.last_time_ns,
            last_value=newer.last_value,
        )


#: An empty window: merged with anything it is the identity.
EMPTY_AGGREGATE = WindowAggregate(
    count=0, minimum=float("inf"), maximum=float("-inf"),
    total=0.0, last_time_ns=-1, last_value=0.0,
)


def aggregate_arrays(
    times: Sequence[int], values: Sequence[float], start_ns: int, end_ns: int
) -> WindowAggregate:
    """Exact aggregate of raw parallel arrays over ``[start_ns, end_ns]``."""
    low = bisect_left(times, start_ns)
    high = bisect_right(times, end_ns, low)
    if low >= high:
        return EMPTY_AGGREGATE
    window = values[low:high]
    return WindowAggregate(
        count=high - low,
        minimum=min(window),
        maximum=max(window),
        total=sum(window),
        last_time_ns=times[high - 1],
        last_value=values[high - 1],
    )


class SeriesRollup:
    """Downsampled buckets of one series, append-only like the raw head.

    Parallel arrays, one entry per *non-empty* bucket, ordered by bucket
    start.  ``fold`` absorbs raw samples (which arrive time-ordered and
    strictly after everything already folded); ``window_aggregate``
    serves aligned windows exactly (see the module docstring);
    ``drop_before`` is the retention hook.
    """

    __slots__ = (
        "resolution_ns", "_starts", "_mins", "_maxs", "_sums", "_counts",
        "_first_times", "_first_values", "_last_times", "_last_values",
    )

    def __init__(self, resolution_ns: int) -> None:
        if resolution_ns <= 0:
            raise TsdbError(f"resolution must be positive: {resolution_ns}")
        self.resolution_ns = resolution_ns
        self._starts: List[int] = []
        self._mins: List[float] = []
        self._maxs: List[float] = []
        self._sums: List[float] = []
        self._counts: List[int] = []
        self._first_times: List[int] = []
        self._first_values: List[float] = []
        self._last_times: List[int] = []
        self._last_values: List[float] = []

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._starts)

    @property
    def sample_count(self) -> int:
        """Raw samples folded into the rollup (and no longer raw)."""
        return sum(self._counts)

    def last_time_ns(self) -> Optional[int]:
        """Timestamp of the newest folded sample, if any."""
        return self._last_times[-1] if self._last_times else None

    def fold(self, times: Sequence[int], values: Sequence[float]) -> None:
        """Absorb raw samples; they must be newer than anything folded."""
        if not times:
            return
        last = self.last_time_ns()
        if last is not None and times[0] <= last:
            raise TsdbError(
                f"out-of-order fold: {times[0]} <= {last}"
            )
        resolution = self.resolution_ns
        starts = self._starts
        for time_ns, value in zip(times, values):
            bucket = time_ns - time_ns % resolution
            if starts and starts[-1] == bucket:
                index = len(starts) - 1
                if value < self._mins[index]:
                    self._mins[index] = value
                if value > self._maxs[index]:
                    self._maxs[index] = value
                self._sums[index] += value
                self._counts[index] += 1
                self._last_times[index] = time_ns
                self._last_values[index] = value
            else:
                starts.append(bucket)
                self._mins.append(value)
                self._maxs.append(value)
                self._sums.append(value)
                self._counts.append(1)
                self._first_times.append(time_ns)
                self._first_values.append(value)
                self._last_times.append(time_ns)
                self._last_values.append(value)

    def window_aggregate(self, start_ns: int, end_ns: int) -> WindowAggregate:
        """Exact aggregate over ``[start_ns, end_ns]``, both multiples of
        the resolution.  Callers guarantee the alignment; the composition
        below is only exact because of it."""
        starts = self._starts
        low = bisect_left(starts, start_ns)
        # Full buckets: starts in [start_ns, end_ns - resolution].  Both
        # bounds and every start are multiples of the resolution, so the
        # bisect at end_ns is exactly the last full bucket's successor.
        high = bisect_left(starts, end_ns, low)
        if low < high:
            count = sum(self._counts[low:high])
            minimum = min(self._mins[low:high])
            maximum = max(self._maxs[low:high])
            total = sum(self._sums[low:high])
            last_time_ns = self._last_times[high - 1]
            last_value = self._last_values[high - 1]
        else:
            count = 0
            minimum = maximum = total = 0.0
            last_time_ns = -1
            last_value = 0.0
        # The bucket starting exactly at end_ns contributes at most its
        # first sample — and only if that sample sits exactly on end_ns.
        if (
            high < len(starts)
            and starts[high] == end_ns
            and self._first_times[high] == end_ns
        ):
            value = self._first_values[high]
            if count:
                count += 1
                if value < minimum:
                    minimum = value
                if value > maximum:
                    maximum = value
                total += value
            else:
                count = 1
                minimum = maximum = total = value
            last_time_ns = end_ns
            last_value = value
        if count == 0:
            return EMPTY_AGGREGATE
        return WindowAggregate(
            count, minimum, maximum, total, last_time_ns, last_value
        )

    def drop_before(self, cutoff_ns: int) -> int:
        """Retention: drop buckets whose newest sample predates the cut.

        Returns the folded sample count released.  Only a prefix can be
        dropped (buckets are time-ordered), mirroring the chunk-granular
        raw retention.
        """
        keep = 0
        while keep < len(self._starts) and self._last_times[keep] < cutoff_ns:
            keep += 1
        if keep == 0:
            return 0
        dropped = sum(self._counts[:keep])
        for attr in self.__slots__:
            if attr.startswith("_"):
                del getattr(self, attr)[:keep]
        return dropped

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the bucket arrays."""
        return 32 + len(self._starts) * 9 * 8
