"""Write-ahead log and crash recovery for the TSDB.

The durability layer behind ``TeemonConfig(enable_wal=True)``.  Every
sample the TSDB accepts is written through to an append-only log on a
:class:`~repro.simkernel.disk.SimDisk`; periodic checkpoints serialise
the whole database in the :mod:`repro.pmag.archive` snapshot format and
truncate the replayed segments.  After a crash, :func:`recover` loads the
newest checkpoint that passes its checksum, replays every WAL segment
written after it, verifies each record's CRC32, and *quarantines* (skips
and counts, never dies on) anything corrupt.

On-disk layout (all little-endian), under one directory prefix::

    segment-{seq:08d}.wal     header: magic "TMWALSEG" | u16 version | u32 seq
                              record: u32 len | u32 crc32(payload) | payload
    checkpoint-{seq:08d}.ckpt archive snapshot bytes (version 2, self-checksummed)

Record payload::

    u8 kind (1 = sample) | u32 label count
    (u16 len + utf8 key | u16 len + utf8 value)*  — sorted by key
    i64 time_ns | f64 value

Segments and checkpoints draw from one monotonic sequence counter, which
gives a total order over durability events: recovery replays exactly the
segments whose sequence number is greater than the chosen checkpoint's.
Checkpointing orders its writes for crash safety — flush the live
segment, write *and sync* the checkpoint, delete older checkpoints,
rotate to a fresh segment, then delete the segments the checkpoint
subsumes — so at every instant either the old checkpoint plus old
segments or the new checkpoint is durable and complete.

Durability contract: appended records are durable only after
:meth:`WalWriter.flush` (which ``fsync``\\ s the live segment), so the
maximum loss after a crash is the records appended since the last flush.
The simulated medium reports exactly what a crash destroyed
(:class:`~repro.simkernel.disk.DiskCrashReport`); :func:`recover` walks
the discarded tails structurally and reports the loss *exactly* in
:attr:`RecoveryReport.samples_lost` — no guessing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StorageError, TsdbError, WalError
from repro.pmag import archive
from repro.pmag.model import Labels
from repro.pmag.tsdb import Tsdb
from repro.simkernel.disk import DiskCrashReport, SimDisk

SEGMENT_MAGIC = b"TMWALSEG"
SEGMENT_VERSION = 1
#: Segment header: magic | u16 version | u32 seq.
HEADER_SIZE = len(SEGMENT_MAGIC) + 6
#: Upper bound on one record's payload; a length field beyond this is
#: treated as corruption of the framing itself (the rest of the segment
#: cannot be walked and is quarantined wholesale).
MAX_RECORD_BYTES = 1 << 20

RECORD_SAMPLE = 1
#: Rule-materialization cursor: ``u8 kind | u16 len + utf8 key | i64 ns``.
#: Cursor frames ride the same segments as samples but are *metadata* —
#: they are excluded from every sample counter (``records_total``,
#: ``unflushed_records``, ``samples_lost``), because losing one costs a
#: full rule re-evaluation, never a sample.
RECORD_CURSOR = 2


def _pack_text(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WalError(f"label component too long: {len(raw)} bytes")
    return struct.pack("<H", len(raw)) + raw


def encode_record(labels: Labels, time_ns: int, value: float) -> bytes:
    """One framed WAL record (length prefix + CRC32 + payload)."""
    items = labels.items()
    pieces: List[bytes] = [struct.pack("<BI", RECORD_SAMPLE, len(items))]
    for key, val in items:
        pieces.append(_pack_text(key))
        pieces.append(_pack_text(val))
    pieces.append(struct.pack("<qd", time_ns, value))
    payload = b"".join(pieces)
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(f"record payload too large: {len(payload)} bytes")
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def encode_record_cached(
    labels: Labels, time_ns: int, value: float,
    cache: Dict[Labels, Tuple[bytes, int, bytes]],
) -> bytes:
    """:func:`encode_record` with a label-prefix memo.

    A batch encodes many samples of few distinct series; the label block
    of a record (everything before the trailing time+value) depends only
    on the label set, so it — and its partial CRC — is computed once per
    distinct ``labels`` and reused.  Byte-identical to
    :func:`encode_record`.
    """
    entry = cache.get(labels)
    if entry is None:
        items = labels.items()
        pieces: List[bytes] = [struct.pack("<BI", RECORD_SAMPLE, len(items))]
        for key, val in items:
            pieces.append(_pack_text(key))
            pieces.append(_pack_text(val))
        prefix = b"".join(pieces)
        if len(prefix) + 16 > MAX_RECORD_BYTES:
            raise WalError(
                f"record payload too large: {len(prefix) + 16} bytes"
            )
        entry = (prefix, zlib.crc32(prefix),
                 struct.pack("<I", len(prefix) + 16))
        cache[labels] = entry
    prefix, prefix_crc, length_bytes = entry
    tail = struct.pack("<qd", time_ns, value)
    return (length_bytes + struct.pack("<I", zlib.crc32(tail, prefix_crc))
            + prefix + tail)


def decode_payload(payload: bytes) -> Tuple[Labels, int, float]:
    """Parse a record payload back into (labels, time_ns, value)."""
    try:
        kind, label_count = struct.unpack_from("<BI", payload, 0)
        if kind != RECORD_SAMPLE:
            raise WalError(f"unknown record kind: {kind}")
        offset = 5
        mapping = {}
        for _ in range(label_count):
            for _part in range(2):
                (length,) = struct.unpack_from("<H", payload, offset)
                offset += 2
                if offset + length > len(payload):
                    raise WalError("truncated label text")
                if _part == 0:
                    key = payload[offset:offset + length].decode("utf-8")
                else:
                    mapping[key] = payload[offset:offset + length].decode("utf-8")
                offset += length
        time_ns, value = struct.unpack_from("<qd", payload, offset)
        if offset + 16 != len(payload):
            raise WalError("trailing bytes in record payload")
    except (struct.error, UnicodeDecodeError) as exc:
        raise WalError(f"malformed record payload: {exc}") from exc
    return Labels(mapping), time_ns, value


def encode_cursor_record(key: str, cursor_ns: int) -> bytes:
    """One framed materialization-cursor record."""
    payload = struct.pack("<B", RECORD_CURSOR) + _pack_text(key) + struct.pack(
        "<q", cursor_ns
    )
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def decode_cursor_payload(payload: bytes) -> Tuple[str, int]:
    """Parse a cursor payload back into (key, cursor_ns)."""
    try:
        (kind,) = struct.unpack_from("<B", payload, 0)
        if kind != RECORD_CURSOR:
            raise WalError(f"not a cursor record: kind {kind}")
        (length,) = struct.unpack_from("<H", payload, 1)
        if 3 + length + 8 != len(payload):
            raise WalError("malformed cursor payload")
        key = payload[3:3 + length].decode("utf-8")
        (cursor_ns,) = struct.unpack_from("<q", payload, 3 + length)
    except (struct.error, UnicodeDecodeError) as exc:
        raise WalError(f"malformed cursor payload: {exc}") from exc
    return key, cursor_ns


def segment_name(directory: str, seq: int) -> str:
    """Canonical segment file name for a sequence number."""
    return f"{directory}/segment-{seq:08d}.wal"


def shard_directory(directory: str, index: int) -> str:
    """Per-shard WAL directory under one base directory."""
    return f"{directory}/shard-{index:02d}"


def checkpoint_name(directory: str, seq: int) -> str:
    """Canonical checkpoint file name for a sequence number."""
    return f"{directory}/checkpoint-{seq:08d}.ckpt"


def _parse_seq(name: str) -> Optional[int]:
    """Sequence number from a segment/checkpoint file name, else None."""
    base = name.rsplit("/", 1)[-1]
    for prefix, suffix in (("segment-", ".wal"), ("checkpoint-", ".ckpt")):
        if base.startswith(prefix) and base.endswith(suffix):
            digits = base[len(prefix):-len(suffix)]
            if digits.isdigit():
                return int(digits)
    return None


def _count_records(data: bytes, file_offset: int = 0) -> int:
    """Complete records in a byte range starting at ``file_offset``.

    The structural loss oracle: walks length prefixes without checking
    CRCs (a bit-flipped record that never became durable is still a lost
    sample).  ``file_offset`` is where ``data`` began in the segment file
    — a fresh segment's unsynced tail includes the header, which must be
    skipped before the walk.  Only *sample* frames count: cursor frames
    are metadata whose loss destroys no data, so they are invisible to
    loss accounting (the recovery side classifies by the same kind byte,
    which keeps ``samples_lost`` exact).
    """
    pos = HEADER_SIZE - file_offset if file_offset < HEADER_SIZE else 0
    count = 0
    while len(data) - pos >= 8:
        (length,) = struct.unpack_from("<I", data, pos)
        if not 0 < length <= MAX_RECORD_BYTES:
            break
        if pos + 8 + length > len(data):
            break
        if data[pos + 8] == RECORD_SAMPLE:
            count += 1
        pos += 8 + length
    return count


class WalWriter:
    """Appends ingest records to segment files on a simulated disk.

    Attach to a database with :meth:`Tsdb.attach_wal`; the TSDB calls
    :meth:`append` for every accepted sample.  ``flush_every_records``
    bounds the unflushed window by count (0 = only explicit flushes);
    the deployment layer adds time-based flushes on the virtual clock.
    """

    def __init__(
        self,
        disk: SimDisk,
        directory: str = "wal",
        flush_every_records: int = 0,
        segment_max_records: int = 4096,
    ) -> None:
        if segment_max_records < 1:
            raise WalError(f"segment_max_records must be >= 1: {segment_max_records}")
        if flush_every_records < 0:
            raise WalError(f"flush_every_records must be >= 0: {flush_every_records}")
        self.disk = disk
        self.directory = directory
        self.flush_every_records = flush_every_records
        self.segment_max_records = segment_max_records
        self.records_total = 0
        self.cursor_records_total = 0
        self.flushes_total = 0
        self.checkpoints_total = 0
        self.segments_total = 0
        self.unflushed_records = 0
        self._segment_records = 0
        #: Latest cursor per key; re-emitted into the fresh segment on
        #: every checkpoint so truncation never drops cursor durability.
        self._cursors: dict = {}
        # Continue the sequence past anything already on the medium so a
        # writer built after recovery never reuses a live number.
        last = max(
            (s for s in map(_parse_seq, disk.list_files(f"{directory}/"))
             if s is not None),
            default=0,
        )
        self._seq = last
        self._segment = ""
        self._open_segment()

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _open_segment(self) -> None:
        seq = self._next_seq()
        self._segment = segment_name(self.directory, seq)
        header = SEGMENT_MAGIC + struct.pack("<HI", SEGMENT_VERSION, seq)
        self.disk.append(self._segment, header)
        self._segment_records = 0
        self.segments_total += 1

    @property
    def current_segment(self) -> str:
        """Name of the live segment file."""
        return self._segment

    @property
    def segment_seq(self) -> int:
        """Sequence number of the live segment."""
        return self._seq

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def append(self, labels: Labels, time_ns: int, value: float) -> None:
        """Write one accepted sample through to the live segment."""
        self.disk.append(self._segment, encode_record(labels, time_ns, value))
        self.records_total += 1
        self.unflushed_records += 1
        self._segment_records += 1
        if self.flush_every_records and self.unflushed_records >= self.flush_every_records:
            self.flush()
        if self._segment_records >= self.segment_max_records:
            self.flush()
            self._open_segment()

    def append_many(self, entries) -> None:
        """Write a batch of accepted ``(labels, time_ns, value)`` samples.

        Byte-for-byte and counter-for-counter equivalent to calling
        :meth:`append` per sample — flush and rotation decisions fire at
        exactly the same record boundaries — but consecutive records
        between those boundaries land in one ``disk.append`` each, so a
        scrape cycle's write-through costs a handful of disk writes
        instead of one per sample.
        """
        pending: list = []
        for labels, time_ns, value in entries:
            pending.append(encode_record(labels, time_ns, value))
            self.records_total += 1
            self.unflushed_records += 1
            self._segment_records += 1
            flush_due = bool(
                self.flush_every_records
                and self.unflushed_records >= self.flush_every_records
            )
            rotate_due = self._segment_records >= self.segment_max_records
            if flush_due or rotate_due:
                self.disk.append(self._segment, b"".join(pending))
                pending.clear()
                self.flush()
                if rotate_due:
                    self._open_segment()
        if pending:
            self.disk.append(self._segment, b"".join(pending))

    def append_cursor(self, key: str, cursor_ns: int) -> None:
        """Write one materialization-cursor frame to the live segment.

        Cursor frames are excluded from the sample counters and never
        trigger a flush on their own: a cursor becomes durable with the
        next flush, and a cursor lost to a crash only means the rule
        falls back to a full evaluation — no data is at stake.
        """
        self.disk.append(self._segment, encode_cursor_record(key, cursor_ns))
        self._cursors[key] = cursor_ns
        self.cursor_records_total += 1
        self._segment_records += 1

    def record_cursors(self, cursors: dict) -> None:
        """Seed and persist a cursor map (post-recovery re-arming)."""
        for key in sorted(cursors):
            self.append_cursor(key, cursors[key])

    def flush(self) -> None:
        """Make everything appended so far durable (``fsync``)."""
        if self.disk.synced_size(self._segment) == self.disk.size(self._segment):
            self.unflushed_records = 0
            return
        self.disk.sync(self._segment)
        self.unflushed_records = 0
        self.flushes_total += 1

    def checkpoint(self, tsdb: Tsdb) -> str:
        """Serialise ``tsdb``, then truncate the segments it subsumes.

        The write order is the crash-safety invariant (see the module
        docstring): the old state is deleted only after the new
        checkpoint is durable, and old segments only after the rotation
        that succeeds it — a crash at any point leaves a complete,
        recoverable history on the medium.
        """
        self.flush()
        seq = self._next_seq()
        name = checkpoint_name(self.directory, seq)
        self.disk.write(name, archive.snapshot(tsdb))
        self.disk.sync(name)
        for other in self.disk.list_files(f"{self.directory}/checkpoint-"):
            other_seq = _parse_seq(other)
            if other_seq is not None and other_seq < seq:
                self.disk.delete(other)
        self._open_segment()
        if self._cursors:
            # The deleted segments carried the cursor frames; re-emit the
            # current map into the fresh segment and make it durable so
            # checkpoint truncation never rolls a cursor back.
            frames = b"".join(
                encode_cursor_record(key, self._cursors[key])
                for key in sorted(self._cursors)
            )
            self.disk.append(self._segment, frames)
            self.disk.sync(self._segment)
            self.cursor_records_total += len(self._cursors)
            self._segment_records += len(self._cursors)
        for other in self.disk.list_files(f"{self.directory}/segment-"):
            other_seq = _parse_seq(other)
            if other_seq is not None and other_seq < seq:
                self.disk.delete(other)
        self.checkpoints_total += 1
        return name


@dataclass
class RecoveryReport:
    """What one :func:`recover` pass found, replayed and discarded."""

    #: Checkpoint file restored from, or None (cold start / none usable).
    checkpoint_used: Optional[str] = None
    #: Checkpoint files that failed their checksum or parse.
    checkpoints_quarantined: int = 0
    #: Segment files examined (seq greater than the checkpoint's).
    segments_scanned: int = 0
    #: Segments whose header or framing was unwalkably corrupt.
    segments_quarantined: int = 0
    #: Records re-applied to the database.
    records_replayed: int = 0
    #: Records skipped for CRC mismatch or malformed payload.
    records_quarantined: int = 0
    #: Records rejected as already covered by the checkpoint (idempotent
    #: replay: the out-of-order append check is the deduplicator).
    records_duplicate: int = 0
    #: Segments ending mid-record — the write in flight when power died.
    torn_tails: int = 0
    #: Exact samples destroyed: structurally-counted records in the
    #: crash-discarded tails plus durable-but-quarantined records.
    samples_lost: int = 0
    #: Residual quarantined-record loss when no crash evidence was given.
    quarantine_only: bool = field(default=False, repr=False)
    #: Cursor frames replayed (metadata; never in :attr:`samples_lost`).
    cursor_records: int = 0
    #: Cursor frames that failed CRC or parse — the rule falls back to a
    #: full evaluation, so these are not data loss either.
    cursor_records_quarantined: int = 0
    #: Latest recovered materialization cursor per key.
    cursors: dict = field(default_factory=dict)


def recover(
    disk: SimDisk,
    directory: str = "wal",
    retention_ns: Optional[int] = None,
    crash_report: Optional[DiskCrashReport] = None,
    plan=None,
    block_policy=None,
) -> Tuple[Tsdb, RecoveryReport]:
    """Rebuild a TSDB from the medium after a crash.

    Loads the newest checkpoint whose checksum verifies, replays every
    segment with a greater sequence number in order, and quarantines
    whatever fails verification — recovery never raises on corrupt data,
    it counts it.  ``crash_report`` (from :meth:`SimDisk.crash`) is the
    loss oracle; ``plan`` (a :class:`~repro.faults.plan.FaultPlan`)
    journals every quarantine decision.  ``block_policy`` re-arms
    compaction on the recovered store (checkpoints carry raw chunks
    only, so rollups rebuild from future compaction passes).
    """
    report = RecoveryReport()

    # -- choose a checkpoint -------------------------------------------
    tsdb = Tsdb(retention_ns=retention_ns, block_policy=block_policy)
    checkpoint_seq = 0
    for name in reversed(disk.list_files(f"{directory}/checkpoint-")):
        seq = _parse_seq(name)
        if seq is None:
            continue
        try:
            restored = archive.restore(disk.read(name))
        except (TsdbError, StorageError):
            report.checkpoints_quarantined += 1
            if plan is not None:
                plan.record("wal-checkpoint-quarantined", name)
            continue
        restored.retention_ns = retention_ns
        restored.block_policy = block_policy
        tsdb = restored
        checkpoint_seq = seq
        report.checkpoint_used = name
        break

    # -- replay segments past it ---------------------------------------
    for name in disk.list_files(f"{directory}/segment-"):
        seq = _parse_seq(name)
        if seq is None or seq <= checkpoint_seq:
            continue
        report.segments_scanned += 1
        data = disk.read(name)
        if len(data) < HEADER_SIZE:
            # A crash right after rotation discards the not-yet-synced
            # header — routine power-loss residue, not corruption.
            if data:
                report.torn_tails += 1
            continue
        if data[:len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            report.segments_quarantined += 1
            if plan is not None:
                plan.record("wal-segment-quarantined", name)
            continue
        version, header_seq = struct.unpack_from(
            "<HI", data, len(SEGMENT_MAGIC))
        if version != SEGMENT_VERSION or header_seq != seq:
            report.segments_quarantined += 1
            if plan is not None:
                plan.record("wal-segment-quarantined", name)
            continue
        pos = HEADER_SIZE
        while True:
            remaining = len(data) - pos
            if remaining == 0:
                break
            if remaining < 8:
                report.torn_tails += 1
                break
            length, crc = struct.unpack_from("<II", data, pos)
            if not 0 < length <= MAX_RECORD_BYTES:
                # The framing itself is corrupt; nothing past this point
                # can be walked reliably.
                report.segments_quarantined += 1
                if plan is not None:
                    plan.record("wal-segment-quarantined", f"{name}@{pos}")
                break
            if remaining < 8 + length:
                report.torn_tails += 1
                break
            payload = data[pos + 8:pos + 8 + length]
            pos += 8 + length
            is_cursor = bool(payload) and payload[0] == RECORD_CURSOR
            if zlib.crc32(payload) != crc:
                # Classify by the same kind byte the structural loss
                # oracle reads, so quarantined cursors never leak into
                # samples_lost.
                if is_cursor:
                    report.cursor_records_quarantined += 1
                else:
                    report.records_quarantined += 1
                if plan is not None:
                    plan.record("wal-record-quarantined", f"{name}@{pos - 8 - length}")
                continue
            if is_cursor:
                try:
                    key, cursor_ns = decode_cursor_payload(payload)
                except WalError:
                    report.cursor_records_quarantined += 1
                    if plan is not None:
                        plan.record(
                            "wal-record-quarantined", f"{name}@{pos - 8 - length}"
                        )
                    continue
                report.cursor_records += 1
                report.cursors[key] = cursor_ns
                continue
            try:
                labels, time_ns, value = decode_payload(payload)
            except WalError:
                report.records_quarantined += 1
                if plan is not None:
                    plan.record("wal-record-quarantined", f"{name}@{pos - 8 - length}")
                continue
            try:
                tsdb.append(labels, time_ns, value)
            except TsdbError:
                report.records_duplicate += 1
            else:
                report.records_replayed += 1

    # -- exact loss accounting -----------------------------------------
    # Durable-but-corrupt records are lost samples; so is every complete
    # record in the tails the crash discarded (counted structurally from
    # the medium's own report — the chaos layer's loss oracle).
    report.samples_lost = report.records_quarantined
    if crash_report is None:
        report.quarantine_only = True
    else:
        prefix = f"{directory}/segment-"
        for name, tail in crash_report.tails.items():
            if not name.startswith(prefix):
                continue
            written = _count_records(tail.data, tail.offset)
            kept = _count_records(tail.data[:tail.retained], tail.offset)
            report.samples_lost += written - kept
    return tsdb, report


class ShardedWal:
    """One :class:`WalWriter` per storage shard behind a single façade.

    The deployment layer flushes and checkpoints "the WAL" without
    caring how many shards sit underneath; counters are summed over the
    writers so existing ``teemon_wal_*`` telemetry and ``wal_stats()``
    keep their meaning (totals across the deployment).
    """

    def __init__(self, writers: Sequence[WalWriter]) -> None:
        if not writers:
            raise WalError("a sharded WAL needs at least one writer")
        self.writers: List[WalWriter] = list(writers)

    @property
    def shard_count(self) -> int:
        """Number of per-shard writers."""
        return len(self.writers)

    def shard(self, index: int) -> WalWriter:
        """The writer serving one shard."""
        return self.writers[index]

    @property
    def current_segment(self) -> str:
        """Shard 0's live segment (fault-injection hooks poke one shard)."""
        return self.writers[0].current_segment

    @property
    def records_total(self) -> int:
        return sum(w.records_total for w in self.writers)

    @property
    def cursor_records_total(self) -> int:
        return sum(w.cursor_records_total for w in self.writers)

    @property
    def flushes_total(self) -> int:
        return sum(w.flushes_total for w in self.writers)

    @property
    def checkpoints_total(self) -> int:
        return sum(w.checkpoints_total for w in self.writers)

    @property
    def segments_total(self) -> int:
        return sum(w.segments_total for w in self.writers)

    @property
    def unflushed_records(self) -> int:
        return sum(w.unflushed_records for w in self.writers)

    @property
    def unflushed_by_shard(self) -> List[int]:
        """Per-shard unflushed windows — the per-crash loss bound."""
        return [w.unflushed_records for w in self.writers]

    def append_cursor(self, key: str, cursor_ns: int) -> None:
        """Cursor frames live on shard 0 (they are not sample-routed)."""
        self.writers[0].append_cursor(key, cursor_ns)

    def record_cursors(self, cursors: dict) -> None:
        """Seed and persist a cursor map on shard 0."""
        self.writers[0].record_cursors(cursors)

    def flush(self) -> None:
        """Flush every shard's live segment."""
        for writer in self.writers:
            writer.flush()

    def checkpoint(self, engine) -> List[str]:
        """Checkpoint every shard of a sharded engine, in shard order."""
        return [
            writer.checkpoint(engine.shard(index))
            for index, writer in enumerate(self.writers)
        ]


@dataclass
class ShardedRecoveryReport:
    """Per-shard recovery reports plus deployment-wide aggregates.

    Exposes the same numeric attribute names as :class:`RecoveryReport`
    (as summing properties), so the deployment's recovery-statistics
    fold works on either shape.
    """

    shards: List[RecoveryReport] = field(default_factory=list)

    @property
    def checkpoint_used(self) -> Optional[str]:
        """First shard checkpoint used, if any (summary display)."""
        for report in self.shards:
            if report.checkpoint_used is not None:
                return report.checkpoint_used
        return None

    @property
    def checkpoints_quarantined(self) -> int:
        return sum(r.checkpoints_quarantined for r in self.shards)

    @property
    def segments_scanned(self) -> int:
        return sum(r.segments_scanned for r in self.shards)

    @property
    def segments_quarantined(self) -> int:
        return sum(r.segments_quarantined for r in self.shards)

    @property
    def records_replayed(self) -> int:
        return sum(r.records_replayed for r in self.shards)

    @property
    def records_quarantined(self) -> int:
        return sum(r.records_quarantined for r in self.shards)

    @property
    def records_duplicate(self) -> int:
        return sum(r.records_duplicate for r in self.shards)

    @property
    def torn_tails(self) -> int:
        return sum(r.torn_tails for r in self.shards)

    @property
    def samples_lost(self) -> int:
        return sum(r.samples_lost for r in self.shards)

    @property
    def samples_lost_by_shard(self) -> List[int]:
        """Exact loss per shard — what the sharded soak test proves."""
        return [r.samples_lost for r in self.shards]

    @property
    def cursor_records(self) -> int:
        return sum(r.cursor_records for r in self.shards)

    @property
    def cursor_records_quarantined(self) -> int:
        return sum(r.cursor_records_quarantined for r in self.shards)

    @property
    def cursors(self) -> dict:
        """Recovered cursors, newest per key across shards.

        Cursor frames are written to shard 0 only, but merging
        defensively (max per key) keeps the property correct even for
        media written by a different shard layout.
        """
        merged: dict = {}
        for report in self.shards:
            for key, cursor_ns in report.cursors.items():
                if key not in merged or cursor_ns > merged[key]:
                    merged[key] = cursor_ns
        return merged


def recover_sharded(
    disk: SimDisk,
    directory: str,
    shards: int,
    retention_ns: Optional[int] = None,
    crash_report: Optional[DiskCrashReport] = None,
    plan=None,
    block_policy=None,
):
    """Rebuild a sharded engine: one independent :func:`recover` per shard.

    Each shard replays only its own ``{directory}/shard-NN`` segments and
    checkpoints, and the crash report's tails are attributed per shard by
    the same directory-prefix filtering :func:`recover` already does —
    which is what makes ``samples_lost_by_shard`` exact rather than a
    deployment-wide estimate.
    """
    from repro.pmag.storage import ShardedTsdb

    engine = ShardedTsdb(
        shards, retention_ns=retention_ns, block_policy=block_policy
    )
    report = ShardedRecoveryReport()
    for index in range(shards):
        tsdb, shard_report = recover(
            disk,
            directory=shard_directory(directory, index),
            retention_ns=retention_ns,
            crash_report=crash_report,
            plan=plan,
            block_policy=block_policy,
        )
        if isinstance(tsdb, Tsdb):
            engine.adopt_shard(index, tsdb)
        else:
            raise WalError(
                f"shard {index} checkpoint restored a sharded engine; "
                f"per-shard checkpoints must be single-store snapshots"
            )
        report.shards.append(shard_report)
    return engine, report
