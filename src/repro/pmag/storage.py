"""Sharded storage engine: N independent :class:`Tsdb` shards behind one
:class:`~repro.pmag.tsdb.StorageEngine`.

Each series lives on exactly one shard, chosen by a *stable* fingerprint
of its label set (CRC32 over the canonical sorted pairs — Python's own
``hash`` is salted per process and would scatter series differently on
every run, breaking deterministic replay and crash recovery).  Ingest
touches one shard; selects fan out to all shards and merge the per-shard
results — each already sorted by ``labels.items()`` — back into the
monolith's wire shape, so the query engine, rules and dashboards cannot
tell the difference (the equivalence property tests pin this down
byte-for-byte).

Durability attaches per shard: one WAL directory per shard, replayed
independently on recovery (see :func:`repro.pmag.wal.recover_sharded`).
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from heapq import merge as heap_merge
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import TsdbError
from repro.pmag.blocks import BlockPolicy, SeriesRollup, StorageStats
from repro.pmag.chunks import ChunkedSeries
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL, Sample, Series
from repro.pmag.tsdb import StorageEngine, Tsdb


def series_fingerprint(labels: Labels) -> int:
    """Stable 32-bit fingerprint of a label set.

    CRC32 over the canonical sorted (name, value) pairs with unit/record
    separators, so ``{"a": "b,c"}`` and ``{"a": "b", "c": ""}`` cannot
    collide structurally.  Identical across processes and platforms —
    the property shard routing, WAL recovery and archive restore all
    lean on.
    """
    digest = 0
    for name, value in labels.items():
        digest = zlib.crc32(name.encode("utf-8"), digest)
        digest = zlib.crc32(b"\x1f", digest)
        digest = zlib.crc32(value.encode("utf-8"), digest)
        digest = zlib.crc32(b"\x1e", digest)
    return digest


def shard_for(labels: Labels, shards: int) -> int:
    """The shard index a series routes to."""
    return series_fingerprint(labels) % shards


_T = TypeVar("_T")

#: Process-wide shard executors, one per worker count.  Shared across
#: engines so tests and deployments that build many engines do not leak
#: a thread pool each; pools live for the process.
_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}


def _shared_executor(workers: int) -> ThreadPoolExecutor:
    pool = _EXECUTORS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="teemon-shard"
        )
        _EXECUTORS[workers] = pool
    return pool


def build_storage_engine(
    shards: int,
    retention_ns: Optional[int] = None,
    block_policy: Optional[BlockPolicy] = None,
    executor_workers: int = 0,
) -> StorageEngine:
    """Build the engine a config asks for.

    One shard returns a plain :class:`Tsdb` — not a one-shard
    :class:`ShardedTsdb` — so default deployments take the exact code
    path (and produce the exact bytes) they did before sharding existed.
    ``executor_workers`` > 0 opts a sharded engine into concurrent
    fan-out evaluation; it is ignored on the single-shard path.
    """
    if shards == 1:
        return Tsdb(retention_ns=retention_ns, block_policy=block_policy)
    return ShardedTsdb(
        shards,
        retention_ns=retention_ns,
        block_policy=block_policy,
        executor_workers=executor_workers,
    )


def _labels_key(entry):
    return entry[0].items()


def _series_key(series: Series):
    return series.labels.items()


class ShardedTsdb(StorageEngine):
    """Routes each series to one of N :class:`Tsdb` shards.

    Writes are single-shard; reads fan out and merge.  Per-shard
    postings stay small, retention/compaction parallelise naturally (in
    this simulated kernel: shard loops), and every shard can carry its
    own WAL so recovery replays them independently.
    """

    def __init__(
        self,
        shards: int,
        retention_ns: Optional[int] = None,
        block_policy: Optional[BlockPolicy] = None,
        executor_workers: int = 0,
    ) -> None:
        if shards < 1:
            raise TsdbError(f"shard count must be >= 1: {shards}")
        self._shards: List[Tsdb] = [
            Tsdb(retention_ns=retention_ns, block_policy=block_policy)
            for _ in range(shards)
        ]
        self.block_policy = block_policy
        self.stats = StorageStats()
        #: Route cache: label set -> shard *index* (not shard object, so
        #: :meth:`adopt_shard` replacing a shard keeps it valid).  The
        #: mapping is a pure function of the labels and the shard count,
        #: so entries never go stale — the cache only grows, bounded by
        #: the distinct label sets seen, like the postings index.
        self._fingerprints: Dict[Labels, int] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self.configure_executor(executor_workers)

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    def shard(self, index: int) -> Tsdb:
        """Direct access to one shard (checkpoints, tests, telemetry)."""
        return self._shards[index]

    def configure_executor(self, workers: int) -> None:
        """Opt fan-out reads into a shared thread pool (0 = sequential).

        Results are always reassembled in fixed shard order, so output
        is byte-identical either way; the knob only changes *where* the
        per-shard work runs.
        """
        if workers < 0:
            raise TsdbError(f"executor workers cannot be negative: {workers}")
        self._executor = _shared_executor(workers) if workers else None

    def map_shards(self, fn: Callable[[Tsdb], _T]) -> List[_T]:
        """Apply ``fn`` to every shard, results in fixed shard order.

        The fan-out primitive behind selects and aggregate pushdown:
        sequential by default, concurrent when an executor is configured
        (``executor.map`` preserves input order, so callers cannot tell
        the difference).
        """
        executor = self._executor
        if executor is None:
            return [fn(shard) for shard in self._shards]
        return list(executor.map(fn, self._shards))

    def _route(self, labels: Labels) -> Tsdb:
        index = self._fingerprints.get(labels)
        if index is None:
            index = series_fingerprint(labels) % len(self._shards)
            self._fingerprints[labels] = index
        return self._shards[index]

    def adopt_shard(self, index: int, tsdb: Tsdb) -> None:
        """Replace one shard with a recovered store (WAL recovery path).

        Every series in the adopted store must fingerprint to ``index``
        under the current shard count — restoring a layout written with
        a different ``storage_shards`` would silently mis-route future
        appends, so it fails loudly instead.
        """
        shards = len(self._shards)
        for labels, _storage in tsdb.series_items():
            actual = series_fingerprint(labels) % shards
            if actual != index:
                raise TsdbError(
                    f"series {labels!r} routes to shard {actual}, not {index}: "
                    f"was this layout written with a different shard count?"
                )
        tsdb.retention_ns = self.retention_ns
        tsdb.block_policy = self.block_policy
        self._shards[index] = tsdb

    @property
    def retention_ns(self) -> Optional[int]:
        """Retention horizon, uniform across shards."""
        return self._shards[0].retention_ns

    @retention_ns.setter
    def retention_ns(self, value: Optional[int]) -> None:
        for shard in self._shards:
            shard.retention_ns = value

    @property
    def total_appends(self) -> int:
        """Lifetime accepted appends, summed over shards."""
        return sum(shard.total_appends for shard in self._shards)

    def attach_wal(self, wal) -> None:
        raise TsdbError(
            "a sharded engine needs one WAL per shard: use attach_wals()"
        )

    def attach_wals(self, wals: Sequence) -> None:
        """Attach one write-ahead log per shard, in shard order."""
        if len(wals) != len(self._shards):
            raise TsdbError(
                f"need {len(self._shards)} WALs, got {len(wals)}"
            )
        for shard, wal in zip(self._shards, wals):
            shard.attach_wal(wal)

    # ------------------------------------------------------------------
    # Ingest: route to one shard
    # ------------------------------------------------------------------
    def append(self, labels: Labels, time_ns: int, value: float) -> None:
        """Append one sample to the owning shard."""
        self._route(labels).append(labels, time_ns, value)

    def append_batch(
        self, entries: Sequence[Tuple[Labels, int, float]]
    ) -> List[int]:
        """Group a scrape cycle's samples by shard in one routing pass.

        Each shard then ingests its sub-batch with one
        :meth:`Tsdb.append_batch` call (amortised WAL write-through).
        Within a shard entry order is preserved, and series never span
        shards, so accept/reject outcomes match per-sample appends
        exactly; rejected positions are mapped back to indices into
        ``entries``.
        """
        shards = self._shards
        count = len(shards)
        cache = self._fingerprints
        buckets: List[Optional[list]] = [None] * count
        for entry in entries:
            labels = entry[0]
            index = cache.get(labels)
            if index is None:
                index = series_fingerprint(labels) % count
                cache[labels] = index
            bucket = buckets[index]
            if bucket is None:
                buckets[index] = bucket = []
            bucket.append(entry)
        sub_rejected: Dict[int, set] = {}
        for index, bucket in enumerate(buckets):
            if bucket:
                bad = shards[index].append_batch(bucket)
                if bad:
                    sub_rejected[index] = set(bad)
        if not sub_rejected:
            return []
        # Rare path: map each shard's sub-batch positions back to the
        # caller's indices by replaying the routing order.
        rejected: List[int] = []
        positions = [0] * count
        for i, entry in enumerate(entries):
            index = cache[entry[0]]
            position = positions[index]
            positions[index] = position + 1
            bad = sub_rejected.get(index)
            if bad and position in bad:
                rejected.append(i)
        return rejected

    def append_fingerprinted(
        self,
        blocks: Sequence[Tuple[int, Labels, Sequence[Tuple[int, float]]]],
    ) -> int:
        """Ingest pre-fingerprinted per-series sample blocks.

        The remote-write receiver's shard-routed path: a v3 frame
        arrives already grouped by series and stamped with the same
        CRC32 fingerprint this engine routes on, so whole blocks are
        bucketed by ``fingerprint % shards`` without re-hashing any
        label set — and the per-shard sub-batches are dispatched
        through the shard executor when one is configured (shards are
        independent, each with its own WAL, so parallel ingest is
        deterministic).  A series' first-seen fingerprint is verified
        against :func:`series_fingerprint` before it enters the route
        cache — a frame cannot mis-route a series for every later
        frame.  Returns the number of rejected (duplicate / too-old)
        samples; per-series accept/reject outcomes are identical to
        the flat :meth:`append_batch` path, so dedup ledgers reconcile
        regardless of the engine layout.
        """
        shards = self._shards
        count = len(shards)
        cache = self._fingerprints
        buckets: List[Optional[list]] = [None] * count
        for fingerprint, labels, samples in blocks:
            index = cache.get(labels)
            if index is None:
                actual = series_fingerprint(labels)
                if actual != fingerprint:
                    raise TsdbError(
                        f"block fingerprint {fingerprint} does not match "
                        f"series {dict(labels.items())!r} ({actual})"
                    )
                index = actual % count
                cache[labels] = index
            elif fingerprint % count != index:
                raise TsdbError(
                    f"block fingerprint {fingerprint} routes series "
                    f"{dict(labels.items())!r} away from its shard {index}"
                )
            bucket = buckets[index]
            if bucket is None:
                buckets[index] = bucket = []
            for time_ns, value in samples:
                bucket.append((labels, time_ns, value))
        jobs = [(i, b) for i, b in enumerate(buckets) if b]
        if not jobs:
            return 0
        executor = self._executor
        if executor is None or len(jobs) == 1:
            return sum(
                len(shards[index].append_batch(bucket))
                for index, bucket in jobs
            )
        rejected = executor.map(
            lambda job: len(shards[job[0]].append_batch(job[1])), jobs
        )
        return sum(rejected)

    def install_series(self, labels: Labels, storage: ChunkedSeries) -> None:
        """Install a fully-built series on its owning shard."""
        self._route(labels).install_series(labels, storage)

    # ------------------------------------------------------------------
    # Selection: fan out, merge sorted
    # ------------------------------------------------------------------
    def select(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Series]:
        """Fan-out select merged back into one sorted result."""
        parts = self.map_shards(lambda s: s.select(matchers, start_ns, end_ns))
        return list(heap_merge(*parts, key=_series_key))

    def select_arrays(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Tuple[Labels, List[int], List[float]]]:
        """Fan-out array select merged back into one sorted result."""
        parts = self.map_shards(
            lambda s: s.select_arrays(matchers, start_ns, end_ns)
        )
        return list(heap_merge(*parts, key=_labels_key))

    def select_rollups(
        self, matchers: Sequence[Matcher], start_ns: int, end_ns: int
    ) -> List[Tuple[Labels, SeriesRollup]]:
        """Fan-out rollup select merged back into one sorted result."""
        parts = self.map_shards(
            lambda s: s.select_rollups(matchers, start_ns, end_ns)
        )
        return list(heap_merge(*parts, key=_labels_key))

    def latest(self, metric: str, **label_filters: str) -> Optional[Sample]:
        """Newest matching sample across every shard.

        Applies the monolith's tie-break (smallest ``labels.items()``)
        across shard winners, so the answer is shard-layout invariant.
        """
        best: Optional[Sample] = None
        best_key = None
        for shard in self._shards:
            key, sample = shard.latest_keyed(metric, **label_filters)
            if sample is None:
                continue
            if (best is None or sample.time_ns > best.time_ns
                    or (sample.time_ns == best.time_ns and key < best_key)):
                best = sample
                best_key = key
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def series_count(self) -> int:
        """Distinct series, summed over shards (each lives on exactly one)."""
        return sum(shard.series_count() for shard in self._shards)

    def sample_count(self) -> int:
        """Total raw samples, summed over shards."""
        return sum(shard.sample_count() for shard in self._shards)

    def label_values(self, label_name: str) -> List[str]:
        """Distinct label values across all shards."""
        values = set()
        for shard in self._shards:
            values.update(shard.label_values(label_name))
        return sorted(values)

    def memory_bytes(self) -> int:
        """Footprint, summed over shards."""
        return sum(shard.memory_bytes() for shard in self._shards)

    def series_items(self) -> Iterable[Tuple[Labels, ChunkedSeries]]:
        """All series, shard 0 first — the v3 archive layout order."""
        for shard in self._shards:
            yield from shard.series_items()

    def has_rollups(self) -> bool:
        """Whether any shard carries downsampled buckets."""
        return any(shard.has_rollups() for shard in self._shards)

    def storage_stats(self) -> dict:
        """Per-shard layout plus summed compaction counters.

        ``downsampled_reads_total`` lives on this engine's own ``stats``
        (the query engine talks to the façade, not to shards), so it is
        merged in alongside the per-shard compaction counters.
        """
        merged = StorageStats()
        for shard in self._shards:
            merged.merge(shard.stats)
        merged.merge(self.stats)
        return {
            "shards": len(self._shards),
            "per_shard": [shard.shard_stats() for shard in self._shards],
            "compactions_total": merged.compactions_total,
            "samples_compacted_total": merged.samples_compacted_total,
            "bytes_saved_total": merged.bytes_saved_total,
            "downsampled_reads_total": merged.downsampled_reads_total,
            "pushdown_reads_total": merged.pushdown_reads_total,
        }

    # ------------------------------------------------------------------
    # Maintenance: every shard
    # ------------------------------------------------------------------
    def delete_series(self, matchers: Sequence[Matcher]) -> int:
        """Drop matching series on every shard; returns series deleted."""
        return sum(shard.delete_series(matchers) for shard in self._shards)

    def enforce_retention(self, now_ns: int) -> int:
        """Apply retention on every shard; returns samples dropped."""
        return sum(shard.enforce_retention(now_ns) for shard in self._shards)

    def compact(self, now_ns: int) -> int:
        """Compact every shard; returns samples folded."""
        return sum(shard.compact(now_ns) for shard in self._shards)
