"""Recording and alerting rules: precomputed series plus alert evaluation.

Prometheus-style recording rules evaluate an expression on a cadence and
write the result back into the TSDB under a new metric name.  TEEMon-style
deployments use them for the expensive dashboard queries (per-process
syscall rates, eviction rates) so panels read cheap precomputed series.

Rule-group semantics follow Prometheus: rules in a group evaluate in
order at the same instant, so later rules can consume earlier rules'
output from the *previous* cycle (same-cycle reads see the freshly written
samples because evaluation time equals write time).  Groups may mix
recording rules with :class:`~repro.pmag.alerting.rules.AlertingRule`
instances — alerting rules evaluate on the same cadence and feed their
state-machine events to the group's ``alert_sink`` (the notification
router).

Incremental materialization
---------------------------
The classic evaluator re-runs every rule's full expression each cycle.
With ``incremental=True`` each rule keeps a *cursor* — the virtual
timestamp of its last evaluation — and evaluates only what is new since.
Two regimes:

* **Cadence mode** (``materialize_lookback_ns`` unset, the deployment
  default): a rule that missed at most one interval evaluates exactly as
  the classic path does (one instant at *now*, so the output stream is
  seed-identical); after a longer outage the missed instants are
  backfilled on the rule's own grid, up to ``max_backfill_steps`` of
  them, and anything older is abandoned (counted in
  ``gap_fallbacks_total``).
* **Materializing mode** (``materialize_lookback_ns`` set): the rule
  maintains a rolling panel of the last ``lookback/interval`` *aligned*
  grid steps.  Each cycle evaluates only the grid steps past the cursor;
  a gap wider than ``max_backfill_steps`` (clamped to the panel size)
  falls back to re-evaluating the whole panel.  Because every write
  lands on the shared grid and duplicate timestamps are first-write-wins,
  the incremental stream is *bit-identical* to re-evaluating the full
  panel every cycle — the property suite proves this for arbitrary
  schedules and gap patterns, and ``bench_rules.py`` gates the speedup.

Cursors are persisted as WAL cursor frames (kind 2) when a WAL is
attached, so a kill/resurrect resumes materialization where it stopped
instead of re-recording the panel — and a lost cursor only costs one
full re-evaluation, never data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TsdbError
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.trace import NOOP_TRACER

DEFAULT_RULE_INTERVAL_NS = 15 * NANOS_PER_SEC

#: Modelled cost of one rule-step evaluation and of each recorded sample
#: (virtual time; must be deterministic because the self-exporter scrapes
#: the resulting ``teemon_rule_eval_seconds`` into the TSDB).
RULE_EVAL_BASE_NS = 100_000
RULE_EVAL_NS_PER_SAMPLE = 1_000

#: Default bound on how many missed grid steps one cycle will backfill.
DEFAULT_MAX_BACKFILL_STEPS = 8


@dataclass(frozen=True)
class RecordingRule:
    """One rule: evaluate ``expr`` and record it as ``record``."""

    record: str
    expr: str
    static_labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.record or ":" not in self.record:
            # Prometheus convention: recorded names carry a level:metric:op
            # shape; require at least one colon to keep them distinguishable
            # from scraped series.
            raise TsdbError(
                f"recording rule name should contain ':': {self.record!r}"
            )


def is_recorded_output(name: str) -> bool:
    """Whether a metric name is a recording-rule output.

    The Prometheus ``level:metric:op`` naming convention (enforced at
    :class:`RecordingRule` construction) makes this a pure name test —
    which is what lets the remote-write aggregate pushdown decide
    ship/skip per series without consulting the rule set.
    """
    return ":" in name


def _rule_key(rule) -> str:
    """Group-unique identity for recording and alerting rules alike."""
    if isinstance(rule, RecordingRule):
        return rule.record
    return f"alert:{rule.name}"


class RuleGroup:
    """An ordered set of rules evaluated together on one cadence.

    ``rules`` may mix :class:`RecordingRule` with alerting rules (any
    object exposing ``name``/``expr`` and an
    ``evaluate(engine, tsdb, now_ns) -> events`` method); alerting
    events go to :attr:`alert_sink` when one is attached.
    """

    def __init__(
        self,
        name: str,
        rules: Sequence[object],
        interval_ns: int = DEFAULT_RULE_INTERVAL_NS,
        materialize_lookback_ns: Optional[int] = None,
        max_backfill_steps: int = DEFAULT_MAX_BACKFILL_STEPS,
    ) -> None:
        if not name:
            raise TsdbError("rule group needs a name")
        if interval_ns <= 0:
            raise TsdbError("rule interval must be positive")
        if max_backfill_steps < 1:
            raise TsdbError(
                f"max_backfill_steps must be >= 1: {max_backfill_steps}"
            )
        if (materialize_lookback_ns is not None
                and materialize_lookback_ns < interval_ns):
            raise TsdbError(
                "materialize lookback must cover at least one interval"
            )
        seen = set()
        for rule in rules:
            key = _rule_key(rule)
            if key in seen:
                raise TsdbError(f"duplicate rule in group: {key}")
            seen.add(key)
        self.name = name
        self.rules = list(rules)
        self.interval_ns = interval_ns
        self.materialize_lookback_ns = materialize_lookback_ns
        self.max_backfill_steps = max_backfill_steps
        self.evaluations = 0
        self.last_error: Optional[str] = None
        #: Per-rule materialization cursor: virtual ns of the last
        #: evaluated instant (grid-aligned in materializing mode).
        self.cursors: Dict[str, int] = {}
        #: Static-label collisions observed (the rule still overwrites —
        #: pinned behaviour — but the overwrite is now visible).
        self.conflicts_total = 0
        #: Missed grid steps recovered by incremental backfill.
        self.backfilled_steps_total = 0
        #: Gaps too wide to backfill (fell back to full evaluation).
        self.gap_fallbacks_total = 0
        #: Modelled evaluation time (deterministic, exported as
        #: ``teemon_rule_eval_seconds``).
        self.eval_modelled_ns = 0
        #: Receives ``(events, now_ns)`` from alerting rules.
        self.alert_sink: Optional[Callable] = None
        #: WAL (or sharded WAL) cursor frames are persisted through.
        self.wal = None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _plan(self, engine: QueryEngine, key: str, expr: str):
        # The engine's LRU plan cache makes the repeat parse a lookup,
        # and going through it keeps the traced ``query.parse`` span
        # (with its plan_cache_hit attribute) on every rule evaluation.
        return engine.plan(expr)

    def _record_vector(
        self, rule: RecordingRule, vector, tsdb, time_ns: int
    ) -> int:
        """Write one instant's output; returns samples recorded."""
        written = 0
        seen_out = set()
        for labels, value in vector:
            mapping = dict(labels.items())
            mapping[METRIC_NAME_LABEL] = rule.record
            for key, val in rule.static_labels.items():
                if key in mapping and mapping[key] != val:
                    # A static label stomping a series label silently
                    # merges distinct input series under one output
                    # label set.  The overwrite is pinned behaviour
                    # (dashboards rely on static labels winning), but it
                    # must be *visible*: count it.
                    self.conflicts_total += 1
                mapping[key] = val
            out = Labels(mapping)
            if out in seen_out:
                # Two input series collapsed onto one output label set;
                # first wins deterministically (vector order is
                # label-sorted), the collision is counted.
                self.conflicts_total += 1
                continue
            seen_out.add(out)
            try:
                tsdb.append(out, time_ns, value)
                written += 1
            except TsdbError:
                pass  # duplicate timestamp (first write wins)
        return written

    def _recording_steps(self, key: str, now_ns: int) -> List[int]:
        """The instants one incremental cycle evaluates for a rule."""
        interval = self.interval_ns
        cursor = self.cursors.get(key)
        if self.materialize_lookback_ns is None:
            # Cadence mode: seed-identical when no interval was missed.
            if cursor is None or now_ns <= cursor:
                return [now_ns]
            missed = (now_ns - cursor) // interval
            if missed <= 1:
                return [now_ns]
            panel = min(missed, self.max_backfill_steps)
            if missed > self.max_backfill_steps:
                self.gap_fallbacks_total += 1
            self.backfilled_steps_total += panel - 1
            return [
                now_ns - (panel - 1 - index) * interval
                for index in range(panel)
            ]
        # Materializing mode: everything lands on the aligned grid.
        aligned_now = (now_ns // interval) * interval
        panel_steps = self.materialize_lookback_ns // interval
        effective_max = min(self.max_backfill_steps, panel_steps)
        if cursor is None or (aligned_now - cursor) // interval > effective_max:
            if cursor is not None:
                self.gap_fallbacks_total += 1
            start = aligned_now - (panel_steps - 1) * interval
            return [
                start + index * interval for index in range(panel_steps)
                if start + index * interval >= 0
            ]
        count = (aligned_now - cursor) // interval
        if count > 1:
            self.backfilled_steps_total += count - 1
        return [
            cursor + (index + 1) * interval for index in range(count)
        ]

    def evaluate(
        self,
        engine: QueryEngine,
        tsdb: Tsdb,
        now_ns: int,
        tracer=None,
        incremental: bool = False,
    ) -> int:
        """Evaluate every rule at ``now_ns``; returns samples recorded.

        A failing rule is recorded in :attr:`last_error` and skipped — one
        bad rule must not silence the rest of the group.  With a tracer,
        the group evaluates under a ``rules.group`` span with one
        ``rules.rule`` child per rule (the engine's ``query.*`` spans nest
        inside it, so a rule trace shows its plan-cache outcome).

        With ``incremental=False`` recording rules evaluate exactly as
        the seed path did: one instant at ``now_ns``, no cursors.
        """
        tracer = tracer if tracer is not None else NOOP_TRACER
        recorded = 0
        self.evaluations += 1
        with tracer.span("rules.group", {
            "group": self.name, "rules": len(self.rules),
        }) as group_span:
            for rule in self.rules:
                if isinstance(rule, RecordingRule):
                    recorded += self._evaluate_recording(
                        engine, tsdb, rule, now_ns, tracer, incremental
                    )
                else:
                    self._evaluate_alerting(
                        engine, tsdb, rule, now_ns, tracer
                    )
            group_span.set_attribute("recorded", recorded)
        return recorded

    def _evaluate_recording(
        self, engine, tsdb, rule: RecordingRule, now_ns: int,
        tracer, incremental: bool,
    ) -> int:
        key = rule.record
        with tracer.span("rules.rule", {
            "record": key, "expr": rule.expr,
        }) as rule_span:
            try:
                plan = self._plan(engine, key, rule.expr)
            except Exception as exc:  # noqa: BLE001 - rule-level fault barrier
                self.last_error = f"{key}: {exc}"
                rule_span.set_status("error")
                rule_span.add_event("rules.error", message=str(exc))
                return 0
            if incremental:
                steps = self._recording_steps(key, now_ns)
            else:
                steps = [now_ns]
            written = 0
            for step_ns in steps:
                try:
                    vector = engine.instant_plan(plan, step_ns)
                except Exception as exc:  # noqa: BLE001
                    self.last_error = f"{key}: {exc}"
                    rule_span.set_status("error")
                    rule_span.add_event("rules.error", message=str(exc))
                    break
                count = self._record_vector(rule, vector, tsdb, step_ns)
                written += count
                self.eval_modelled_ns += (
                    RULE_EVAL_BASE_NS + RULE_EVAL_NS_PER_SAMPLE * count
                )
            if incremental and steps:
                cursor = steps[-1]
                self.cursors[key] = cursor
                if self.wal is not None:
                    self.wal.append_cursor(f"{self.name}/{key}", cursor)
            rule_span.set_attribute("recorded", written)
        return written

    def _evaluate_alerting(
        self, engine, tsdb, rule, now_ns: int, tracer
    ) -> None:
        with tracer.span("rules.rule", {
            "alert": rule.name, "expr": rule.expr,
        }) as rule_span:
            try:
                events = rule.evaluate(engine, tsdb, now_ns)
            except Exception as exc:  # noqa: BLE001 - rule-level fault barrier
                self.last_error = f"alert:{rule.name}: {exc}"
                rule_span.set_status("error")
                rule_span.add_event("rules.error", message=str(exc))
                return
            self.eval_modelled_ns += (
                RULE_EVAL_BASE_NS
                + RULE_EVAL_NS_PER_SAMPLE * len(rule.active())
            )
            rule_span.set_attribute("events", len(events))
            if events and self.alert_sink is not None:
                self.alert_sink(events, now_ns)

    def evaluate_full(
        self, engine: QueryEngine, tsdb: Tsdb, now_ns: int
    ) -> int:
        """Reference materialization: re-evaluate the whole panel.

        The equivalence oracle for the property suite and the slow
        baseline for ``bench_rules.py``: every cycle re-evaluates every
        grid step of the rolling panel, relying on duplicate rejection
        to keep already-recorded steps unchanged.  Requires
        ``materialize_lookback_ns``.
        """
        if self.materialize_lookback_ns is None:
            raise TsdbError("evaluate_full needs materialize_lookback_ns")
        interval = self.interval_ns
        aligned_now = (now_ns // interval) * interval
        panel_steps = self.materialize_lookback_ns // interval
        start = aligned_now - (panel_steps - 1) * interval
        recorded = 0
        self.evaluations += 1
        for rule in self.rules:
            if not isinstance(rule, RecordingRule):
                continue
            plan = self._plan(engine, rule.record, rule.expr)
            for index in range(panel_steps):
                step_ns = start + index * interval
                if step_ns < 0:
                    continue
                vector = engine.instant_plan(plan, step_ns)
                count = self._record_vector(rule, vector, tsdb, step_ns)
                recorded += count
                self.eval_modelled_ns += (
                    RULE_EVAL_BASE_NS + RULE_EVAL_NS_PER_SAMPLE * count
                )
        return recorded


class RuleEvaluator:
    """Runs rule groups on the virtual clock."""

    def __init__(
        self,
        clock: VirtualClock,
        engine: QueryEngine,
        tsdb: Tsdb,
        tracer=None,
        incremental: bool = False,
        wal=None,
        alert_sink: Optional[Callable] = None,
        max_backfill_steps: int = DEFAULT_MAX_BACKFILL_STEPS,
    ) -> None:
        self._clock = clock
        self._engine = engine
        self._tsdb = tsdb
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._groups: List[RuleGroup] = []
        self._timers = {}
        self._running = False
        self.incremental = incremental
        self.wal = wal
        self.alert_sink = alert_sink
        self.max_backfill_steps = max_backfill_steps
        self.samples_recorded = 0

    def add_group(self, group: RuleGroup) -> None:
        """Register a group; scheduled when the evaluator starts.

        The evaluator's WAL and alert sink are injected into the group
        unless the group already carries its own.
        """
        if any(g.name == group.name for g in self._groups):
            raise TsdbError(f"rule group already registered: {group.name}")
        if group.wal is None:
            group.wal = self.wal
        if group.alert_sink is None:
            group.alert_sink = self.alert_sink
        if group.max_backfill_steps == DEFAULT_MAX_BACKFILL_STEPS:
            group.max_backfill_steps = self.max_backfill_steps
        self._groups.append(group)
        if self._running:
            self._schedule(group)

    def groups(self) -> List[RuleGroup]:
        """Registered groups."""
        return list(self._groups)

    def seed_cursors(self, cursors: Dict[str, int]) -> None:
        """Restore materialization cursors recovered from the WAL.

        Keys are ``"{group}/{record}"`` as written by the groups; keys
        naming unknown groups or rules are ignored (a rule removed from
        the config must not wedge recovery).
        """
        for group in self._groups:
            prefix = f"{group.name}/"
            for key, cursor_ns in cursors.items():
                if not key.startswith(prefix):
                    continue
                record = key[len(prefix):]
                if any(
                    isinstance(rule, RecordingRule) and rule.record == record
                    for rule in group.rules
                ):
                    group.cursors[record] = cursor_ns

    def evaluate_all_once(self) -> int:
        """Evaluate every group now (manual trigger)."""
        now = self._clock.now_ns
        return sum(
            group.evaluate(
                self._engine, self._tsdb, now, tracer=self._tracer,
                incremental=self.incremental,
            )
            for group in self._groups
        )

    def stats(self) -> Dict[str, object]:
        """Aggregate rule statistics for the self-exporter."""
        return {
            "eval_seconds": sum(
                g.eval_modelled_ns for g in self._groups
            ) / NANOS_PER_SEC,
            "conflicts_total": sum(g.conflicts_total for g in self._groups),
            "backfilled_steps_total": sum(
                g.backfilled_steps_total for g in self._groups
            ),
            "gap_fallbacks_total": sum(
                g.gap_fallbacks_total for g in self._groups
            ),
            "samples_recorded": self.samples_recorded,
        }

    def start(self) -> None:
        """Begin periodic evaluation."""
        if self._running:
            raise TsdbError("rule evaluator already running")
        self._running = True
        for group in self._groups:
            self._schedule(group)

    def stop(self) -> None:
        """Stop periodic evaluation."""
        self._running = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def _schedule(self, group: RuleGroup) -> None:
        if not self._running:
            return

        def tick() -> None:
            if not self._running:
                return
            self.samples_recorded += group.evaluate(
                self._engine, self._tsdb, self._clock.now_ns,
                tracer=self._tracer, incremental=self.incremental,
            )
            self._timers[group.name] = self._clock.call_later(
                group.interval_ns, tick
            )

        self._timers[group.name] = self._clock.call_later(group.interval_ns, tick)
