"""Recording rules: precomputed series.

Prometheus-style recording rules evaluate an expression on a cadence and
write the result back into the TSDB under a new metric name.  TEEMon-style
deployments use them for the expensive dashboard queries (per-process
syscall rates, eviction rates) so panels read cheap precomputed series.

Rule-group semantics follow Prometheus: rules in a group evaluate in
order at the same instant, so later rules can consume earlier rules'
output from the *previous* cycle (same-cycle reads see the freshly written
samples because evaluation time equals write time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import TsdbError
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.trace import NOOP_TRACER

DEFAULT_RULE_INTERVAL_NS = 15 * NANOS_PER_SEC


@dataclass(frozen=True)
class RecordingRule:
    """One rule: evaluate ``expr`` and record it as ``record``."""

    record: str
    expr: str
    static_labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.record or ":" not in self.record:
            # Prometheus convention: recorded names carry a level:metric:op
            # shape; require at least one colon to keep them distinguishable
            # from scraped series.
            raise TsdbError(
                f"recording rule name should contain ':': {self.record!r}"
            )


class RuleGroup:
    """An ordered set of rules evaluated together on one cadence."""

    def __init__(
        self,
        name: str,
        rules: Sequence[RecordingRule],
        interval_ns: int = DEFAULT_RULE_INTERVAL_NS,
    ) -> None:
        if not name:
            raise TsdbError("rule group needs a name")
        if interval_ns <= 0:
            raise TsdbError("rule interval must be positive")
        seen = set()
        for rule in rules:
            if rule.record in seen:
                raise TsdbError(f"duplicate rule in group: {rule.record}")
            seen.add(rule.record)
        self.name = name
        self.rules = list(rules)
        self.interval_ns = interval_ns
        self.evaluations = 0
        self.last_error: Optional[str] = None

    def evaluate(
        self, engine: QueryEngine, tsdb: Tsdb, now_ns: int, tracer=None
    ) -> int:
        """Evaluate every rule at ``now_ns``; returns samples recorded.

        A failing rule is recorded in :attr:`last_error` and skipped — one
        bad rule must not silence the rest of the group.  With a tracer,
        the group evaluates under a ``rules.group`` span with one
        ``rules.rule`` child per rule (the engine's ``query.*`` spans nest
        inside it, so a rule trace shows its plan-cache outcome).
        """
        tracer = tracer if tracer is not None else NOOP_TRACER
        recorded = 0
        self.evaluations += 1
        with tracer.span("rules.group", {
            "group": self.name, "rules": len(self.rules),
        }) as group_span:
            for rule in self.rules:
                with tracer.span("rules.rule", {
                    "record": rule.record, "expr": rule.expr,
                }) as rule_span:
                    try:
                        vector = engine.instant(rule.expr, now_ns)
                    except Exception as exc:  # noqa: BLE001 - rule-level fault barrier
                        self.last_error = f"{rule.record}: {exc}"
                        rule_span.set_status("error")
                        rule_span.add_event("rules.error", message=str(exc))
                        continue
                    written = 0
                    for labels, value in vector:
                        mapping = dict(labels.items())
                        mapping[METRIC_NAME_LABEL] = rule.record
                        mapping.update(rule.static_labels)
                        try:
                            tsdb.append(Labels(mapping), now_ns, value)
                            written += 1
                        except TsdbError:
                            pass  # duplicate timestamp (manual + scheduled eval)
                    recorded += written
                    rule_span.set_attribute("recorded", written)
            group_span.set_attribute("recorded", recorded)
        return recorded


class RuleEvaluator:
    """Runs rule groups on the virtual clock."""

    def __init__(
        self,
        clock: VirtualClock,
        engine: QueryEngine,
        tsdb: Tsdb,
        tracer=None,
    ) -> None:
        self._clock = clock
        self._engine = engine
        self._tsdb = tsdb
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._groups: List[RuleGroup] = []
        self._timers = {}
        self._running = False
        self.samples_recorded = 0

    def add_group(self, group: RuleGroup) -> None:
        """Register a group; scheduled when the evaluator starts."""
        if any(g.name == group.name for g in self._groups):
            raise TsdbError(f"rule group already registered: {group.name}")
        self._groups.append(group)
        if self._running:
            self._schedule(group)

    def groups(self) -> List[RuleGroup]:
        """Registered groups."""
        return list(self._groups)

    def evaluate_all_once(self) -> int:
        """Evaluate every group now (manual trigger)."""
        now = self._clock.now_ns
        return sum(
            group.evaluate(self._engine, self._tsdb, now, tracer=self._tracer)
            for group in self._groups
        )

    def start(self) -> None:
        """Begin periodic evaluation."""
        if self._running:
            raise TsdbError("rule evaluator already running")
        self._running = True
        for group in self._groups:
            self._schedule(group)

    def stop(self) -> None:
        """Stop periodic evaluation."""
        self._running = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def _schedule(self, group: RuleGroup) -> None:
        if not self._running:
            return

        def tick() -> None:
            if not self._running:
                return
            self.samples_recorded += group.evaluate(
                self._engine, self._tsdb, self._clock.now_ns,
                tracer=self._tracer,
            )
            self._timers[group.name] = self._clock.call_later(
                group.interval_ns, tick
            )

        self._timers[group.name] = self._clock.call_later(group.interval_ns, tick)
