"""TSDB snapshot and restore — the archival functionality.

The paper's §2.1 distinguishes TEEMon from SGX-TOP partly by "archival
functionality": monitoring data survives and can be inspected after the
fact.  This module serialises a TSDB to a compact binary snapshot (series
labels + delta-encoded chunks, the on-disk format of
:mod:`repro.pmag.chunks`) and restores it into a fresh database —
supporting backup, transfer between deployments, and post-mortem analysis
of a finished run.

Format (version 1)::

    header:  magic "TMSNAP" | u16 version | u32 series count
    series:  u32 label count | (u16 len + utf8 key | u16 len + utf8 value)*
             u32 chunk count | (u32 len | chunk bytes)*
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from repro.errors import TsdbError
from repro.pmag.chunks import Chunk
from repro.pmag.model import Labels
from repro.pmag.tsdb import Tsdb

MAGIC = b"TMSNAP"
VERSION = 1


def _pack_text(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise TsdbError(f"label component too long: {len(raw)} bytes")
    return struct.pack("<H", len(raw)) + raw


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise TsdbError("truncated snapshot")
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._offset >= len(self._data)


def snapshot(tsdb: Tsdb) -> bytes:
    """Serialise every series of ``tsdb`` to bytes."""
    pieces: List[bytes] = [
        MAGIC, struct.pack("<HI", VERSION, len(tsdb._series))  # noqa: SLF001
    ]
    for labels, storage in tsdb._series.items():  # noqa: SLF001 - archival is a DB feature
        items = labels.items()
        pieces.append(struct.pack("<I", len(items)))
        for key, value in items:
            pieces.append(_pack_text(key))
            pieces.append(_pack_text(value))
        chunks = storage._chunks  # noqa: SLF001
        pieces.append(struct.pack("<I", len(chunks)))
        for chunk in chunks:
            encoded = chunk.encode()
            pieces.append(struct.pack("<I", len(encoded)))
            pieces.append(encoded)
    return b"".join(pieces)


def restore(data: bytes) -> Tsdb:
    """Rebuild a TSDB from :func:`snapshot` output."""
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise TsdbError("not a TEEMon snapshot (bad magic)")
    version = reader.u16()
    if version != VERSION:
        raise TsdbError(f"unsupported snapshot version: {version}")
    series_count = reader.u32()
    tsdb = Tsdb()
    for _ in range(series_count):
        label_count = reader.u32()
        mapping = {}
        for _ in range(label_count):
            key = reader.text()
            value = reader.text()
            mapping[key] = value
        labels = Labels(mapping)
        chunk_count = reader.u32()
        for _ in range(chunk_count):
            length = reader.u32()
            chunk = Chunk.decode(reader.take(length))
            for sample in chunk.samples():
                tsdb.append(labels, sample.time_ns, sample.value)
    return tsdb


def snapshot_window(tsdb: Tsdb, start_ns: int, end_ns: int) -> bytes:
    """Snapshot only the samples inside a time window (incident export)."""
    if end_ns < start_ns:
        raise TsdbError(f"bad window: {start_ns}..{end_ns}")
    trimmed = Tsdb()
    for labels, storage in tsdb._series.items():  # noqa: SLF001
        for sample in storage.window(start_ns, end_ns):
            trimmed.append(labels, sample.time_ns, sample.value)
    return snapshot(trimmed)
