"""TSDB snapshot and restore — the archival functionality.

The paper's §2.1 distinguishes TEEMon from SGX-TOP partly by "archival
functionality": monitoring data survives and can be inspected after the
fact.  This module serialises a TSDB to a compact binary snapshot (series
labels + delta-encoded chunks, the on-disk format of
:mod:`repro.pmag.chunks`) and restores it into a fresh database —
supporting backup, transfer between deployments, and post-mortem analysis
of a finished run.

Format (version 2, the single-store layout)::

    header:  magic "TMSNAP" | u16 version | u32 crc32 | u32 series count
    series:  u32 label count | (u16 len + utf8 key | u16 len + utf8 value)*
             u32 chunk count | (u32 len | chunk bytes)*

Version 3 is the sharded layout, written when snapshotting a
:class:`~repro.pmag.storage.ShardedTsdb`::

    header:  magic "TMSNAP" | u16 version=3 | u32 crc32 | u32 shard count
    shards:  (u32 body length | version-2 body)*   — one per shard, in order

The CRC32 covers every byte after the crc field itself, so a torn or
bit-flipped snapshot is detected up front instead of restoring
silently-wrong data.  Version-1 snapshots (no crc field) are still read
byte-for-byte.  :func:`restore` returns the engine shape the snapshot
recorded: a plain :class:`~repro.pmag.tsdb.Tsdb` for v1/v2 (the
single-store layout *is* "shard 0" of a one-shard world) and a
``ShardedTsdb`` with the recorded shard count for v3.

Restore adopts decoded chunks directly into each series — O(chunks), not
O(samples) — which also preserves the exact chunk boundaries the snapshot
recorded, so restored databases behave identically under chunk-granular
retention.
"""

from __future__ import annotations

import struct
import zlib
from typing import List

from repro.errors import TsdbError
from repro.pmag.chunks import Chunk, ChunkedSeries
from repro.pmag.model import Labels
from repro.pmag.tsdb import Tsdb

MAGIC = b"TMSNAP"
VERSION = 2
_V1 = 1
_V3 = 3


def _pack_text(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise TsdbError(f"label component too long: {len(raw)} bytes")
    return struct.pack("<H", len(raw)) + raw


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise TsdbError("truncated snapshot")
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._offset >= len(self._data)


def _encode_body(tsdb: Tsdb) -> bytes:
    """The series payload shared by both snapshot versions."""
    pieces: List[bytes] = [
        struct.pack("<I", len(tsdb._series))  # noqa: SLF001
    ]
    for labels, storage in tsdb._series.items():  # noqa: SLF001 - archival is a DB feature
        items = labels.items()
        pieces.append(struct.pack("<I", len(items)))
        for key, value in items:
            pieces.append(_pack_text(key))
            pieces.append(_pack_text(value))
        chunks = storage._chunks  # noqa: SLF001
        pieces.append(struct.pack("<I", len(chunks)))
        for chunk in chunks:
            encoded = chunk.encode()
            pieces.append(struct.pack("<I", len(encoded)))
            pieces.append(encoded)
    return b"".join(pieces)


def snapshot(engine) -> bytes:
    """Serialise a storage engine to bytes.

    A single-store :class:`Tsdb` writes the version-2 layout it always
    did (byte-identical for unchanged databases); a sharded engine —
    even one with a single shard — writes version 3, one version-2 body
    per shard, so the shard layout survives the round trip exactly.
    """
    if isinstance(engine, Tsdb):
        body = _encode_body(engine)
        return MAGIC + struct.pack("<HI", VERSION, zlib.crc32(body)) + body
    pieces: List[bytes] = [struct.pack("<I", engine.shard_count)]
    for index in range(engine.shard_count):
        shard_body = _encode_body(engine.shard(index))
        pieces.append(struct.pack("<I", len(shard_body)))
        pieces.append(shard_body)
    body = b"".join(pieces)
    return MAGIC + struct.pack("<HI", _V3, zlib.crc32(body)) + body


def _decode_series(reader: _Reader, tsdb: Tsdb) -> None:
    """Read one version-2 body (series count + series) into ``tsdb``."""
    series_count = reader.u32()
    for _ in range(series_count):
        label_count = reader.u32()
        mapping = {}
        for _ in range(label_count):
            key = reader.text()
            value = reader.text()
            mapping[key] = value
        labels = Labels(mapping)
        chunk_count = reader.u32()
        storage = ChunkedSeries()
        for _ in range(chunk_count):
            length = reader.u32()
            chunk = Chunk.decode(reader.take(length))
            if len(chunk):
                storage.adopt_chunk(chunk)
        if storage.sample_count:
            tsdb.install_series(labels, storage)


def restore(data: bytes):
    """Rebuild a storage engine from :func:`snapshot` output (v1/v2/v3).

    Returns a plain :class:`Tsdb` for version 1/2 snapshots and a
    :class:`~repro.pmag.storage.ShardedTsdb` with the recorded shard
    count for version 3 — each shard's series installed on the exact
    shard the snapshot recorded.
    """
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise TsdbError("not a TEEMon snapshot (bad magic)")
    version = reader.u16()
    if version in (VERSION, _V3):
        expected_crc = reader.u32()
        # The CRC covers everything after the crc field itself:
        # magic (6) | version (2) | crc (4) | covered...
        actual_crc = zlib.crc32(data[len(MAGIC) + 6:])
        if actual_crc != expected_crc:
            raise TsdbError(
                f"snapshot checksum mismatch: "
                f"crc32 {actual_crc:#010x} != recorded {expected_crc:#010x}"
            )
    elif version != _V1:
        raise TsdbError(f"unsupported snapshot version: {version}")
    if version == _V3:
        from repro.pmag.storage import ShardedTsdb

        shard_count = reader.u32()
        if shard_count < 1:
            raise TsdbError(f"bad shard count in snapshot: {shard_count}")
        engine = ShardedTsdb(shard_count)
        for index in range(shard_count):
            length = reader.u32()
            shard_reader = _Reader(reader.take(length))
            _decode_series(shard_reader, engine.shard(index))
            if not shard_reader.exhausted:
                raise TsdbError(
                    f"trailing garbage after shard {index} series"
                )
        result = engine
    else:
        tsdb = Tsdb()
        _decode_series(reader, tsdb)
        result = tsdb
    if not reader.exhausted:
        raise TsdbError(
            f"trailing garbage after last series: "
            f"{len(data) - reader._offset} bytes"  # noqa: SLF001
        )
    return result


def snapshot_window(tsdb, start_ns: int, end_ns: int) -> bytes:
    """Snapshot only the samples inside a time window (incident export).

    Chunks entirely inside the window are carried over as-is (boundary
    preservation again); only the edge chunks straddling the window are
    re-built from their surviving samples.  Works on any engine; the
    trimmed export is always a single-store (version 2) snapshot.
    """
    if end_ns < start_ns:
        raise TsdbError(f"bad window: {start_ns}..{end_ns}")
    trimmed = Tsdb()
    for labels, storage in tsdb.series_items():
        out = ChunkedSeries()
        for chunk in storage._chunks:  # noqa: SLF001
            if chunk.start_ns > end_ns or chunk.end_ns < start_ns:
                continue
            if chunk.start_ns >= start_ns and chunk.end_ns <= end_ns:
                out.adopt_chunk(chunk)
                continue
            samples = chunk.window_samples(start_ns, end_ns)
            if not samples:
                continue
            partial = Chunk(samples[0].time_ns)
            for sample in samples:
                partial.append(sample.time_ns, sample.value)
            out.adopt_chunk(partial)
        if out.sample_count:
            trimmed.install_series(labels, out)
    return snapshot(trimmed)
