"""Performance Metrics Aggregation: a Prometheus-like TSDB.

The paper's PMAG component "embeds a time-series database, a metrics
retrieval component, and an HTTP server ... stores all metrics data
samples locally and groups them into chunks for faster retrieval ...
allows for multi-dimensional data with the help of metric labels ...
supports data queries over specified time ranges and labeled dimensions"
(§4).  Each of those clauses maps to a module here:

* :mod:`repro.pmag.model` — labelled series and samples;
* :mod:`repro.pmag.chunks` — chunked, delta-encoded sample storage;
* :mod:`repro.pmag.tsdb` — the database: the :class:`StorageEngine`
  interface plus :class:`Tsdb`, its single-shard implementation;
* :mod:`repro.pmag.storage` — :class:`ShardedTsdb`, the fingerprint-
  routed multi-shard engine, and :func:`build_storage_engine`;
* :mod:`repro.pmag.scrape` — pull-based scraping with service discovery
  and target health (the ``up`` metric);
* :mod:`repro.pmag.query` — a PromQL-subset query engine with range
  selectors, ``rate``/``*_over_time`` functions, aggregation by label and
  binary arithmetic;
* :mod:`repro.pmag.remote_write` — the federation uplink: batched,
  compressed, sequence-numbered sample frames from leaf monitors to a
  global monitor with exactly-once ingest.
"""

from repro.pmag.model import Labels, Sample, Series
from repro.pmag.remote_write import RemoteWriteClient, RemoteWriteReceiver
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.storage import ShardedTsdb, build_storage_engine
from repro.pmag.tsdb import StorageEngine, Tsdb

__all__ = [
    "Labels",
    "RemoteWriteClient",
    "RemoteWriteReceiver",
    "Sample",
    "Series",
    "ShardedTsdb",
    "StorageEngine",
    "Tsdb",
    "build_storage_engine",
    "ScrapeManager",
    "ScrapeTarget",
]
