"""Pull-based metric scraping with service discovery and fault tolerance.

The paper argues for pull over push (§4): the aggregator controls ingest
rate, misbehaving services cannot flood it, and unreachable targets are
detected because the scraper doubles as a health checker.  All three
behaviours live here, hardened against the failure modes
:mod:`repro.faults` injects:

* :class:`ScrapeTarget` — one endpoint with job/instance identity;
* :class:`ScrapeManager` — scrapes every target each interval (default 5 s,
  the paper's default exporter query rate), parses the OpenMetrics body,
  appends samples to the TSDB with scrape-time labels attached, and writes
  the synthetic ``up`` series (1 healthy / 0 down) per target;
* timeout budget — a response slower than ``timeout_budget_s`` is a
  failure even if a body eventually arrived (the pull model's defence
  against hung exporters);
* retries — failed scrapes retry on the virtual clock with jittered
  exponential backoff, capped so retries never collide with the next
  scheduled interval;
* staleness — a target that misses ``staleness_intervals`` consecutive
  scheduled scrapes gets a ``scrape_target_stale`` marker (cleared on
  recovery), so dashboards can distinguish "briefly down" from "gone";
* self-monitoring — the scraper's own counters are real OpenMetrics
  :class:`~repro.openmetrics.types.Counter` families in
  :attr:`ScrapeManager.self_registry` (served by the ``teemon_self``
  target, so ``rate(teemon_scrape_retries_total[1m])`` works in PromQL);
  the legacy ``scrape_*_total`` series are still appended each cycle and
  :meth:`ScrapeManager.self_stats` remains a dict view over the counters;
* tracing — when constructed with a :class:`~repro.trace.tracer.Tracer`,
  every scrape cycle produces one trace: per-target child spans cover the
  HTTP fetch (with a W3C ``traceparent`` header propagated through the
  transport), the OpenMetrics parse and the TSDB append, with injected
  delays, timeouts and retry scheduling annotated as span events.
  Retries continue their cycle's trace via the saved span context.
  Tracing is off by default (the no-op tracer);
* exemplars — samples whose exposition line carried an OpenMetrics
  exemplar (``# {trace_id=…,span_id=…} v ts``) have it captured per
  metric name, resolvable back to a stored trace;
* service discovery — a callback returning the current target list, so a
  Kubernetes-style cluster can add and remove exporters dynamically
  (§5.4); static targets and discovered targets coexist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OpenMetricsError, TsdbError
from repro.net.http import HttpNetwork
from repro.openmetrics.parser import parse_exposition
from repro.openmetrics.registry import CollectorRegistry
from repro.openmetrics.types import Exemplar
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng
from repro.trace import NOOP_TRACER, TRACEPARENT_HEADER

DEFAULT_SCRAPE_INTERVAL_NS = 5 * NANOS_PER_SEC

#: Identity labels under which the scraper's own counters are stored.
SELF_IDENTITY = {"job": "pmag", "instance": "scraper"}

#: Modelled exposition-transfer rate used for ``scrape_duration_seconds``
#: and the fetch span's virtual time (bytes per second).
TRANSFER_BYTES_PER_S = 50e6
#: Modelled OpenMetrics parse rate (bytes per second).
PARSE_BYTES_PER_S = 200e6
#: Modelled per-sample TSDB append cost (nanoseconds).
APPEND_NS_PER_SAMPLE = 2_000


@dataclass(frozen=True)
class ScrapeTarget:
    """One scrape endpoint and its identity labels."""

    job: str
    instance: str
    url: str

    def identity(self) -> Dict[str, str]:
        """Labels attached to every sample from this target."""
        return {"job": self.job, "instance": self.instance}


@dataclass
class TargetHealth:
    """Rolling health of one target."""

    up: bool = False
    consecutive_failures: int = 0
    last_scrape_ns: int = -1
    scrapes: int = 0
    failures: int = 0
    timeouts: int = 0
    retries: int = 0
    flaps: int = 0
    #: Consecutive *scheduled* (non-retry) scrapes that failed.
    missed_intervals: int = 0
    stale: bool = False
    #: Whether any scrape has completed — the first observation sets the
    #: up/down baseline without counting a flap.
    observed: bool = False


class ScrapeManager:
    """Periodically pulls all targets into the TSDB."""

    def __init__(
        self,
        clock: VirtualClock,
        network: HttpNetwork,
        tsdb: Tsdb,
        interval_ns: int = DEFAULT_SCRAPE_INTERVAL_NS,
        timeout_budget_s: float = 1.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_jitter: float = 0.5,
        staleness_intervals: int = 3,
        rng: Optional[DeterministicRng] = None,
        self_monitor: bool = True,
        tracer=None,
        host: Optional[str] = None,
    ) -> None:
        if interval_ns <= 0:
            raise TsdbError(f"scrape interval must be positive, got {interval_ns}")
        if timeout_budget_s <= 0:
            raise TsdbError(f"timeout budget must be positive, got {timeout_budget_s}")
        if max_retries < 0:
            raise TsdbError(f"negative retry count: {max_retries}")
        if backoff_base_s <= 0:
            raise TsdbError(f"backoff base must be positive, got {backoff_base_s}")
        if not 0.0 <= backoff_jitter < 1.0:
            raise TsdbError(f"backoff jitter must be in [0, 1), got {backoff_jitter}")
        if staleness_intervals < 1:
            raise TsdbError(f"staleness threshold must be >= 1, got {staleness_intervals}")
        self._clock = clock
        self._network = network
        self._tsdb = tsdb
        self.interval_ns = interval_ns
        self.timeout_budget_s = timeout_budget_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self.staleness_intervals = staleness_intervals
        self.self_monitor = self_monitor
        #: Federation identity: stamped onto the scraper's own meta
        #: series (which otherwise carry only the fixed
        #: :data:`SELF_IDENTITY`), so copies remote-written from
        #: different monitors stay distinct series instead of colliding
        #: sample-for-sample at a relay tier.
        self._self_identity = dict(SELF_IDENTITY)
        if host is not None:
            self._self_identity["host"] = host
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._backoff_rng = (rng or DeterministicRng(0)).fork("scrape-backoff")
        self._static_targets: List[ScrapeTarget] = []
        self._discoverers: List[Callable[[], List[ScrapeTarget]]] = []
        self._health: Dict[ScrapeTarget, TargetHealth] = {}
        self._retry_timers: Dict[ScrapeTarget, object] = {}
        #: Trace context of the failed attempt, so a retry continues the
        #: same trace instead of starting a fresh one.
        self._retry_contexts: Dict[ScrapeTarget, object] = {}
        self._timer = None
        self._running = False
        # The scraper's own counters, as registered OpenMetrics families —
        # the ``teemon_self`` target serves this registry, which is what
        # makes ``rate(teemon_scrape_retries_total[1m])`` a real PromQL
        # query.  The int attributes below are properties over these.
        registry = CollectorRegistry()
        self.self_registry = registry
        self._ingested_counter = registry.counter(
            "teemon_scrape_samples_ingested_total",
            "Exposition samples appended to the TSDB",
        )
        self._up_writes_counter = registry.counter(
            "teemon_scrape_up_writes_total",
            "Synthetic up-series samples written",
        )
        self._meta_writes_counter = registry.counter(
            "teemon_scrape_meta_writes_total",
            "Scrape metadata samples written (duration, sample count)",
        )
        self._dropped_counter = registry.counter(
            "teemon_scrape_samples_dropped_total",
            "Duplicate-timestamp samples dropped on append",
        )
        self._stale_writes_counter = registry.counter(
            "teemon_scrape_stale_writes_total",
            "Staleness-marker transitions written",
        )
        self._timeouts_counter = registry.counter(
            "teemon_scrape_timeouts_total",
            "Scrapes discarded because the response exceeded the budget",
        )
        self._retries_counter = registry.counter(
            "teemon_scrape_retries_total",
            "Retry attempts issued after failed scrapes",
        )
        self._flaps_counter = registry.counter(
            "teemon_target_flaps_total",
            "Target up/down transitions observed",
        )
        self._removed_counter = registry.counter(
            "teemon_scrape_targets_removed_total",
            "Targets dropped by discovery and retired with staleness markers",
        )
        #: (job, instance) identities whose removal wrote a staleness
        #: marker; if discovery ever returns them again, the first
        #: healthy scrape clears the marker.  Keyed by identity (not
        #: URL) because that is what the ``scrape_target_stale`` series
        #: carries — which lets crash recovery rebuild this set from the
        #: recovered TSDB (:meth:`seed_removed_stale`).
        self._removed_stale: set = set()
        #: Latest exemplar seen per metric name on ingested samples.
        self._exemplars: Dict[str, Tuple[Tuple[Tuple[str, str], ...], Exemplar]] = {}

    # ------------------------------------------------------------------
    # Self-monitoring counters (dict/attribute views over the registry)
    # ------------------------------------------------------------------
    @property
    def samples_ingested(self) -> int:
        """Exposition samples appended (``up``/metadata counted separately)."""
        return int(self._ingested_counter.value)

    @property
    def up_writes(self) -> int:
        """Synthetic ``up`` samples written."""
        return int(self._up_writes_counter.value)

    @property
    def meta_writes(self) -> int:
        """Scrape-metadata samples written."""
        return int(self._meta_writes_counter.value)

    @property
    def samples_dropped(self) -> int:
        """Duplicate-timestamp samples silently dropped on append."""
        return int(self._dropped_counter.value)

    @property
    def stale_writes(self) -> int:
        """Staleness-marker transitions written (1.0 stale, 0.0 clear)."""
        return int(self._stale_writes_counter.value)

    @property
    def timeouts_total(self) -> int:
        """Scrapes discarded past the timeout budget."""
        return int(self._timeouts_counter.value)

    @property
    def retries_total(self) -> int:
        """Retry attempts issued."""
        return int(self._retries_counter.value)

    @property
    def flaps_total(self) -> int:
        """Up/down transitions observed."""
        return int(self._flaps_counter.value)

    @property
    def targets_removed(self) -> int:
        """Targets retired after discovery stopped returning them."""
        return int(self._removed_counter.value)

    # ------------------------------------------------------------------
    # Target management
    # ------------------------------------------------------------------
    def add_target(self, target: ScrapeTarget) -> None:
        """Register a static target."""
        if target in self._static_targets:
            raise TsdbError(f"target already registered: {target.url}")
        self._static_targets.append(target)

    def add_discovery(self, discoverer: Callable[[], List[ScrapeTarget]]) -> None:
        """Register a service-discovery source, called before each cycle."""
        self._discoverers.append(discoverer)

    def current_targets(self) -> List[ScrapeTarget]:
        """Static plus currently discovered targets (deduplicated)."""
        seen = {}
        for target in self._static_targets:
            seen[target.url] = target
        for discoverer in self._discoverers:
            for target in discoverer():
                seen.setdefault(target.url, target)
        return list(seen.values())

    def health(self, target: ScrapeTarget) -> TargetHealth:
        """Health record for a target (created on first access)."""
        return self._health.setdefault(target, TargetHealth())

    def down_targets(self) -> List[ScrapeTarget]:
        """Targets whose last scrape failed."""
        return [t for t, h in self._health.items() if not h.up and h.scrapes > 0]

    # ------------------------------------------------------------------
    # Recovery seeding
    # ------------------------------------------------------------------
    def seed_target_state(self, target: ScrapeTarget, up: bool,
                          stale: bool = False) -> None:
        """Restore a target's pre-crash health baseline.

        Called by the recovery path with state derived from the recovered
        TSDB's ``up`` / ``scrape_target_stale`` series, so the first
        post-restart scrape compares against the pre-crash state: a
        target that was up and still is does not count a flap, and a
        target that was already stale does not re-write its marker.
        """
        health = self.health(target)
        health.up = up
        health.observed = True
        health.stale = stale
        health.missed_intervals = self.staleness_intervals if stale else 0

    def seed_removed_stale(self, identities) -> None:
        """Restore pending removal-staleness markers after a crash.

        ``identities`` are ``(job, instance)`` pairs whose latest
        ``scrape_target_stale`` sample in the recovered TSDB is set —
        targets retired by discovery (or gone stale) before the crash.
        Without this, a retired target that rejoins after a recovery
        would start from a fresh health record and its marker would
        never be cleared by the first healthy scrape.
        """
        self._removed_stale.update(identities)

    def seed_counters(self, values: Dict[str, float]) -> None:
        """Restore self-stat counters from recovered series values.

        Keys are family names (e.g. ``teemon_scrape_timeouts_total``);
        unknown names are ignored and counters only move forward, so
        seeding from a stale recovered value can never rewind a live
        counter.
        """
        for name, value in values.items():
            try:
                family = self.self_registry.get(name)
            except OpenMetricsError:
                continue
            child = family.labels()
            if value > child.value:
                child.set_to(value)

    def stale_targets(self) -> List[ScrapeTarget]:
        """Targets that missed the staleness threshold of intervals."""
        return [t for t, h in self._health.items() if h.stale]

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def scrape_once(self) -> int:
        """Scrape every current target now; returns exposition samples
        ingested (the ``up`` write and scrape metadata are counted in
        :attr:`up_writes` / :attr:`meta_writes`, not here — a failed
        scrape ingests nothing)."""
        now = self._clock.now_ns
        tracer = self._tracer
        ingested = 0
        targets = self.current_targets()
        with tracer.span("scrape.cycle", {"targets": len(targets)}):
            self._retire_removed_targets(
                {target.url for target in targets}, now
            )
            for target in targets:
                self._cancel_retry(target)
                health = self.health(target)
                if health.scrapes > 0 and health.last_scrape_ns == now:
                    # An attempt (e.g. a retry that landed on the cycle
                    # boundary, or a manual scrape) already ran at this
                    # instant; one attempt per instant keeps the TSDB and the
                    # health record in agreement.
                    continue
                ingested += self._scrape_target(target, now, attempt=0)
            if self.self_monitor:
                with tracer.span("scrape.self_series"):
                    self._record_self_series(now)
            with tracer.span("tsdb.retention"):
                self._tsdb.enforce_retention(now)
        return ingested

    def _scrape_target(self, target: ScrapeTarget, now_ns: int, attempt: int) -> int:
        tracer = self._tracer
        with tracer.span("scrape.target", {
            "job": target.job, "instance": target.instance,
            "url": target.url, "attempt": attempt,
        }) as span:
            return self._scrape_target_traced(target, now_ns, attempt, span)

    def _scrape_target_traced(self, target, now_ns, attempt, span) -> int:
        tracer = self._tracer
        health = self.health(target)
        health.scrapes += 1
        health.last_scrape_ns = now_ns
        with tracer.span("net.http.get", {"url": target.url}) as get_span:
            headers = None
            context = tracer.current_context()
            if context is not None:
                headers = {TRACEPARENT_HEADER: context.to_traceparent()}
            response = self._network.get_url(target.url, headers=headers)
            latency_s = getattr(response, "latency_s", 0.0)
            get_span.set_attribute("status", response.status)
            if latency_s:
                get_span.add_event("transport.delay", latency_s=latency_s)
            get_span.add_virtual_time(int(
                (latency_s + len(response.body) / TRANSFER_BYTES_PER_S)
                * NANOS_PER_SEC
            ))
        identity = target.identity()
        if latency_s > self.timeout_budget_s:
            # The body (if any) arrived past the budget: discard it, as a
            # real scraper's deadline would have fired already.
            health.timeouts += 1
            self._timeouts_counter.inc()
            span.add_event("scrape.timeout", latency_s=latency_s,
                           budget_s=self.timeout_budget_s)
            return self._handle_failure(target, health, now_ns, attempt,
                                        identity, span)
        if not response.ok:
            span.add_event("scrape.http_failure", status=response.status)
            return self._handle_failure(target, health, now_ns, attempt,
                                        identity, span)
        with tracer.span("openmetrics.parse", {"bytes": len(response.body)}) as parse_span:
            try:
                samples = parse_exposition(response.body)
            except Exception:  # noqa: BLE001 - a bad exposition marks the target down
                parse_span.set_status("error")
                span.add_event("scrape.parse_failure")
                return self._handle_failure(target, health, now_ns, attempt,
                                            identity, span)
            parse_span.set_attribute("samples", len(samples))
            parse_span.add_virtual_time(int(
                len(response.body) / PARSE_BYTES_PER_S * NANOS_PER_SEC
            ))
        self._mark_up(target, health, identity, now_ns)
        with tracer.span("tsdb.append", {"samples": len(samples)}) as append_span:
            # One engine call per scrape cycle: the batch routes series
            # by shard in a single pass and amortises WAL write-through.
            # Entry order matches the exposition, so accept/reject and
            # exemplar outcomes are identical to per-sample appends.
            entries = []
            for sample in samples:
                labels = dict(sample.labels)
                labels.update(identity)  # target identity wins on collision
                labels[METRIC_NAME_LABEL] = sample.name
                entries.append((Labels(labels), now_ns, sample.value))
            rejected = self._tsdb.append_batch(entries) if entries else []
            if rejected:
                self._dropped_counter.inc(len(rejected))
            ingested = len(entries) - len(rejected)
            rejected_set = set(rejected)
            for index, sample in enumerate(samples):
                if sample.exemplar is not None and index not in rejected_set:
                    self._exemplars[sample.name] = (
                        sample.labels, sample.exemplar,
                    )
            append_span.set_attribute("ingested", ingested)
            append_span.add_virtual_time(len(samples) * APPEND_NS_PER_SAMPLE)
        self._ingested_counter.inc(ingested)
        if self._append("up", now_ns, 1.0, identity):
            self._up_writes_counter.inc()
        # Scrape metadata, as Prometheus records it: how long the scrape
        # took (modelled from the exposition size plus any transport
        # latency) and how many samples it yielded — operators watch these
        # to spot bloated exporters and slow links.
        duration_s = (latency_s + len(response.body) / TRANSFER_BYTES_PER_S
                      + 0.001)
        if self._append("scrape_duration_seconds", now_ns, duration_s, identity):
            self._meta_writes_counter.inc()
        if self._append("scrape_samples_scraped", now_ns, float(ingested), identity):
            self._meta_writes_counter.inc()
        return ingested

    def _retire_removed_targets(self, current_urls, now_ns: int) -> None:
        """Retire health records of targets discovery no longer returns.

        A departed node's series must not linger as phantoms: the target
        gets a final ``up 0`` and a staleness marker (the same mechanism
        as a target that missed the staleness threshold of scrapes), its
        pending retry is cancelled, and its health record is dropped so
        the targets page reflects the live topology.
        """
        for target in list(self._health):
            if target.url in current_urls:
                continue
            health = self._health.pop(target)
            self._cancel_retry(target)
            self._removed_counter.inc()
            if not health.observed:
                continue  # never scraped: nothing in the TSDB to retire
            identity = target.identity()
            if health.up:
                if self._append("up", now_ns, 0.0, identity):
                    self._up_writes_counter.inc()
            if not health.stale:
                if self._append("scrape_target_stale", now_ns, 1.0, identity):
                    self._stale_writes_counter.inc()
            self._removed_stale.add((target.job, target.instance))

    # ------------------------------------------------------------------
    # Failure handling, retries, staleness
    # ------------------------------------------------------------------
    def _handle_failure(
        self,
        target: ScrapeTarget,
        health: TargetHealth,
        now_ns: int,
        attempt: int,
        identity: Dict[str, str],
        span=None,
    ) -> int:
        health.failures += 1
        health.consecutive_failures += 1
        if attempt == 0:
            health.missed_intervals += 1
        if health.observed and health.up:
            health.flaps += 1
            self._flaps_counter.inc()
        health.up = False
        health.observed = True
        if self._append("up", now_ns, 0.0, identity):
            self._up_writes_counter.inc()
        if not health.stale and health.missed_intervals >= self.staleness_intervals:
            health.stale = True
            if self._append("scrape_target_stale", now_ns, 1.0, identity):
                self._stale_writes_counter.inc()
        if span is not None:
            span.set_status("error")
        if attempt < self.max_retries:
            delay_ns = self._schedule_retry(target, attempt)
            if span is not None:
                span.add_event("scrape.retry_scheduled",
                               attempt=attempt + 1, delay_ns=delay_ns)
                context = getattr(span, "context", None)
                if context is not None:
                    self._retry_contexts[target] = context
        return 0

    def _mark_up(
        self,
        target: ScrapeTarget,
        health: TargetHealth,
        identity: Dict[str, str],
        now_ns: int,
    ) -> None:
        if health.observed and not health.up:
            health.flaps += 1
            self._flaps_counter.inc()
        health.up = True
        health.observed = True
        health.consecutive_failures = 0
        health.missed_intervals = 0
        if health.stale:
            health.stale = False
            if self._append("scrape_target_stale", now_ns, 0.0, identity):
                self._stale_writes_counter.inc()
        elif (target.job, target.instance) in self._removed_stale:
            # The target was retired by discovery and has rejoined under
            # a fresh health record: clear the removal staleness marker.
            if self._append("scrape_target_stale", now_ns, 0.0, identity):
                self._stale_writes_counter.inc()
        self._removed_stale.discard((target.job, target.instance))

    def backoff_delay_ns(self, attempt: int) -> int:
        """Jittered exponential backoff before retry ``attempt + 1``.

        ``base * 2^attempt``, multiplied by a uniform jitter factor in
        ``[1 - jitter, 1 + jitter)`` drawn from the manager's seeded
        stream, and capped at one scrape interval so a retry can never
        land after the next scheduled cycle would have superseded it.
        """
        delay_s = self.backoff_base_s * (2 ** attempt)
        if self.backoff_jitter:
            delay_s *= 1.0 + self.backoff_jitter * (
                2.0 * self._backoff_rng.random() - 1.0
            )
        return min(int(delay_s * NANOS_PER_SEC), self.interval_ns)

    def _schedule_retry(self, target: ScrapeTarget, attempt: int) -> int:
        delay_ns = self.backoff_delay_ns(attempt)
        self._retry_timers[target] = self._clock.call_later(
            delay_ns, lambda: self._retry(target, attempt + 1)
        )
        return delay_ns

    def _retry(self, target: ScrapeTarget, attempt: int) -> None:
        self._retry_timers.pop(target, None)
        parent = self._retry_contexts.pop(target, None)
        if all(t.url != target.url for t in self.current_targets()):
            return  # target went away between failure and retry
        health = self.health(target)
        health.retries += 1
        self._retries_counter.inc()
        # The retry joins its cycle's trace through the saved context —
        # one scrape, one trace, however many attempts it took.
        with self._tracer.span("scrape.retry", {"attempt": attempt},
                               parent=parent):
            self._scrape_target(target, self._clock.now_ns, attempt)

    def _cancel_retry(self, target: ScrapeTarget) -> None:
        timer = self._retry_timers.pop(target, None)
        if timer is not None:
            timer.cancel()
        self._retry_contexts.pop(target, None)

    def _cancel_all_retries(self) -> None:
        for target in list(self._retry_timers):
            self._cancel_retry(target)

    # ------------------------------------------------------------------
    # Ingest and self-monitoring
    # ------------------------------------------------------------------
    def _append(self, name: str, now_ns: int, value: float, labels: Dict[str, str]) -> bool:
        full = dict(labels)
        full[METRIC_NAME_LABEL] = name
        try:
            self._tsdb.append(Labels(full), now_ns, value)
            return True
        except TsdbError:
            # Two scrapes in the same instant (e.g. manual + scheduled)
            # produce a duplicate timestamp; drop the later sample, which is
            # what Prometheus does with out-of-order ingestion — but count
            # the drop so operators can see it happening.
            self._dropped_counter.inc()
            return False

    def _record_self_series(self, now_ns: int) -> None:
        """Append the scraper's own counters — the monitor monitors itself."""
        for name, value in (
            ("scrape_timeouts_total", self.timeouts_total),
            ("scrape_retries_total", self.retries_total),
            ("scrape_samples_dropped_total", self.samples_dropped),
            ("target_flaps_total", self.flaps_total),
            ("scrape_targets_removed_total", self.targets_removed),
        ):
            self._append(name, now_ns, float(value), self._self_identity)

    def self_stats(self) -> Dict[str, int]:
        """The self-monitoring counters as a plain mapping (a view over
        the registered OpenMetrics families in :attr:`self_registry`)."""
        return {
            "scrape_timeouts_total": self.timeouts_total,
            "scrape_retries_total": self.retries_total,
            "scrape_samples_dropped_total": self.samples_dropped,
            "target_flaps_total": self.flaps_total,
            "scrape_targets_removed_total": self.targets_removed,
            "samples_ingested": self.samples_ingested,
            "up_writes": self.up_writes,
        }

    # ------------------------------------------------------------------
    # Exemplars
    # ------------------------------------------------------------------
    def exemplar_for(self, metric_name: str) -> Optional[Exemplar]:
        """The most recent exemplar ingested for ``metric_name`` (if any)."""
        entry = self._exemplars.get(metric_name)
        return entry[1] if entry is not None else None

    def exemplar_metrics(self) -> List[str]:
        """Metric names that have carried an exemplar."""
        return sorted(self._exemplars)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic scraping on the virtual clock."""
        if self._running:
            raise TsdbError("scrape manager already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop periodic scraping and cancel outstanding retries."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._cancel_all_retries()

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._timer = self._clock.call_later(self.interval_ns, self._on_tick)

    def _on_tick(self) -> None:
        self.scrape_once()
        self._schedule_next()
