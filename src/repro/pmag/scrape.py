"""Pull-based metric scraping with service discovery.

The paper argues for pull over push (§4): the aggregator controls ingest
rate, misbehaving services cannot flood it, and unreachable targets are
detected because the scraper doubles as a health checker.  All three
behaviours live here:

* :class:`ScrapeTarget` — one endpoint with job/instance identity;
* :class:`ScrapeManager` — scrapes every target each interval (default 5 s,
  the paper's default exporter query rate), parses the OpenMetrics body,
  appends samples to the TSDB with scrape-time labels attached, and writes
  the synthetic ``up`` series (1 healthy / 0 down) per target;
* service discovery — a callback returning the current target list, so a
  Kubernetes-style cluster can add and remove exporters dynamically
  (§5.4); static targets and discovered targets coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import TsdbError
from repro.net.http import HttpNetwork
from repro.openmetrics.parser import parse_exposition
from repro.pmag.model import Labels, METRIC_NAME_LABEL
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock

DEFAULT_SCRAPE_INTERVAL_NS = 5 * NANOS_PER_SEC


@dataclass(frozen=True)
class ScrapeTarget:
    """One scrape endpoint and its identity labels."""

    job: str
    instance: str
    url: str

    def identity(self) -> Dict[str, str]:
        """Labels attached to every sample from this target."""
        return {"job": self.job, "instance": self.instance}


@dataclass
class TargetHealth:
    """Rolling health of one target."""

    up: bool = False
    consecutive_failures: int = 0
    last_scrape_ns: int = -1
    scrapes: int = 0
    failures: int = 0


class ScrapeManager:
    """Periodically pulls all targets into the TSDB."""

    def __init__(
        self,
        clock: VirtualClock,
        network: HttpNetwork,
        tsdb: Tsdb,
        interval_ns: int = DEFAULT_SCRAPE_INTERVAL_NS,
    ) -> None:
        if interval_ns <= 0:
            raise TsdbError(f"scrape interval must be positive, got {interval_ns}")
        self._clock = clock
        self._network = network
        self._tsdb = tsdb
        self.interval_ns = interval_ns
        self._static_targets: List[ScrapeTarget] = []
        self._discoverers: List[Callable[[], List[ScrapeTarget]]] = []
        self._health: Dict[ScrapeTarget, TargetHealth] = {}
        self._timer = None
        self._running = False
        self.samples_ingested = 0

    # ------------------------------------------------------------------
    # Target management
    # ------------------------------------------------------------------
    def add_target(self, target: ScrapeTarget) -> None:
        """Register a static target."""
        if target in self._static_targets:
            raise TsdbError(f"target already registered: {target.url}")
        self._static_targets.append(target)

    def add_discovery(self, discoverer: Callable[[], List[ScrapeTarget]]) -> None:
        """Register a service-discovery source, called before each cycle."""
        self._discoverers.append(discoverer)

    def current_targets(self) -> List[ScrapeTarget]:
        """Static plus currently discovered targets (deduplicated)."""
        seen = {}
        for target in self._static_targets:
            seen[target.url] = target
        for discoverer in self._discoverers:
            for target in discoverer():
                seen.setdefault(target.url, target)
        return list(seen.values())

    def health(self, target: ScrapeTarget) -> TargetHealth:
        """Health record for a target (created on first access)."""
        return self._health.setdefault(target, TargetHealth())

    def down_targets(self) -> List[ScrapeTarget]:
        """Targets whose last scrape failed."""
        return [t for t, h in self._health.items() if not h.up and h.scrapes > 0]

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def scrape_once(self) -> int:
        """Scrape every current target now; returns samples ingested."""
        now = self._clock.now_ns
        ingested = 0
        for target in self.current_targets():
            ingested += self._scrape_target(target, now)
        self._tsdb.enforce_retention(now)
        return ingested

    def _scrape_target(self, target: ScrapeTarget, now_ns: int) -> int:
        health = self.health(target)
        health.scrapes += 1
        health.last_scrape_ns = now_ns
        response = self._network.get_url(target.url)
        identity = target.identity()
        if not response.ok:
            health.up = False
            health.failures += 1
            health.consecutive_failures += 1
            self._append("up", now_ns, 0.0, identity)
            return 1
        try:
            samples = parse_exposition(response.body)
        except Exception:  # noqa: BLE001 - a bad exposition marks the target down
            health.up = False
            health.failures += 1
            health.consecutive_failures += 1
            self._append("up", now_ns, 0.0, identity)
            return 1
        health.up = True
        health.consecutive_failures = 0
        ingested = 0
        for sample in samples:
            labels = dict(sample.labels)
            labels.update(identity)  # target identity wins on collision
            self._append(sample.name, now_ns, sample.value, labels)
            ingested += 1
        self._append("up", now_ns, 1.0, identity)
        # Scrape metadata, as Prometheus records it: how long the scrape
        # took (modelled from the exposition size) and how many samples it
        # yielded — operators watch these to spot bloated exporters.
        duration_s = len(response.body) / 50e6 + 0.001  # parse rate + RTT
        self._append("scrape_duration_seconds", now_ns, duration_s, identity)
        self._append("scrape_samples_scraped", now_ns, float(ingested), identity)
        return ingested + 3

    def _append(self, name: str, now_ns: int, value: float, labels: Dict[str, str]) -> None:
        full = dict(labels)
        full[METRIC_NAME_LABEL] = name
        try:
            self._tsdb.append(Labels(full), now_ns, value)
            self.samples_ingested += 1
        except TsdbError:
            # Two scrapes in the same instant (e.g. manual + scheduled)
            # produce a duplicate timestamp; drop the later sample, which is
            # what Prometheus does with out-of-order ingestion.
            pass

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic scraping on the virtual clock."""
        if self._running:
            raise TsdbError("scrape manager already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop periodic scraping."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._timer = self._clock.call_later(self.interval_ns, self._on_tick)

    def _on_tick(self) -> None:
        self.scrape_once()
        self._schedule_next()
