"""A PromQL-subset query language for the PMAG TSDB.

Supported surface (everything the dashboards and analysis components use):

* instant selectors with label matchers: ``syscalls_total{name=~"clock.*"}``
* range selectors: ``syscalls_total[5m]``
* range functions: ``rate``, ``irate``, ``increase``, ``delta``,
  ``avg_over_time``, ``min_over_time``, ``max_over_time``,
  ``sum_over_time``, ``count_over_time``, ``quantile_over_time``
* instant functions: ``abs``, ``clamp_min``, ``clamp_max``
* aggregations with grouping: ``sum by (process) (rate(x[1m]))``, plus
  ``avg``, ``min``, ``max``, ``count`` and ``without``
* binary arithmetic between scalars and vectors: ``+ - * /``

Entry point: :class:`~repro.pmag.query.engine.QueryEngine`.
"""

from repro.pmag.query.engine import QueryEngine
from repro.pmag.query.parser import parse_query

__all__ = ["QueryEngine", "parse_query"]
