"""Recursive-descent parser for the query language."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import QueryError
from repro.pmag.model import Matcher
from repro.pmag.query.lexer import Token, TokenKind, duration_to_ns, tokenize
from repro.pmag.query.nodes import (
    Aggregation,
    BinaryOp,
    Comparison,
    Expr,
    FunctionCall,
    NumberLiteral,
    RangeSelector,
    VectorSelector,
)

_COMPARISON_KINDS = {
    TokenKind.CMP_GT: ">",
    TokenKind.CMP_LT: "<",
    TokenKind.CMP_GTE: ">=",
    TokenKind.CMP_LTE: "<=",
    TokenKind.CMP_EQ: "==",
    TokenKind.OP_NE: "!=",
}

AGGREGATION_OPS = {"sum", "avg", "min", "max", "count", "topk", "bottomk"}

FUNCTION_NAMES = {
    "rate", "irate", "increase", "delta",
    "avg_over_time", "min_over_time", "max_over_time",
    "sum_over_time", "count_over_time", "quantile_over_time",
    "abs", "clamp_min", "clamp_max",
    "histogram_quantile", "absent",
}


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._advance()
        if token.kind is not kind:
            raise QueryError(
                f"expected {kind.value!r} at position {token.position} in "
                f"{self._source!r}, got {token.text!r}"
            )
        return token

    # expr := comparison ; comparison := additive (cmp additive)?
    def parse(self) -> Expr:
        expr = self._comparison()
        self._expect(TokenKind.EOF)
        return expr

    def _comparison(self) -> Expr:
        left = self._additive()
        if self._peek().kind in _COMPARISON_KINDS:
            op = _COMPARISON_KINDS[self._advance().kind]
            right = self._additive()
            return Comparison(op=op, left=left, right=right)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().text
            right = self._multiplicative()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance().text
            right = self._unary()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            inner = self._unary()
            return BinaryOp(op="-", left=NumberLiteral(0.0), right=inner)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            try:
                return NumberLiteral(float(token.text))
            except ValueError:
                raise QueryError(f"bad number literal: {token.text!r}") from None
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._comparison()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            return self._ident_expr()
        raise QueryError(
            f"unexpected token {token.text!r} at position {token.position} "
            f"in {self._source!r}"
        )

    def _ident_expr(self) -> Expr:
        name_token = self._advance()
        name = name_token.text
        if name in AGGREGATION_OPS:
            return self._aggregation(name)
        if self._peek().kind is TokenKind.LPAREN and name in FUNCTION_NAMES:
            return self._function_call(name)
        if self._peek().kind is TokenKind.LPAREN:
            raise QueryError(f"unknown function: {name!r}")
        return self._selector(name)

    def _aggregation(self, op: str) -> Expr:
        grouping: Tuple[str, ...] = ()
        without = False
        parameter = None
        # by/without clause may come before or after the parenthesised expr.
        if self._peek().kind is TokenKind.IDENT and self._peek().text in ("by", "without"):
            without = self._advance().text == "without"
            grouping = self._grouping_labels()
        self._expect(TokenKind.LPAREN)
        if op in ("topk", "bottomk"):
            number = self._expect(TokenKind.NUMBER)
            try:
                parameter = float(number.text)
            except ValueError:
                raise QueryError(f"bad {op} parameter: {number.text!r}") from None
            self._expect(TokenKind.COMMA)
        inner = self._comparison()
        self._expect(TokenKind.RPAREN)
        if self._peek().kind is TokenKind.IDENT and self._peek().text in ("by", "without"):
            without = self._advance().text == "without"
            grouping = self._grouping_labels()
        return Aggregation(op=op, expr=inner, grouping=grouping,
                           without=without, parameter=parameter)

    def _grouping_labels(self) -> Tuple[str, ...]:
        self._expect(TokenKind.LPAREN)
        labels: List[str] = []
        while self._peek().kind is not TokenKind.RPAREN:
            labels.append(self._expect(TokenKind.IDENT).text)
            if self._peek().kind is TokenKind.COMMA:
                self._advance()
        self._expect(TokenKind.RPAREN)
        return tuple(labels)

    def _function_call(self, name: str) -> Expr:
        self._expect(TokenKind.LPAREN)
        args: List[Expr] = []
        while self._peek().kind is not TokenKind.RPAREN:
            args.append(self._comparison())
            if self._peek().kind is TokenKind.COMMA:
                self._advance()
        self._expect(TokenKind.RPAREN)
        return FunctionCall(name=name, args=tuple(args))

    def _selector(self, metric_name: str) -> Expr:
        matchers: List[Matcher] = []
        if self._peek().kind is TokenKind.LBRACE:
            self._advance()
            while self._peek().kind is not TokenKind.RBRACE:
                matchers.append(self._matcher())
                if self._peek().kind is TokenKind.COMMA:
                    self._advance()
            self._expect(TokenKind.RBRACE)
        range_ns = None
        if self._peek().kind is TokenKind.LBRACKET:
            self._advance()
            duration_token = self._expect(TokenKind.DURATION)
            self._expect(TokenKind.RBRACKET)
            range_ns = duration_to_ns(duration_token.text)
        offset_ns = 0
        if self._peek().kind is TokenKind.IDENT and self._peek().text == "offset":
            self._advance()
            offset_ns = self._offset_duration()
        selector = VectorSelector(
            metric_name=metric_name, matchers=tuple(matchers),
            offset_ns=offset_ns,
        )
        if range_ns is not None:
            return RangeSelector(selector=selector, range_ns=range_ns)
        return selector

    def _offset_duration(self) -> int:
        """Parse the `offset 5m` duration (NUMBER followed by a unit)."""
        number = self._expect(TokenKind.NUMBER)
        unit = self._expect(TokenKind.IDENT)
        return duration_to_ns(number.text + unit.text)

    def _matcher(self) -> Matcher:
        label = self._expect(TokenKind.IDENT).text
        op_token = self._advance()
        value = self._expect(TokenKind.STRING).text
        if op_token.kind is TokenKind.OP_EQ:
            return Matcher.eq(label, value)
        if op_token.kind is TokenKind.OP_NE:
            return Matcher.ne(label, value)
        if op_token.kind is TokenKind.OP_RE:
            return Matcher.regex(label, value)
        if op_token.kind is TokenKind.OP_NRE:
            return Matcher.not_regex(label, value)
        raise QueryError(
            f"expected a matcher operator at position {op_token.position}, "
            f"got {op_token.text!r}"
        )


def parse_query(text: str) -> Expr:
    """Parse a query string into an AST."""
    if not text or not text.strip():
        raise QueryError("empty query")
    return _Parser(tokenize(text), text).parse()
