"""Range- and instant-vector functions.

Range functions consume a list of samples within a window and produce one
number per series.  ``rate``/``increase`` handle counter resets the way
Prometheus does: a drop in value is treated as a reset and the running
total is adjusted.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import QueryError
from repro.pmag.model import Sample

NANOS_PER_SEC = 1_000_000_000


def _increase_with_resets(samples: Sequence[Sample]) -> float:
    total = 0.0
    previous = samples[0].value
    for sample in samples[1:]:
        if sample.value < previous:
            total += sample.value  # counter reset: count from zero
        else:
            total += sample.value - previous
        previous = sample.value
    return total


def func_increase(samples: Sequence[Sample], range_ns: int) -> float:
    """Total counter increase over the window."""
    if len(samples) < 2:
        raise QueryError("increase() needs at least two samples")
    return _increase_with_resets(samples)


def func_rate(samples: Sequence[Sample], range_ns: int) -> float:
    """Per-second rate over the window (reset-aware)."""
    if len(samples) < 2:
        raise QueryError("rate() needs at least two samples")
    elapsed_ns = samples[-1].time_ns - samples[0].time_ns
    if elapsed_ns <= 0:
        raise QueryError("rate() window has zero duration")
    return _increase_with_resets(samples) * NANOS_PER_SEC / elapsed_ns


def func_irate(samples: Sequence[Sample], range_ns: int) -> float:
    """Instant rate from the last two samples."""
    if len(samples) < 2:
        raise QueryError("irate() needs at least two samples")
    last, previous = samples[-1], samples[-2]
    elapsed_ns = last.time_ns - previous.time_ns
    if elapsed_ns <= 0:
        raise QueryError("irate() samples share a timestamp")
    delta = last.value - previous.value
    if delta < 0:
        delta = last.value  # reset
    return delta * NANOS_PER_SEC / elapsed_ns


def func_delta(samples: Sequence[Sample], range_ns: int) -> float:
    """Gauge difference last - first (no reset handling)."""
    if len(samples) < 2:
        raise QueryError("delta() needs at least two samples")
    return samples[-1].value - samples[0].value


def func_avg_over_time(samples: Sequence[Sample], range_ns: int) -> float:
    """Mean of samples in the window."""
    return sum(s.value for s in samples) / len(samples)


def func_min_over_time(samples: Sequence[Sample], range_ns: int) -> float:
    """Minimum in the window."""
    return min(s.value for s in samples)


def func_max_over_time(samples: Sequence[Sample], range_ns: int) -> float:
    """Maximum in the window."""
    return max(s.value for s in samples)


def func_sum_over_time(samples: Sequence[Sample], range_ns: int) -> float:
    """Sum over the window."""
    return sum(s.value for s in samples)


def func_count_over_time(samples: Sequence[Sample], range_ns: int) -> float:
    """Sample count in the window."""
    return float(len(samples))


def quantile_of(values: List[float], quantile: float) -> float:
    """Linear-interpolation quantile (Prometheus semantics)."""
    if not values:
        raise QueryError("quantile of an empty set")
    if not 0.0 <= quantile <= 1.0:
        raise QueryError(f"quantile out of range: {quantile}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = quantile * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    # a + f*(b-a) rather than a*(1-f) + b*f: exact when a == b, and never
    # leaves [a, b] under floating-point rounding.
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


RANGE_FUNCTIONS = {
    "rate": func_rate,
    "irate": func_irate,
    "increase": func_increase,
    "delta": func_delta,
    "avg_over_time": func_avg_over_time,
    "min_over_time": func_min_over_time,
    "max_over_time": func_max_over_time,
    "sum_over_time": func_sum_over_time,
    "count_over_time": func_count_over_time,
}


# ---------------------------------------------------------------------------
# Array-native variants.
#
# The bulk range evaluator keeps samples as parallel (timestamps, values)
# lists and never materialises Sample objects, so each range function also
# has an array form: f(times, values, range_ns).  Semantics must match the
# Sample-based form exactly — a property test in tests/test_perf_equivalence
# pins the two families together.
# ---------------------------------------------------------------------------
def _array_increase_with_resets(values: Sequence[float]) -> float:
    total = 0.0
    previous = values[0]
    for value in values[1:]:
        if value < previous:
            total += value  # counter reset: count from zero
        else:
            total += value - previous
        previous = value
    return total


def array_increase(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_increase`."""
    if len(values) < 2:
        raise QueryError("increase() needs at least two samples")
    return _array_increase_with_resets(values)


def array_rate(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_rate`."""
    if len(values) < 2:
        raise QueryError("rate() needs at least two samples")
    elapsed_ns = times[-1] - times[0]
    if elapsed_ns <= 0:
        raise QueryError("rate() window has zero duration")
    return _array_increase_with_resets(values) * NANOS_PER_SEC / elapsed_ns


def array_irate(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_irate`."""
    if len(values) < 2:
        raise QueryError("irate() needs at least two samples")
    elapsed_ns = times[-1] - times[-2]
    if elapsed_ns <= 0:
        raise QueryError("irate() samples share a timestamp")
    delta = values[-1] - values[-2]
    if delta < 0:
        delta = values[-1]  # reset
    return delta * NANOS_PER_SEC / elapsed_ns


def array_delta(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_delta`."""
    if len(values) < 2:
        raise QueryError("delta() needs at least two samples")
    return values[-1] - values[0]


def array_avg_over_time(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_avg_over_time`."""
    return sum(values) / len(values)


def array_min_over_time(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_min_over_time`."""
    return min(values)


def array_max_over_time(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_max_over_time`."""
    return max(values)


def array_sum_over_time(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_sum_over_time`."""
    return sum(values)


def array_count_over_time(times: Sequence[int], values: Sequence[float], range_ns: int) -> float:
    """Array form of :func:`func_count_over_time`."""
    return float(len(values))


ARRAY_RANGE_FUNCTIONS = {
    "rate": array_rate,
    "irate": array_irate,
    "increase": array_increase,
    "delta": array_delta,
    "avg_over_time": array_avg_over_time,
    "min_over_time": array_min_over_time,
    "max_over_time": array_max_over_time,
    "sum_over_time": array_sum_over_time,
    "count_over_time": array_count_over_time,
}
