"""Tokenizer for the query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import QueryError


class TokenKind(enum.Enum):
    """Token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    DURATION = "duration"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    OP_EQ = "="
    OP_NE = "!="
    OP_RE = "=~"
    OP_NRE = "!~"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CMP_GT = ">"
    CMP_LT = "<"
    CMP_GTE = ">="
    CMP_LTE = "<="
    CMP_EQ = "=="
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One token with its source position."""

    kind: TokenKind
    text: str
    position: int


_DURATION_UNITS = {"ms": 1_000_000, "s": 1_000_000_000, "m": 60_000_000_000,
                   "h": 3_600_000_000_000, "d": 86_400_000_000_000}


def duration_to_ns(text: str) -> int:
    """Parse a PromQL duration literal (``5m``, ``30s``, ``1h``) to ns."""
    for unit in sorted(_DURATION_UNITS, key=len, reverse=True):
        if text.endswith(unit):
            number_text = text[: -len(unit)]
            try:
                number = float(number_text)
            except ValueError:
                raise QueryError(f"bad duration: {text!r}") from None
            return int(number * _DURATION_UNITS[unit])
    raise QueryError(f"bad duration: {text!r}")


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char in "_:"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_:"


def tokenize(text: str) -> List[Token]:
    """Tokenize a query string."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, char, index)); index += 1
        elif char == ")":
            tokens.append(Token(TokenKind.RPAREN, char, index)); index += 1
        elif char == "{":
            tokens.append(Token(TokenKind.LBRACE, char, index)); index += 1
        elif char == "}":
            tokens.append(Token(TokenKind.RBRACE, char, index)); index += 1
        elif char == "[":
            # Scan a duration literal to the closing bracket.
            close = text.find("]", index)
            if close < 0:
                raise QueryError(f"unterminated range selector at {index}")
            tokens.append(Token(TokenKind.LBRACKET, "[", index))
            tokens.append(Token(TokenKind.DURATION, text[index + 1:close].strip(), index + 1))
            tokens.append(Token(TokenKind.RBRACKET, "]", close))
            index = close + 1
        elif char == ",":
            tokens.append(Token(TokenKind.COMMA, char, index)); index += 1
        elif char == "+":
            tokens.append(Token(TokenKind.PLUS, char, index)); index += 1
        elif char == "-":
            tokens.append(Token(TokenKind.MINUS, char, index)); index += 1
        elif char == "*":
            tokens.append(Token(TokenKind.STAR, char, index)); index += 1
        elif char == "/":
            tokens.append(Token(TokenKind.SLASH, char, index)); index += 1
        elif char == "=":
            if index + 1 < length and text[index + 1] == "~":
                tokens.append(Token(TokenKind.OP_RE, "=~", index)); index += 2
            elif index + 1 < length and text[index + 1] == "=":
                tokens.append(Token(TokenKind.CMP_EQ, "==", index)); index += 2
            else:
                tokens.append(Token(TokenKind.OP_EQ, "=", index)); index += 1
        elif char == ">":
            if index + 1 < length and text[index + 1] == "=":
                tokens.append(Token(TokenKind.CMP_GTE, ">=", index)); index += 2
            else:
                tokens.append(Token(TokenKind.CMP_GT, ">", index)); index += 1
        elif char == "<":
            if index + 1 < length and text[index + 1] == "=":
                tokens.append(Token(TokenKind.CMP_LTE, "<=", index)); index += 2
            else:
                tokens.append(Token(TokenKind.CMP_LT, "<", index)); index += 1
        elif char == "!":
            if index + 1 < length and text[index + 1] == "=":
                tokens.append(Token(TokenKind.OP_NE, "!=", index)); index += 2
            elif index + 1 < length and text[index + 1] == "~":
                tokens.append(Token(TokenKind.OP_NRE, "!~", index)); index += 2
            else:
                raise QueryError(f"unexpected '!' at {index}")
        elif char in "\"'":
            quote = char
            cursor = index + 1
            chars: List[str] = []
            while cursor < length and text[cursor] != quote:
                if text[cursor] == "\\" and cursor + 1 < length:
                    chars.append(text[cursor + 1])
                    cursor += 2
                    continue
                chars.append(text[cursor])
                cursor += 1
            if cursor >= length:
                raise QueryError(f"unterminated string at {index}")
            tokens.append(Token(TokenKind.STRING, "".join(chars), index))
            index = cursor + 1
        elif char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            cursor = index
            while cursor < length and (text[cursor].isdigit() or text[cursor] in ".eE"):
                # Permit exponent signs.
                if text[cursor] in "eE" and cursor + 1 < length and text[cursor + 1] in "+-":
                    cursor += 1
                cursor += 1
            tokens.append(Token(TokenKind.NUMBER, text[index:cursor], index))
            index = cursor
        elif _is_ident_start(char):
            cursor = index
            while cursor < length and _is_ident_char(text[cursor]):
                cursor += 1
            tokens.append(Token(TokenKind.IDENT, text[index:cursor], index))
            index = cursor
        else:
            raise QueryError(f"unexpected character {char!r} at {index}")
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens
