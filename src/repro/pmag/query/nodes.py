"""Abstract syntax tree for the query language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.pmag.model import Matcher


class Expr:
    """Base class for AST nodes."""


@dataclass(frozen=True)
class NumberLiteral(Expr):
    """A scalar literal."""

    value: float


@dataclass(frozen=True)
class VectorSelector(Expr):
    """Instant vector selector: metric name + matchers + optional offset."""

    metric_name: str
    matchers: Tuple[Matcher, ...] = ()
    offset_ns: int = 0


@dataclass(frozen=True)
class RangeSelector(Expr):
    """Range vector selector: instant selector + window."""

    selector: VectorSelector
    range_ns: int


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Function application; args may be scalars or vectors per function."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Aggregation(Expr):
    """sum/avg/min/max/count/topk/bottomk with optional by/without grouping.

    ``parameter`` carries topk/bottomk's k.
    """

    op: str
    expr: Expr
    grouping: Tuple[str, ...] = ()
    without: bool = False
    parameter: Optional[float] = None


@dataclass(frozen=True)
class Comparison(Expr):
    """Filtering comparison between a vector/scalar and a vector/scalar."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic between scalars and vectors."""

    op: str
    left: Expr
    right: Expr
