"""Query evaluation.

Values flow through evaluation as one of:

* a ``float`` scalar,
* an **instant vector**: ``List[Tuple[Labels, float]]``,
* a **range vector**: ``List[Series]`` (only as a function argument).

Instant selectors use a 5-minute lookback (the Prometheus staleness
window): the value of a series "now" is its newest sample within lookback.

Two hot-path optimizations live here, both behavior-preserving:

* a **query plan cache**: an LRU of query string -> parsed AST, so rule
  groups and dashboard panels that re-evaluate the same expression every
  cycle stop paying the lexer/parser (ASTs are immutable, so sharing one
  across evaluations is safe);
* **bulk range evaluation**: ``range_query`` pre-selects each selector's
  samples ONCE over ``[start - window, end]`` and binary-search-slices
  that buffer at every step, instead of running a full TSDB select per
  step — O(select + steps·log n) instead of O(steps × select).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from itertools import accumulate
from operator import sub, truediv
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import QueryError
from repro.pmag.blocks import EMPTY_AGGREGATE, aggregate_arrays
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL, Sample, Series
from repro.pmag.query.functions import (
    ARRAY_RANGE_FUNCTIONS,
    RANGE_FUNCTIONS,
    quantile_of,
)
from repro.pmag.query.nodes import (
    Aggregation,
    BinaryOp,
    Comparison,
    Expr,
    FunctionCall,
    NumberLiteral,
    RangeSelector,
    VectorSelector,
)
from repro.pmag.query.parser import parse_query
from repro.pmag.tsdb import Tsdb
from repro.trace import NOOP_TRACER

LOOKBACK_NS = 5 * 60 * 1_000_000_000

#: Modelled parse cost per query character (ns) for traced evaluations.
PARSE_NS_PER_CHAR = 100
#: Modelled evaluation cost per result series (ns) for traced evaluations.
EVAL_NS_PER_SERIES = 1_000

#: Default capacity of the query plan cache.  The full dashboard + rule +
#: alert query population of a deployment is a few dozen strings; 256
#: leaves generous headroom for ad-hoc session queries.
DEFAULT_PLAN_CACHE_SIZE = 256

InstantVector = List[Tuple[Labels, float]]
Value = Union[float, InstantVector]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time statistics of a :class:`QueryPlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int


class QueryPlanCache:
    """LRU cache of query string -> parsed AST.

    ASTs are trees of frozen dataclasses, so a cached plan can be shared
    freely between evaluations.  A capacity of 0 disables caching (every
    lookup is a miss) — the perf harness uses that to measure the parser.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if capacity < 0:
            raise QueryError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._plans: "OrderedDict[str, Expr]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, query: str) -> Optional[Expr]:
        """The cached plan, promoted to most-recently-used; None on miss."""
        plan = self._plans.get(query)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(query)
        self.hits += 1
        return plan

    def put(self, query: str, plan: Expr) -> None:
        """Insert a plan, evicting the least-recently-used past capacity."""
        if self.capacity == 0:
            return
        self._plans[query] = plan
        self._plans.move_to_end(query)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (statistics are kept)."""
        self._plans.clear()

    def stats(self) -> CacheStats:
        """Current counters."""
        return CacheStats(
            hits=self.hits, misses=self.misses, evictions=self.evictions,
            size=len(self._plans), capacity=self.capacity,
        )


class _BulkSelection:
    """One selector's samples pre-fetched over a whole query range.

    Stores, per matched series, the sample list plus a parallel timestamp
    array so any sub-window can be sliced with two bisects.  Slicing yields
    exactly what a fresh ``tsdb.select`` over the sub-window would: the
    bulk window is a superset, label order is preserved from the sorted
    bulk select, and series with no samples in the sub-window are dropped.

    Beyond plain slicing, the two per-step evaluation shapes are answered
    directly from the buffer so the inner loop allocates nothing it does
    not have to: :meth:`latest` resolves an instant selector with a single
    bisect per series, and :meth:`apply_range_function` feeds each range
    function a window slice without materialising :class:`Series` objects.
    """

    __slots__ = ("start_ns", "end_ns", "_series")

    def __init__(
        self,
        start_ns: int,
        end_ns: int,
        arrays: List[Tuple[Labels, List[int], List[float]]],
    ) -> None:
        self.start_ns = start_ns
        self.end_ns = end_ns
        # (labels, labels sans __name__, timestamps, values) per series.
        self._series: List[Tuple[Labels, Labels, List[int], List[float]]] = [
            (labels, labels.without(METRIC_NAME_LABEL), times, values)
            for labels, times, values in arrays
        ]

    def covers(self, start_ns: int, end_ns: int) -> bool:
        """Whether [start_ns, end_ns] lies inside the pre-fetched window."""
        return start_ns >= self.start_ns and end_ns <= self.end_ns

    def slice(self, start_ns: int, end_ns: int) -> List[Series]:
        """Series restricted to [start_ns, end_ns], empty ones dropped."""
        result: List[Series] = []
        for labels, _sans_name, times, values in self._series:
            low = bisect_left(times, start_ns)
            high = bisect_right(times, end_ns, low)
            if low < high:
                samples = [
                    Sample(t, v)
                    for t, v in zip(times[low:high], values[low:high])
                ]
                result.append(Series(labels=labels, samples=samples))
        return result

    def latest(self, start_ns: int, end_ns: int) -> List[Tuple[Labels, float]]:
        """Per series, the newest value in [start_ns, end_ns] (if any).

        Matches evaluating an instant selector over the sub-window: series
        order is preserved and series without samples in it are dropped.
        """
        result: List[Tuple[Labels, float]] = []
        for labels, _sans_name, times, values in self._series:
            high = bisect_right(times, end_ns)
            if high > 0 and times[high - 1] >= start_ns:
                result.append((labels, values[high - 1]))
        return result

    def apply_range_function(
        self, array_function, start_ns: int, end_ns: int, range_ns: int
    ) -> List[Tuple[Labels, float]]:
        """Apply an array-form range function per series over the window.

        Mirrors ``QueryEngine._apply_range_function``'s loop: series whose
        window raises (not enough samples) are absent from the result, and
        labels are returned without ``__name__``.
        """
        result: List[Tuple[Labels, float]] = []
        for _labels, sans_name, times, values in self._series:
            low = bisect_left(times, start_ns)
            high = bisect_right(times, end_ns, low)
            if low >= high:
                continue
            try:
                value = array_function(
                    times[low:high], values[low:high], range_ns
                )
            except QueryError:
                continue  # not enough samples in this window; series is absent
            result.append((sans_name, value))
        return result


#: Range functions whose value over a window is a pure function of the
#: window's :class:`~repro.pmag.blocks.WindowAggregate` — exactly the
#: rollups compaction stores.  ``rate``/``increase``/``delta`` need every
#: sample (counter-reset detection) and never read rollups.
_ROLLUP_COMPOSERS = {
    "avg_over_time": lambda agg: agg.total / agg.count,
    "min_over_time": lambda agg: agg.minimum,
    "max_over_time": lambda agg: agg.maximum,
    "sum_over_time": lambda agg: agg.total,
    "count_over_time": lambda agg: float(agg.count),
}


class _RollupSelection:
    """One selector's downsampled buckets, merged with its raw buffer.

    Serves the composable ``*_over_time`` functions from per-bucket
    aggregates instead of raw samples.  Every window is answered as
    rollup-aggregate ⊕ raw-aggregate per series: compaction *moves*
    samples from raw chunks into buckets, so the two parts are disjoint
    and their merge is exactly what evaluating the original raw samples
    would produce (for aligned windows — :meth:`apply` returns None on
    misaligned bounds and the caller falls back to the raw path).
    """

    __slots__ = ("resolution_ns", "_entries", "_raw", "_stats")

    def __init__(self, resolution_ns, entries, raw, stats) -> None:
        self.resolution_ns = resolution_ns
        # (labels, labels sans __name__, rollup), sorted by labels.items().
        self._entries = entries
        self._raw = raw  # the selector's _BulkSelection (may be None)
        self._stats = stats  # the engine's StorageStats (read counter)

    def apply(
        self, name: str, start_ns: int, end_ns: int
    ) -> Optional[List[Tuple[Labels, float]]]:
        """The instant vector for one window, or None if misaligned."""
        resolution = self.resolution_ns
        if start_ns % resolution or end_ns % resolution:
            return None
        compose = _ROLLUP_COMPOSERS[name]
        raw_series = self._raw._series if self._raw is not None else []
        entries = self._entries
        result: List[Tuple[Labels, float]] = []
        i = j = 0
        # Positional merge on the shared sort key (labels.items()): a
        # series may be raw-only (young), rollup-only (fully compacted),
        # or both (straddling the compaction horizon).
        while i < len(raw_series) or j < len(entries):
            raw_key = raw_series[i][0].items() if i < len(raw_series) else None
            rollup_key = entries[j][0].items() if j < len(entries) else None
            if rollup_key is None or (raw_key is not None and raw_key < rollup_key):
                _labels, sans_name, times, values = raw_series[i]
                i += 1
                aggregate = aggregate_arrays(times, values, start_ns, end_ns)
            elif raw_key is None or rollup_key < raw_key:
                _labels, sans_name, rollup = entries[j]
                j += 1
                aggregate = rollup.window_aggregate(start_ns, end_ns)
            else:
                _labels, sans_name, rollup = entries[j]
                _rl, _rs, times, values = raw_series[i]
                i += 1
                j += 1
                aggregate = rollup.window_aggregate(start_ns, end_ns).merge(
                    aggregate_arrays(times, values, start_ns, end_ns)
                )
            if aggregate.count == 0:
                continue  # no samples in this window; series is absent
            result.append((sans_name, compose(aggregate)))
        self._stats.downsampled_reads_total += 1
        return result


def _collect_selector_windows(
    expr: Expr, lookback_ns: int, windows: Dict[VectorSelector, int]
) -> None:
    """Record, per selector in ``expr``, the widest trailing window it reads.

    Instant uses need ``lookback_ns`` of history; range uses need their
    ``range_ns``.  The same selector appearing in both contexts gets the
    maximum, so one bulk select can serve every occurrence.
    """
    if isinstance(expr, VectorSelector):
        windows[expr] = max(windows.get(expr, 0), lookback_ns)
    elif isinstance(expr, RangeSelector):
        selector = expr.selector
        windows[selector] = max(windows.get(selector, 0), expr.range_ns)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _collect_selector_windows(arg, lookback_ns, windows)
    elif isinstance(expr, Aggregation):
        _collect_selector_windows(expr.expr, lookback_ns, windows)
    elif isinstance(expr, (BinaryOp, Comparison)):
        _collect_selector_windows(expr.left, lookback_ns, windows)
        _collect_selector_windows(expr.right, lookback_ns, windows)


_EMPTY_LABELS = Labels({})

#: Aggregation operators whose result is a pure function of small
#: per-group partials — the shapes the sharded engine can push down.
_PUSHDOWN_OPS = frozenset(("sum", "avg", "min", "max", "count"))


def _pushdown_shape(expr: Expr):
    """The ``(function name, range selector, aggregation)`` of a
    pushdown-eligible expression, or None.

    Eligible: ``sum``/``avg``/``min``/``max``/``count`` — bare or with
    ``by``/``without`` grouping — directly over one composable
    ``*_over_time`` range function.  The ``rate`` family needs every raw
    sample for counter-reset detection, ``topk``/``bottomk`` need the
    full per-series vector, and anything else (raw selects, arithmetic,
    nested expressions) has no partial form — all of those keep the
    byte-exact full-merge path.
    """
    if not isinstance(expr, Aggregation) or expr.op not in _PUSHDOWN_OPS:
        return None
    if expr.parameter is not None:
        return None
    call = expr.expr
    if (
        not isinstance(call, FunctionCall)
        or call.name not in _ROLLUP_COMPOSERS
        or len(call.args) != 1
        or not isinstance(call.args[0], RangeSelector)
    ):
        return None
    return call.name, call.args[0], expr


def _window_bounds(times, windows):
    """Index bounds of every window in a sorted timestamp array.

    Returns parallel lists ``(los, his, spans)``: samples of window ``i``
    live at ``times[los[i]:his[i]]``.  Window bounds are nondecreasing
    across steps, so each bisect is hinted by the previous result.  The
    result depends only on ``times`` — series scraped on the same
    schedule share their timestamp array, so callers folding many series
    reuse one sweep per distinct timeline.
    """
    search_left, search_right = bisect_left, bisect_right
    los: List[int] = []
    his: List[int] = []
    push_lo = los.append
    push_hi = his.append
    lo = hi = 0
    for w_lo, w_hi in windows:
        lo = search_left(times, w_lo, lo)
        hi = search_right(times, w_hi, hi if hi >= lo else lo)
        push_lo(lo)
        push_hi(hi)
    return los, his, list(map(sub, his, los))


def _fold_pushdown_series(
    name: str, times, values, rollup, windows, resolution: int, slot,
    fresh: bool = False, bounds=None,
) -> None:
    """Fold one series' per-window composed values into a group slot.

    ``slot`` is four parallel per-step arrays ``(counts, totals, mins,
    maxs)`` over the composed values of the series folded so far
    (``counts[i] == 0`` marks "no series had samples at step i");
    ``fresh`` says the slot was created for this series, so every cell
    is still empty.  ``bounds`` is a precomputed :func:`_window_bounds`
    over ``times`` (computed here when absent); sum/avg/count windows
    are then answered from a prefix sum in O(1) per step, and a fresh
    slot over gap-free windows is filled entirely with C-level ``map``
    passes.  Series carrying rollup buckets take the general per-window
    path, mirroring the normal read path exactly: aligned windows serve
    bucket ⊕ raw, misaligned windows fall back to the raw samples alone.
    """
    counts, totals, mins, maxs = slot
    n = len(times)
    if rollup is None:
        if bounds is None:
            bounds = _window_bounds(times, windows)
        los, his, spans = bounds
        is_avg = name == "avg_over_time"
        if fresh and 0 not in spans:
            # Every window has samples and every cell is empty: fill the
            # slot with C-level maps instead of a per-window loop.
            if name == "count_over_time":
                column = list(map(float, spans))
            elif name == "sum_over_time" or is_avg:
                get = list(accumulate(values, initial=0.0)).__getitem__
                column = list(map(sub, map(get, his), map(get, los)))
                if is_avg:
                    column = list(map(truediv, column, spans))
            elif name == "min_over_time":
                column = [min(values[l:h]) for l, h in zip(los, his)]
            else:
                column = [max(values[l:h]) for l, h in zip(los, his)]
            counts[:] = [1] * len(spans)
            totals[:] = column
            mins[:] = column
            maxs[:] = column
            return
        if name == "count_over_time":
            for i, span in enumerate(spans):
                if not span:
                    continue
                value = float(span)
                if counts[i]:
                    counts[i] += 1
                    totals[i] += value
                    if value < mins[i]:
                        mins[i] = value
                    if value > maxs[i]:
                        maxs[i] = value
                else:
                    counts[i] = 1
                    totals[i] = mins[i] = maxs[i] = value
        elif name == "sum_over_time" or is_avg:
            prefix = list(accumulate(values, initial=0.0))
            for i, span in enumerate(spans):
                if not span:
                    continue
                value = prefix[his[i]] - prefix[los[i]]
                if is_avg:
                    value /= span
                if counts[i]:
                    counts[i] += 1
                    totals[i] += value
                    if value < mins[i]:
                        mins[i] = value
                    if value > maxs[i]:
                        maxs[i] = value
                else:
                    counts[i] = 1
                    totals[i] = mins[i] = maxs[i] = value
        else:  # min_over_time / max_over_time
            pick = min if name == "min_over_time" else max
            for i, span in enumerate(spans):
                if not span:
                    continue
                value = pick(values[los[i]:his[i]])
                if counts[i]:
                    counts[i] += 1
                    totals[i] += value
                    if value < mins[i]:
                        mins[i] = value
                    if value > maxs[i]:
                        maxs[i] = value
                else:
                    counts[i] = 1
                    totals[i] = mins[i] = maxs[i] = value
        return
    compose = _ROLLUP_COMPOSERS[name]
    for i, (w_lo, w_hi) in enumerate(windows):
        raw = aggregate_arrays(times, values, w_lo, w_hi) if n else EMPTY_AGGREGATE
        if w_lo % resolution == 0 and w_hi % resolution == 0:
            aggregate = rollup.window_aggregate(w_lo, w_hi).merge(raw)
        else:
            aggregate = raw
        if aggregate.count == 0:
            continue
        value = compose(aggregate)
        if counts[i]:
            counts[i] += 1
            totals[i] += value
            if value < mins[i]:
                mins[i] = value
            if value > maxs[i]:
                maxs[i] = value
        else:
            counts[i] = 1
            totals[i] = mins[i] = maxs[i] = value


class QueryEngine:
    """Evaluates query expressions against a :class:`Tsdb`."""

    def __init__(
        self,
        tsdb: Tsdb,
        lookback_ns: int = LOOKBACK_NS,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        tracer=None,
    ) -> None:
        self._tsdb = tsdb
        self._lookback_ns = lookback_ns
        self._plan_cache = QueryPlanCache(plan_cache_size)
        self._bulk: Optional[Dict[VectorSelector, _BulkSelection]] = None
        self._rollup_sel: Optional[Dict[VectorSelector, _RollupSelection]] = None
        # Evaluation is the µs-scale hot path: every traced entry point
        # checks ``tracer.enabled`` first and falls through to the exact
        # untraced code when tracing is off, so the no-op tracer costs one
        # attribute read per query.
        self._tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def parse(self, query: str) -> Expr:
        """Parse a query through the plan cache; the AST must not be mutated."""
        plan = self._plan_cache.get(query)
        if plan is None:
            plan = parse_query(query)
            self._plan_cache.put(query, plan)
        return plan

    def plan(self, query: str) -> Expr:
        """Parse through the cache, tracing the outcome when enabled.

        Identical to :meth:`parse` with tracing off; with tracing on it
        records the ``query.parse`` span (and its ``plan_cache_hit``
        attribute) exactly as :meth:`instant` would.  The rule
        evaluators pair this with :meth:`instant_plan`.
        """
        if not self._tracer.enabled:
            return self.parse(query)
        return self._parse_traced(query)

    def cache_stats(self) -> CacheStats:
        """Plan-cache statistics (exported as ``pmag_query_cache_*``)."""
        return self._plan_cache.stats()

    def clear_plan_cache(self) -> None:
        """Drop cached plans; useful after engine reconfiguration."""
        self._plan_cache.clear()

    def _parse_traced(self, query: str):
        """Parse under a ``query.parse`` span recording the cache outcome."""
        if not self._tracer.recording():
            # Inside an unsampled subtree: the span would discard
            # everything, so skip the bookkeeping entirely.
            return self.parse(query)
        hits_before = self._plan_cache.hits
        with self._tracer.span("query.parse", {"query": query}) as span:
            plan = self.parse(query)
            hit = self._plan_cache.hits > hits_before
            span.set_attribute("plan_cache_hit", hit)
            if not hit:
                span.add_virtual_time(len(query) * PARSE_NS_PER_CHAR)
        return plan

    def instant(self, query: str, time_ns: int) -> InstantVector:
        """Evaluate at one instant; scalars become a single unlabelled entry."""
        if not self._tracer.enabled or not self._tracer.recording():
            value = self._eval(self.parse(query), time_ns)
            if isinstance(value, float):
                return [(Labels({}), value)]
            return value
        with self._tracer.span("query.instant", {"query": query}):
            expr = self._parse_traced(query)
            with self._tracer.span("query.eval") as eval_span:
                value = self._eval(expr, time_ns)
                if isinstance(value, float):
                    value = [(Labels({}), value)]
                if eval_span.recording:
                    eval_span.set_attribute("series", len(value))
                    eval_span.add_virtual_time(
                        EVAL_NS_PER_SERIES * max(1, len(value))
                    )
            return value

    def instant_plan(self, plan: Expr, time_ns: int) -> InstantVector:
        """Evaluate a pre-parsed plan at one instant.

        The rule evaluators hold their expression's AST across cycles and
        call this instead of :meth:`instant`, skipping even the
        plan-cache lookup on the per-cycle hot path; the result is
        identical to ``instant(query, time_ns)`` for the plan's query.
        """
        if not self._tracer.enabled or not self._tracer.recording():
            value = self._eval(plan, time_ns)
            if isinstance(value, float):
                return [(Labels({}), value)]
            return value
        with self._tracer.span("query.instant", {"plan": True}):
            with self._tracer.span("query.eval") as eval_span:
                value = self._eval(plan, time_ns)
                if isinstance(value, float):
                    value = [(Labels({}), value)]
                if eval_span.recording:
                    eval_span.set_attribute("series", len(value))
                    eval_span.add_virtual_time(
                        EVAL_NS_PER_SERIES * max(1, len(value))
                    )
            return value

    def scalar(self, query: str, time_ns: int) -> float:
        """Evaluate a query expected to yield exactly one value."""
        vector = self.instant(query, time_ns)
        if len(vector) != 1:
            raise QueryError(
                f"expected a single value from {query!r}, got {len(vector)} series"
            )
        return vector[0][1]

    def range_query(
        self, query: str, start_ns: int, end_ns: int, step_ns: int
    ) -> List[Series]:
        """Evaluate at each step in [start, end]; returns one Series per label set.

        Every selector in the expression is bulk-selected once over the
        whole range (plus its trailing window), then sliced per step.
        """
        if not self._tracer.enabled or not self._tracer.recording():
            expr = self._check_range(query, start_ns, end_ns, step_ns)
            plan = self._pushdown_plan(expr)
            if plan is not None:
                return self._pushdown_eval(plan, start_ns, end_ns, step_ns)
            windows: Dict[VectorSelector, int] = {}
            _collect_selector_windows(expr, self._lookback_ns, windows)
            self._bulk = self._bulk_select(windows, start_ns, end_ns)
            self._rollup_sel = self._rollup_select(
                windows, start_ns, end_ns, step_ns
            )
            try:
                return self._evaluate_steps(expr, start_ns, end_ns, step_ns)
            finally:
                self._bulk = None
                self._rollup_sel = None
        with self._tracer.span("query.range", {
            "query": query, "start_ns": start_ns, "end_ns": end_ns,
            "step_ns": step_ns,
        }):
            if step_ns <= 0:
                raise QueryError(f"step must be positive, got {step_ns}")
            if end_ns < start_ns:
                raise QueryError(f"bad range: {start_ns}..{end_ns}")
            expr = self._parse_traced(query)
            plan = self._pushdown_plan(expr)
            if plan is not None:
                with self._tracer.span("query.eval") as eval_span:
                    result = self._pushdown_eval(
                        plan, start_ns, end_ns, step_ns
                    )
                    if eval_span.recording:
                        eval_span.set_attribute("series", len(result))
                        eval_span.set_attribute("pushdown", True)
                        steps = (end_ns - start_ns) // step_ns + 1
                        eval_span.add_virtual_time(
                            EVAL_NS_PER_SERIES * max(1, len(result)) * steps
                        )
                return result
            windows = {}
            _collect_selector_windows(expr, self._lookback_ns, windows)
            with self._tracer.span("query.select", {
                "selectors": len(windows),
            }) as select_span:
                self._bulk = self._bulk_select(windows, start_ns, end_ns)
                self._rollup_sel = self._rollup_select(
                    windows, start_ns, end_ns, step_ns
                )
                if select_span.recording:
                    series = sum(
                        len(b._series) for b in self._bulk.values()
                    )
                    select_span.set_attribute("series", series)
                    select_span.add_virtual_time(
                        EVAL_NS_PER_SERIES * max(1, series)
                    )
            try:
                with self._tracer.span("query.eval") as eval_span:
                    result = self._evaluate_steps(expr, start_ns, end_ns, step_ns)
                    if eval_span.recording:
                        eval_span.set_attribute("series", len(result))
                        steps = (end_ns - start_ns) // step_ns + 1
                        eval_span.add_virtual_time(
                            EVAL_NS_PER_SERIES * max(1, len(result)) * steps
                        )
                return result
            finally:
                self._bulk = None
                self._rollup_sel = None

    # ------------------------------------------------------------------
    # Aggregate pushdown: per-shard partials instead of a full merge
    # ------------------------------------------------------------------
    def _pushdown_plan(self, expr: Expr):
        """A pushdown plan for ``expr``, or None to take the normal path.

        Requires a sharded store (``map_shards``) and an eligible shape
        (see :func:`_pushdown_shape`); the single-shard engine and every
        ineligible query stay byte-identical to the pre-pushdown output.
        """
        map_shards = getattr(self._tsdb, "map_shards", None)
        if map_shards is None:
            return None
        shape = _pushdown_shape(expr)
        if shape is None:
            return None
        name, range_selector, aggregation = shape
        return map_shards, name, range_selector, aggregation

    def _pushdown_eval(
        self, plan, start_ns: int, end_ns: int, step_ns: int
    ) -> List[Series]:
        """Evaluate an eligible aggregation from per-shard partials.

        Each shard reduces its own series to one ``[n, total, min, max]``
        cell per (group, step) — series never span shards, so cells from
        different shards describe disjoint series sets and combine with
        ``n+n / total+total / min(min) / max(max)``.  Only those small
        partial tables cross the shard boundary; no cross-shard series
        merge happens at all.  Windows mirror the normal read path
        (inclusive bounds, offset clamped at zero, rollups engaged per
        aligned window only), so results match full-merge evaluation
        exactly for order-insensitive data; cross-series sums may
        re-associate floating-point addition.
        """
        map_shards, name, range_selector, node = plan
        tsdb = self._tsdb
        selector = range_selector.selector
        offset = selector.offset_ns
        range_ns = range_selector.range_ns
        matchers = [Matcher.eq(METRIC_NAME_LABEL, selector.metric_name)]
        matchers.extend(selector.matchers)
        step_times = list(range(start_ns, end_ns + 1, step_ns))
        windows = [
            (max(0, t - range_ns - offset), max(0, t - offset))
            for t in step_times
        ]
        low = max(0, start_ns - range_ns - offset)
        high = max(0, end_ns - offset)
        resolution = tsdb.downsample_resolution_ns
        use_rollups = bool(
            resolution and step_ns >= resolution and tsdb.has_rollups()
        )
        grouping = node.grouping
        without = node.without
        n_steps = len(step_times)

        def group_slot(partials, labels):
            sans = labels.without(METRIC_NAME_LABEL)
            if without:
                key = sans.without(METRIC_NAME_LABEL, *grouping)
            elif grouping:
                key = sans.keep_only(grouping)
            else:
                key = _EMPTY_LABELS
            slot = partials.get(key)
            if slot is None:
                partials[key] = slot = (
                    [0] * n_steps,
                    [0.0] * n_steps,
                    [0.0] * n_steps,
                    [0.0] * n_steps,
                )
                return slot, True
            return slot, False

        def shard_partials(shard):
            arrays = shard.select_arrays(matchers, low, high)
            rollup_map = (
                dict(shard.select_rollups(matchers, low, high))
                if use_rollups
                else {}
            )
            partials: Dict[Labels, list] = {}
            # Series scraped on the same schedule share a timestamp
            # array; one boundary sweep serves every such series (the
            # C-level list compare is trivial next to the sweep).
            memo_times = memo_bounds = None
            for labels, times, values in arrays:
                rollup = rollup_map.pop(labels, None) if rollup_map else None
                slot, fresh = group_slot(partials, labels)
                if rollup is None:
                    if memo_bounds is None or times != memo_times:
                        memo_times = times
                        memo_bounds = _window_bounds(times, windows)
                    bounds = memo_bounds
                else:
                    bounds = None
                _fold_pushdown_series(
                    name, times, values, rollup, windows, resolution,
                    slot, fresh, bounds,
                )
            for labels, rollup in rollup_map.items():
                # Fully-compacted series: rollup buckets, no raw samples.
                slot, fresh = group_slot(partials, labels)
                _fold_pushdown_series(
                    name, (), (), rollup, windows, resolution,
                    slot, fresh,
                )
            return partials

        combined: Dict[Labels, tuple] = {}
        for partials in map_shards(shard_partials):
            for key, slot in partials.items():
                target = combined.get(key)
                if target is None:
                    combined[key] = slot
                    continue
                t_counts, t_totals, t_mins, t_maxs = target
                s_counts, s_totals, s_mins, s_maxs = slot
                for i, count in enumerate(s_counts):
                    if not count:
                        continue
                    if t_counts[i]:
                        t_counts[i] += count
                        t_totals[i] += s_totals[i]
                        if s_mins[i] < t_mins[i]:
                            t_mins[i] = s_mins[i]
                        if s_maxs[i] > t_maxs[i]:
                            t_maxs[i] = s_maxs[i]
                    else:
                        t_counts[i] = count
                        t_totals[i] = s_totals[i]
                        t_mins[i] = s_mins[i]
                        t_maxs[i] = s_maxs[i]
        op = node.op
        result: List[Series] = []
        for key in sorted(combined, key=lambda k: k.items()):
            counts, totals, mins, maxs = combined[key]
            if all(counts):
                # Dense group (every step populated — the common case):
                # build samples with map() and skip the per-step guard.
                if op == "sum":
                    column = totals
                elif op == "avg":
                    column = list(map(truediv, totals, counts))
                elif op == "min":
                    column = mins
                elif op == "max":
                    column = maxs
                else:  # count
                    column = list(map(float, counts))
                result.append(Series(
                    labels=key,
                    samples=list(map(Sample, step_times, column)),
                ))
                continue
            if op == "sum":
                samples = [
                    Sample(t, totals[i])
                    for i, t in enumerate(step_times) if counts[i]
                ]
            elif op == "avg":
                samples = [
                    Sample(t, totals[i] / counts[i])
                    for i, t in enumerate(step_times) if counts[i]
                ]
            elif op == "min":
                samples = [
                    Sample(t, mins[i])
                    for i, t in enumerate(step_times) if counts[i]
                ]
            elif op == "max":
                samples = [
                    Sample(t, maxs[i])
                    for i, t in enumerate(step_times) if counts[i]
                ]
            else:  # count
                samples = [
                    Sample(t, float(counts[i]))
                    for i, t in enumerate(step_times) if counts[i]
                ]
            if samples:
                result.append(Series(labels=key, samples=samples))
        tsdb.stats.pushdown_reads_total += 1
        return result

    def _bulk_select(
        self, windows: Dict[VectorSelector, int], start_ns: int, end_ns: int
    ) -> Dict[VectorSelector, _BulkSelection]:
        bulk: Dict[VectorSelector, _BulkSelection] = {}
        for selector, window_ns in windows.items():
            matchers = [Matcher.eq(METRIC_NAME_LABEL, selector.metric_name)]
            matchers.extend(selector.matchers)
            low = max(0, start_ns - window_ns - selector.offset_ns)
            high = max(0, end_ns - selector.offset_ns)
            bulk[selector] = _BulkSelection(
                low, high, self._tsdb.select_arrays(matchers, low, high)
            )
        return bulk

    def _rollup_select(
        self,
        windows: Dict[VectorSelector, int],
        start_ns: int,
        end_ns: int,
        step_ns: int,
    ) -> Optional[Dict[VectorSelector, _RollupSelection]]:
        """Pre-select downsampled buckets when this range query can use them.

        Engaged only when the engine's store carries rollups and the
        requested step is at least the downsample resolution — finer
        steps need raw samples anyway.  Must run after
        :meth:`_bulk_select`: each selection pairs the rollups with the
        selector's raw buffer so straddling series merge exactly.
        """
        tsdb = self._tsdb
        resolution = tsdb.downsample_resolution_ns
        if not resolution or step_ns < resolution or not tsdb.has_rollups():
            return None
        selections: Dict[VectorSelector, _RollupSelection] = {}
        for selector, window_ns in windows.items():
            matchers = [Matcher.eq(METRIC_NAME_LABEL, selector.metric_name)]
            matchers.extend(selector.matchers)
            low = max(0, start_ns - window_ns - selector.offset_ns)
            high = max(0, end_ns - selector.offset_ns)
            entries = [
                (labels, labels.without(METRIC_NAME_LABEL), rollup)
                for labels, rollup in tsdb.select_rollups(matchers, low, high)
            ]
            selections[selector] = _RollupSelection(
                resolution, entries, self._bulk.get(selector), tsdb.stats
            )
        return selections

    def range_query_per_step(
        self, query: str, start_ns: int, end_ns: int, step_ns: int
    ) -> List[Series]:
        """The seed range evaluation: one full TSDB select per step.

        Kept as the reference implementation — the equivalence property
        tests and the perf harness compare :meth:`range_query` against it.
        """
        expr = self._check_range(query, start_ns, end_ns, step_ns)
        return self._evaluate_steps(expr, start_ns, end_ns, step_ns)

    def _check_range(
        self, query: str, start_ns: int, end_ns: int, step_ns: int
    ) -> Expr:
        if step_ns <= 0:
            raise QueryError(f"step must be positive, got {step_ns}")
        if end_ns < start_ns:
            raise QueryError(f"bad range: {start_ns}..{end_ns}")
        return self.parse(query)

    def _evaluate_steps(
        self, expr: Expr, start_ns: int, end_ns: int, step_ns: int
    ) -> List[Series]:
        collected: Dict[Labels, List[Tuple[int, float]]] = {}
        time_ns = start_ns
        while time_ns <= end_ns:
            value = self._eval(expr, time_ns)
            if isinstance(value, float):
                value = [(Labels({}), value)]
            for labels, number in value:
                collected.setdefault(labels, []).append((time_ns, number))
            time_ns += step_ns
        return [
            Series(labels=labels, samples=[Sample(t, v) for t, v in points])
            for labels, points in sorted(collected.items(), key=lambda kv: kv[0].items())
        ]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, time_ns: int) -> Value:
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, VectorSelector):
            return self._eval_instant_selector(expr, time_ns)
        if isinstance(expr, RangeSelector):
            raise QueryError("range selector used outside a range function")
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, time_ns)
        if isinstance(expr, Aggregation):
            return self._eval_aggregation(expr, time_ns)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, time_ns)
        if isinstance(expr, Comparison):
            return self._eval_comparison(expr, time_ns)
        raise QueryError(f"cannot evaluate node {expr!r}")

    def _select_range(self, selector: VectorSelector, start_ns: int, end_ns: int) -> List[Series]:
        offset = selector.offset_ns
        low = max(0, start_ns - offset)
        high = max(0, end_ns - offset)
        if self._bulk is not None:
            bulk = self._bulk.get(selector)
            if bulk is not None and bulk.covers(low, high):
                return bulk.slice(low, high)
        matchers = [Matcher.eq(METRIC_NAME_LABEL, selector.metric_name)]
        matchers.extend(selector.matchers)
        return self._tsdb.select(matchers, low, high)

    def _eval_instant_selector(self, selector: VectorSelector, time_ns: int) -> InstantVector:
        offset = selector.offset_ns
        low = max(0, time_ns - self._lookback_ns - offset)
        high = max(0, time_ns - offset)
        if self._bulk is not None:
            bulk = self._bulk.get(selector)
            if bulk is not None and bulk.covers(low, high):
                return bulk.latest(low, high)
        series_list = self._select_range(selector, time_ns - self._lookback_ns, time_ns)
        return [
            (series.labels, series.samples[-1].value)
            for series in series_list
            if series.samples
        ]

    def _eval_function(self, call: FunctionCall, time_ns: int) -> Value:
        name = call.name
        if name in RANGE_FUNCTIONS:
            if len(call.args) != 1 or not isinstance(call.args[0], RangeSelector):
                raise QueryError(f"{name}() takes exactly one range selector")
            return self._apply_range_function(name, call.args[0], time_ns)
        if name == "quantile_over_time":
            if (
                len(call.args) != 2
                or not isinstance(call.args[0], NumberLiteral)
                or not isinstance(call.args[1], RangeSelector)
            ):
                raise QueryError("quantile_over_time(q, selector[range]) expected")
            quantile = call.args[0].value
            range_selector = call.args[1]
            series_list = self._select_range(
                range_selector.selector, time_ns - range_selector.range_ns, time_ns
            )
            result: InstantVector = []
            for series in series_list:
                values = [s.value for s in series.samples]
                result.append(
                    (series.labels.without(METRIC_NAME_LABEL),
                     quantile_of(values, quantile))
                )
            return result
        if name == "histogram_quantile":
            return self._histogram_quantile(call, time_ns)
        if name == "absent":
            if len(call.args) != 1:
                raise QueryError("absent() takes one argument")
            value = self._eval(call.args[0], time_ns)
            if isinstance(value, float) or value:
                return []
            return [(Labels({}), 1.0)]
        if name == "abs":
            return self._map_unary(call, time_ns, abs)
        if name == "clamp_min":
            return self._clamp(call, time_ns, is_min=True)
        if name == "clamp_max":
            return self._clamp(call, time_ns, is_min=False)
        raise QueryError(f"unknown function: {name!r}")

    def _apply_range_function(
        self, name: str, range_selector: RangeSelector, time_ns: int
    ) -> InstantVector:
        function = RANGE_FUNCTIONS[name]
        selector = range_selector.selector
        offset = selector.offset_ns
        low = max(0, time_ns - range_selector.range_ns - offset)
        high = max(0, time_ns - offset)
        if self._rollup_sel is not None and name in _ROLLUP_COMPOSERS:
            selection = self._rollup_sel.get(selector)
            if selection is not None:
                composed = selection.apply(name, low, high)
                if composed is not None:
                    return composed
        if self._bulk is not None:
            bulk = self._bulk.get(selector)
            if bulk is not None and bulk.covers(low, high):
                return bulk.apply_range_function(
                    ARRAY_RANGE_FUNCTIONS[name], low, high,
                    range_selector.range_ns,
                )
        series_list = self._select_range(
            selector, time_ns - range_selector.range_ns, time_ns
        )
        result: InstantVector = []
        for series in series_list:
            try:
                value = function(series.samples, range_selector.range_ns)
            except QueryError:
                continue  # not enough samples in this window; series is absent
            result.append((series.labels.without(METRIC_NAME_LABEL), value))
        return result

    def _map_unary(self, call: FunctionCall, time_ns: int, function) -> Value:
        if len(call.args) != 1:
            raise QueryError(f"{call.name}() takes one argument")
        value = self._eval(call.args[0], time_ns)
        if isinstance(value, float):
            return float(function(value))
        return [(labels, float(function(number))) for labels, number in value]

    def _clamp(self, call: FunctionCall, time_ns: int, is_min: bool) -> Value:
        if len(call.args) != 2:
            raise QueryError(f"{call.name}(vector, bound) expected")
        bound = self._eval(call.args[1], time_ns)
        if not isinstance(bound, float):
            raise QueryError(f"{call.name}() bound must be a scalar")
        clamp = (lambda v: max(v, bound)) if is_min else (lambda v: min(v, bound))
        value = self._eval(call.args[0], time_ns)
        if isinstance(value, float):
            return clamp(value)
        return [(labels, clamp(number)) for labels, number in value]

    def _histogram_quantile(self, call: FunctionCall, time_ns: int) -> InstantVector:
        """Prometheus histogram_quantile over _bucket series with `le` labels."""
        if (len(call.args) != 2 or not isinstance(call.args[0], NumberLiteral)):
            raise QueryError("histogram_quantile(q, vector) expected")
        quantile = call.args[0].value
        if not 0.0 <= quantile <= 1.0:
            raise QueryError(f"histogram_quantile: q out of range: {quantile}")
        vector = self._eval(call.args[1], time_ns)
        if isinstance(vector, float):
            raise QueryError("histogram_quantile() needs a vector of buckets")
        # Group bucket series by their labels sans `le`.
        groups: dict = {}
        for labels, value in vector:
            le_text = labels.get("le")
            if not le_text:
                continue
            bound = float("inf") if le_text in ("+Inf", "inf") else float(le_text)
            key = labels.without("le", METRIC_NAME_LABEL)
            groups.setdefault(key, []).append((bound, value))
        result: InstantVector = []
        for key, buckets in groups.items():
            buckets.sort()
            if not buckets or buckets[-1][0] != float("inf"):
                continue  # malformed histogram: no +Inf bucket
            total = buckets[-1][1]
            if total <= 0:
                continue
            rank = quantile * total
            previous_bound, previous_count = 0.0, 0.0
            estimate = buckets[-1][0]
            for bound, cumulative in buckets:
                if cumulative >= rank:
                    if bound == float("inf"):
                        estimate = previous_bound
                        break
                    width = bound - previous_bound
                    in_bucket = cumulative - previous_count
                    fraction = (
                        (rank - previous_count) / in_bucket if in_bucket > 0 else 0.0
                    )
                    estimate = previous_bound + fraction * width
                    break
                previous_bound, previous_count = bound, cumulative
            result.append((key, estimate))
        result.sort(key=lambda pair: pair[0].items())
        return result

    def _eval_comparison(self, node: Comparison, time_ns: int) -> Value:
        """Filtering comparison (PromQL semantics).

        vector-scalar keeps the vector elements where the comparison holds;
        scalar-scalar yields 1.0 / 0.0.
        """
        left = self._eval(node.left, time_ns)
        right = self._eval(node.right, time_ns)
        op = node.op

        def holds(a: float, b: float) -> bool:
            if op == ">":
                return a > b
            if op == "<":
                return a < b
            if op == ">=":
                return a >= b
            if op == "<=":
                return a <= b
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            raise QueryError(f"unknown comparison: {op!r}")

        if isinstance(left, float) and isinstance(right, float):
            return 1.0 if holds(left, right) else 0.0
        if isinstance(right, float):
            return [(labels, v) for labels, v in left if holds(v, right)]
        if isinstance(left, float):
            return [(labels, v) for labels, v in right if holds(left, v)]
        right_index = {
            labels.without(METRIC_NAME_LABEL): v for labels, v in right
        }
        return [
            (labels, v) for labels, v in left
            if labels.without(METRIC_NAME_LABEL) in right_index
            and holds(v, right_index[labels.without(METRIC_NAME_LABEL)])
        ]

    def _eval_aggregation(self, node: Aggregation, time_ns: int) -> InstantVector:
        value = self._eval(node.expr, time_ns)
        if isinstance(value, float):
            raise QueryError(f"{node.op}() needs a vector, got a scalar")
        if node.op in ("topk", "bottomk"):
            if node.parameter is None or node.parameter < 1:
                raise QueryError(f"{node.op}() needs a positive k")
            k = int(node.parameter)
            ordered = sorted(
                value, key=lambda pair: pair[1], reverse=(node.op == "topk")
            )
            return ordered[:k]
        groups = {}
        for labels, number in value:
            if node.without:
                key = labels.without(METRIC_NAME_LABEL, *node.grouping)
            elif node.grouping:
                key = labels.keep_only(node.grouping)
            else:
                key = Labels({})
            groups.setdefault(key, []).append(number)
        result: InstantVector = []
        for key, numbers in groups.items():
            if node.op == "sum":
                aggregated = sum(numbers)
            elif node.op == "avg":
                aggregated = sum(numbers) / len(numbers)
            elif node.op == "min":
                aggregated = min(numbers)
            elif node.op == "max":
                aggregated = max(numbers)
            elif node.op == "count":
                aggregated = float(len(numbers))
            else:
                raise QueryError(f"unknown aggregation: {node.op!r}")
            result.append((key, aggregated))
        result.sort(key=lambda pair: pair[0].items())
        return result

    def _eval_binary(self, node: BinaryOp, time_ns: int) -> Value:
        left = self._eval(node.left, time_ns)
        right = self._eval(node.right, time_ns)
        op = node.op

        def apply(a: float, b: float) -> float:
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    return float("nan")
                return a / b
            raise QueryError(f"unknown operator: {op!r}")

        if isinstance(left, float) and isinstance(right, float):
            return apply(left, right)
        if isinstance(left, float):
            return [(labels, apply(left, number)) for labels, number in right]
        if isinstance(right, float):
            return [(labels, apply(number, right)) for labels, number in left]
        # vector / vector: match on identical label sets sans __name__.
        right_index = {
            labels.without(METRIC_NAME_LABEL): number for labels, number in right
        }
        result: InstantVector = []
        for labels, number in left:
            key = labels.without(METRIC_NAME_LABEL)
            if key in right_index:
                result.append((key, apply(number, right_index[key])))
        return result
