"""Query evaluation.

Values flow through evaluation as one of:

* a ``float`` scalar,
* an **instant vector**: ``List[Tuple[Labels, float]]``,
* a **range vector**: ``List[Series]`` (only as a function argument).

Instant selectors use a 5-minute lookback (the Prometheus staleness
window): the value of a series "now" is its newest sample within lookback.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import QueryError
from repro.pmag.model import Labels, Matcher, METRIC_NAME_LABEL, Series
from repro.pmag.query.functions import RANGE_FUNCTIONS, quantile_of
from repro.pmag.query.nodes import (
    Aggregation,
    BinaryOp,
    Comparison,
    Expr,
    FunctionCall,
    NumberLiteral,
    RangeSelector,
    VectorSelector,
)
from repro.pmag.query.parser import parse_query
from repro.pmag.tsdb import Tsdb

LOOKBACK_NS = 5 * 60 * 1_000_000_000

InstantVector = List[Tuple[Labels, float]]
Value = Union[float, InstantVector]


class QueryEngine:
    """Evaluates query expressions against a :class:`Tsdb`."""

    def __init__(self, tsdb: Tsdb, lookback_ns: int = LOOKBACK_NS) -> None:
        self._tsdb = tsdb
        self._lookback_ns = lookback_ns

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def instant(self, query: str, time_ns: int) -> InstantVector:
        """Evaluate at one instant; scalars become a single unlabelled entry."""
        value = self._eval(parse_query(query), time_ns)
        if isinstance(value, float):
            return [(Labels({}), value)]
        return value

    def scalar(self, query: str, time_ns: int) -> float:
        """Evaluate a query expected to yield exactly one value."""
        vector = self.instant(query, time_ns)
        if len(vector) != 1:
            raise QueryError(
                f"expected a single value from {query!r}, got {len(vector)} series"
            )
        return vector[0][1]

    def range_query(
        self, query: str, start_ns: int, end_ns: int, step_ns: int
    ) -> List[Series]:
        """Evaluate at each step in [start, end]; returns one Series per label set."""
        if step_ns <= 0:
            raise QueryError(f"step must be positive, got {step_ns}")
        if end_ns < start_ns:
            raise QueryError(f"bad range: {start_ns}..{end_ns}")
        expr = parse_query(query)
        collected = {}
        time_ns = start_ns
        while time_ns <= end_ns:
            value = self._eval(expr, time_ns)
            if isinstance(value, float):
                value = [(Labels({}), value)]
            for labels, number in value:
                collected.setdefault(labels, []).append((time_ns, number))
            time_ns += step_ns
        from repro.pmag.model import Sample  # local import to avoid cycle noise

        return [
            Series(labels=labels, samples=[Sample(t, v) for t, v in points])
            for labels, points in sorted(collected.items(), key=lambda kv: kv[0].items())
        ]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, time_ns: int) -> Value:
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, VectorSelector):
            return self._eval_instant_selector(expr, time_ns)
        if isinstance(expr, RangeSelector):
            raise QueryError("range selector used outside a range function")
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, time_ns)
        if isinstance(expr, Aggregation):
            return self._eval_aggregation(expr, time_ns)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, time_ns)
        if isinstance(expr, Comparison):
            return self._eval_comparison(expr, time_ns)
        raise QueryError(f"cannot evaluate node {expr!r}")

    def _select_range(self, selector: VectorSelector, start_ns: int, end_ns: int) -> List[Series]:
        matchers = [Matcher.eq(METRIC_NAME_LABEL, selector.metric_name)]
        matchers.extend(selector.matchers)
        offset = selector.offset_ns
        return self._tsdb.select(
            matchers, max(0, start_ns - offset), max(0, end_ns - offset)
        )

    def _eval_instant_selector(self, selector: VectorSelector, time_ns: int) -> InstantVector:
        series_list = self._select_range(selector, time_ns - self._lookback_ns, time_ns)
        return [
            (series.labels, series.samples[-1].value)
            for series in series_list
            if series.samples
        ]

    def _eval_function(self, call: FunctionCall, time_ns: int) -> Value:
        name = call.name
        if name in RANGE_FUNCTIONS:
            if len(call.args) != 1 or not isinstance(call.args[0], RangeSelector):
                raise QueryError(f"{name}() takes exactly one range selector")
            return self._apply_range_function(name, call.args[0], time_ns)
        if name == "quantile_over_time":
            if (
                len(call.args) != 2
                or not isinstance(call.args[0], NumberLiteral)
                or not isinstance(call.args[1], RangeSelector)
            ):
                raise QueryError("quantile_over_time(q, selector[range]) expected")
            quantile = call.args[0].value
            range_selector = call.args[1]
            series_list = self._select_range(
                range_selector.selector, time_ns - range_selector.range_ns, time_ns
            )
            result: InstantVector = []
            for series in series_list:
                values = [s.value for s in series.samples]
                result.append(
                    (series.labels.without(METRIC_NAME_LABEL),
                     quantile_of(values, quantile))
                )
            return result
        if name == "histogram_quantile":
            return self._histogram_quantile(call, time_ns)
        if name == "absent":
            if len(call.args) != 1:
                raise QueryError("absent() takes one argument")
            value = self._eval(call.args[0], time_ns)
            if isinstance(value, float) or value:
                return []
            return [(Labels({}), 1.0)]
        if name == "abs":
            return self._map_unary(call, time_ns, abs)
        if name == "clamp_min":
            return self._clamp(call, time_ns, is_min=True)
        if name == "clamp_max":
            return self._clamp(call, time_ns, is_min=False)
        raise QueryError(f"unknown function: {name!r}")

    def _apply_range_function(
        self, name: str, range_selector: RangeSelector, time_ns: int
    ) -> InstantVector:
        function = RANGE_FUNCTIONS[name]
        series_list = self._select_range(
            range_selector.selector, time_ns - range_selector.range_ns, time_ns
        )
        result: InstantVector = []
        for series in series_list:
            try:
                value = function(series.samples, range_selector.range_ns)
            except QueryError:
                continue  # not enough samples in this window; series is absent
            result.append((series.labels.without(METRIC_NAME_LABEL), value))
        return result

    def _map_unary(self, call: FunctionCall, time_ns: int, function) -> Value:
        if len(call.args) != 1:
            raise QueryError(f"{call.name}() takes one argument")
        value = self._eval(call.args[0], time_ns)
        if isinstance(value, float):
            return float(function(value))
        return [(labels, float(function(number))) for labels, number in value]

    def _clamp(self, call: FunctionCall, time_ns: int, is_min: bool) -> Value:
        if len(call.args) != 2:
            raise QueryError(f"{call.name}(vector, bound) expected")
        bound = self._eval(call.args[1], time_ns)
        if not isinstance(bound, float):
            raise QueryError(f"{call.name}() bound must be a scalar")
        clamp = (lambda v: max(v, bound)) if is_min else (lambda v: min(v, bound))
        value = self._eval(call.args[0], time_ns)
        if isinstance(value, float):
            return clamp(value)
        return [(labels, clamp(number)) for labels, number in value]

    def _histogram_quantile(self, call: FunctionCall, time_ns: int) -> InstantVector:
        """Prometheus histogram_quantile over _bucket series with `le` labels."""
        if (len(call.args) != 2 or not isinstance(call.args[0], NumberLiteral)):
            raise QueryError("histogram_quantile(q, vector) expected")
        quantile = call.args[0].value
        if not 0.0 <= quantile <= 1.0:
            raise QueryError(f"histogram_quantile: q out of range: {quantile}")
        vector = self._eval(call.args[1], time_ns)
        if isinstance(vector, float):
            raise QueryError("histogram_quantile() needs a vector of buckets")
        # Group bucket series by their labels sans `le`.
        groups: dict = {}
        for labels, value in vector:
            le_text = labels.get("le")
            if not le_text:
                continue
            bound = float("inf") if le_text in ("+Inf", "inf") else float(le_text)
            key = labels.without("le", METRIC_NAME_LABEL)
            groups.setdefault(key, []).append((bound, value))
        result: InstantVector = []
        for key, buckets in groups.items():
            buckets.sort()
            if not buckets or buckets[-1][0] != float("inf"):
                continue  # malformed histogram: no +Inf bucket
            total = buckets[-1][1]
            if total <= 0:
                continue
            rank = quantile * total
            previous_bound, previous_count = 0.0, 0.0
            estimate = buckets[-1][0]
            for bound, cumulative in buckets:
                if cumulative >= rank:
                    if bound == float("inf"):
                        estimate = previous_bound
                        break
                    width = bound - previous_bound
                    in_bucket = cumulative - previous_count
                    fraction = (
                        (rank - previous_count) / in_bucket if in_bucket > 0 else 0.0
                    )
                    estimate = previous_bound + fraction * width
                    break
                previous_bound, previous_count = bound, cumulative
            result.append((key, estimate))
        result.sort(key=lambda pair: pair[0].items())
        return result

    def _eval_comparison(self, node: Comparison, time_ns: int) -> Value:
        """Filtering comparison (PromQL semantics).

        vector-scalar keeps the vector elements where the comparison holds;
        scalar-scalar yields 1.0 / 0.0.
        """
        left = self._eval(node.left, time_ns)
        right = self._eval(node.right, time_ns)
        op = node.op

        def holds(a: float, b: float) -> bool:
            if op == ">":
                return a > b
            if op == "<":
                return a < b
            if op == ">=":
                return a >= b
            if op == "<=":
                return a <= b
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            raise QueryError(f"unknown comparison: {op!r}")

        if isinstance(left, float) and isinstance(right, float):
            return 1.0 if holds(left, right) else 0.0
        if isinstance(right, float):
            return [(labels, v) for labels, v in left if holds(v, right)]
        if isinstance(left, float):
            return [(labels, v) for labels, v in right if holds(left, v)]
        right_index = {
            labels.without(METRIC_NAME_LABEL): v for labels, v in right
        }
        return [
            (labels, v) for labels, v in left
            if labels.without(METRIC_NAME_LABEL) in right_index
            and holds(v, right_index[labels.without(METRIC_NAME_LABEL)])
        ]

    def _eval_aggregation(self, node: Aggregation, time_ns: int) -> InstantVector:
        value = self._eval(node.expr, time_ns)
        if isinstance(value, float):
            raise QueryError(f"{node.op}() needs a vector, got a scalar")
        if node.op in ("topk", "bottomk"):
            if node.parameter is None or node.parameter < 1:
                raise QueryError(f"{node.op}() needs a positive k")
            k = int(node.parameter)
            ordered = sorted(
                value, key=lambda pair: pair[1], reverse=(node.op == "topk")
            )
            return ordered[:k]
        groups = {}
        for labels, number in value:
            if node.without:
                key = labels.without(METRIC_NAME_LABEL, *node.grouping)
            elif node.grouping:
                key = labels.keep_only(node.grouping)
            else:
                key = Labels({})
            groups.setdefault(key, []).append(number)
        result: InstantVector = []
        for key, numbers in groups.items():
            if node.op == "sum":
                aggregated = sum(numbers)
            elif node.op == "avg":
                aggregated = sum(numbers) / len(numbers)
            elif node.op == "min":
                aggregated = min(numbers)
            elif node.op == "max":
                aggregated = max(numbers)
            elif node.op == "count":
                aggregated = float(len(numbers))
            else:
                raise QueryError(f"unknown aggregation: {node.op!r}")
            result.append((key, aggregated))
        result.sort(key=lambda pair: pair[0].items())
        return result

    def _eval_binary(self, node: BinaryOp, time_ns: int) -> Value:
        left = self._eval(node.left, time_ns)
        right = self._eval(node.right, time_ns)
        op = node.op

        def apply(a: float, b: float) -> float:
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    return float("nan")
                return a / b
            raise QueryError(f"unknown operator: {op!r}")

        if isinstance(left, float) and isinstance(right, float):
            return apply(left, right)
        if isinstance(left, float):
            return [(labels, apply(left, number)) for labels, number in right]
        if isinstance(right, float):
            return [(labels, apply(number, right)) for labels, number in left]
        # vector / vector: match on identical label sets sans __name__.
        right_index = {
            labels.without(METRIC_NAME_LABEL): number for labels, number in right
        }
        result: InstantVector = []
        for labels, number in left:
            key = labels.without(METRIC_NAME_LABEL)
            if key in right_index:
                result.append((key, apply(number, right_index[key])))
        return result
