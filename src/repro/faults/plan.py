"""Composable, journalled fault plans.

A :class:`FaultPlan` owns a set of injectors, optionally scoped to
specific URLs, and a journal of every fault it injected.  The journal is
the determinism witness: two runs of the same seeded plan against the
same request sequence must produce byte-identical journals
(:meth:`FaultPlan.journal_text`), which the chaos suite asserts.

Plans are driven entirely by the :class:`~repro.simkernel.clock.VirtualClock`
passed at construction — no wall time, no global randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import NetworkError
from repro.faults.injectors import FaultContext, Injector
from repro.simkernel.clock import VirtualClock
from repro.simkernel.rng import DeterministicRng


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the journal."""

    time_ns: int
    url: str
    method: str
    kind: str

    def line(self) -> str:
        """Canonical single-line rendering (journal format)."""
        return f"{self.time_ns} {self.method} {self.url} {self.kind}"


class _Rule:
    """One injector plus its URL scope."""

    def __init__(self, injector: Injector, urls: Optional[Sequence[str]]) -> None:
        self.injector = injector
        self.urls = None if urls is None else frozenset(urls)

    def applies_to(self, url: str) -> bool:
        return self.urls is None or url in self.urls


class FaultPlan:
    """A seeded composition of fault injectors with an event journal."""

    def __init__(self, clock: VirtualClock, rng: DeterministicRng) -> None:
        self.clock = clock
        self.rng = rng.fork("fault-plan")
        self._rules: List[_Rule] = []
        self.journal: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add(self, injector: Injector,
            urls: Optional[Sequence[str]] = None) -> Injector:
        """Install an injector, scoped to ``urls`` (None = every URL)."""
        if urls is not None and not urls:
            raise NetworkError("empty URL scope; pass None for all URLs")
        self._rules.append(_Rule(injector, urls))
        return injector

    def injectors(self) -> List[Injector]:
        """The installed injectors, in application order."""
        return [rule.injector for rule in self._rules]

    def find(self, kind: str) -> List[Injector]:
        """Installed injectors of one kind (e.g. ``"flap"``)."""
        return [r.injector for r in self._rules if r.injector.kind == kind]

    # ------------------------------------------------------------------
    # Application (called by FaultyHttpNetwork)
    # ------------------------------------------------------------------
    def begin(self, url: str, method: str) -> FaultContext:
        """Start a request context and run ``before`` hooks in order."""
        ctx = FaultContext(url=url, method=method, now_ns=self.clock.now_ns)
        for rule in self._rules:
            if ctx.response is not None:
                break  # a short-circuit fault wins
            if rule.applies_to(url):
                rule.injector.before(ctx)
        return ctx

    def finish(self, ctx: FaultContext) -> None:
        """Run ``after`` hooks in order and journal what was applied."""
        for rule in self._rules:
            if rule.applies_to(ctx.url):
                rule.injector.after(ctx)
        for kind in ctx.applied:
            self.journal.append(
                FaultEvent(time_ns=ctx.now_ns, url=ctx.url,
                           method=ctx.method, kind=kind)
            )

    def record(self, kind: str, subject: str, method: str = "DISK") -> None:
        """Journal a non-HTTP fault (disk corruption, process crash, ...).

        The storage and process chaos paths share the journal with the
        network injectors so one text captures the whole fault history of
        a run; ``subject`` takes the place of the URL (a file name, a
        component name) and ``method`` names the fault domain.
        """
        self.journal.append(
            FaultEvent(time_ns=self.clock.now_ns, url=subject,
                       method=method, kind=kind)
        )

    # ------------------------------------------------------------------
    # Determinism witness
    # ------------------------------------------------------------------
    def journal_text(self) -> str:
        """The whole journal as canonical text (byte-comparable)."""
        return "\n".join(event.line() for event in self.journal)

    def counts(self) -> dict:
        """Injected fault counts by kind."""
        result: dict = {}
        for event in self.journal:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result
